//! Property tests checking the dataflow analyses against brute-force
//! reference implementations on randomly generated CFGs.

use ccr_analysis::{reachable_blocks, DomTree, Liveness};
use ccr_ir::{BinKind, BlockId, CmpPred, Function, Op, Operand, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// A random CFG shape: per block, an instruction recipe and a
/// terminator choice.
#[derive(Debug, Clone)]
struct CfgSpec {
    /// For each block: (def_reg, use_reg, terminator).
    /// terminator: 0 = ret, otherwise branch to (t % n, u % n).
    blocks: Vec<(u8, u8, u8, u8)>,
}

fn cfg_spec() -> impl Strategy<Value = CfgSpec> {
    prop::collection::vec((0u8..6, 0u8..6, 0u8..12, 0u8..12), 2..10)
        .prop_map(|blocks| CfgSpec { blocks })
}

/// Materializes the spec: block i holds `def = use + 1` (registers
/// drawn from a fixed window, all pre-defined in the entry block so
/// the verifier is satisfied) and ends with a data-dependent branch or
/// a return.
fn build_cfg(spec: &CfgSpec) -> (Program, ccr_ir::FuncId) {
    let n = spec.blocks.len() as u32;
    let mut pb = ProgramBuilder::new();
    let o = pb.object("o", 8);
    let mut f = pb.function("main", 0, 0);
    // Pre-define the register window with unknown values.
    let regs: Vec<Reg> = (0..6).map(|k| f.load(o, k as i64)).collect();
    let first_real = f.block();
    f.jump(first_real);
    for (i, &(d, u, t1, t2)) in spec.blocks.iter().enumerate() {
        let this = BlockId(i as u32 + 1);
        if i > 0 {
            f.block();
        }
        f.switch_to(this);
        f.bin_into(BinKind::Add, regs[d as usize], regs[u as usize], 1);
        if t1 == 0 {
            f.ret(&[]);
        } else {
            let taken = BlockId(u32::from(t1) % n + 1);
            let not_taken = BlockId(u32::from(t2) % n + 1);
            f.br(CmpPred::Lt, regs[u as usize], 3, taken, not_taken);
        }
    }
    let id = pb.finish_function(f);
    pb.set_main(id);
    let p = pb.finish();
    ccr_ir::verify_program(&p).expect("generated CFG verifies");
    (p, id)
}

/// Brute force: `a` dominates `b` iff every entry→b path passes
/// through `a`, i.e. b is unreachable when traversal may not enter a.
fn dominates_brute(func: &Function, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return reachable_blocks(func)[b.index()];
    }
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![func.entry()];
    if func.entry() == a {
        return reachable_blocks(func)[b.index()];
    }
    seen[func.entry().index()] = true;
    while let Some(x) = stack.pop() {
        for s in func.block(x).successors() {
            if s == a || seen[s.index()] {
                continue;
            }
            seen[s.index()] = true;
            stack.push(s);
        }
    }
    // b reachable while avoiding a → a does not dominate b.
    reachable_blocks(func)[b.index()] && !seen[b.index()]
}

/// Brute force liveness: r is live-in at block b iff some path from
/// the start of b reaches a use of r before any def of r.
fn live_in_brute(func: &Function, b: BlockId, r: Reg) -> bool {
    // State: block to scan from the top. DFS with cycle cut.
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![b];
    while let Some(x) = stack.pop() {
        if seen[x.index()] {
            continue;
        }
        seen[x.index()] = true;
        let mut defined = false;
        for instr in &func.block(x).instrs {
            if instr.src_regs().contains(&r) {
                return true;
            }
            if instr.dsts().contains(&r) {
                defined = true;
                break;
            }
        }
        if !defined {
            stack.extend(func.block(x).successors());
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominator_tree_matches_brute_force(spec in cfg_spec()) {
        let (p, id) = build_cfg(&spec);
        let func = p.function(id);
        let dt = DomTree::compute(func);
        let nblocks = func.blocks.len() as u32;
        for a in 0..nblocks {
            for b in 0..nblocks {
                let (a, b) = (BlockId(a), BlockId(b));
                prop_assert_eq!(
                    dt.dominates(a, b),
                    dominates_brute(func, a, b),
                    "dominates({:?}, {:?})", a, b
                );
            }
        }
    }

    #[test]
    fn liveness_matches_brute_force(spec in cfg_spec()) {
        let (p, id) = build_cfg(&spec);
        let func = p.function(id);
        let lv = Liveness::compute(func);
        let reachable = reachable_blocks(func);
        for (bid, _) in func.iter_blocks() {
            if !reachable[bid.index()] {
                continue; // fixpoint values on dead blocks are free
            }
            for k in 0..6u32 {
                let r = func
                    .iter_instrs()
                    .find_map(|(_, i)| match &i.op {
                        Op::Load { dst, .. } if dst.0 == k => Some(*dst),
                        _ => None,
                    });
                let Some(r) = r else { continue };
                prop_assert_eq!(
                    lv.live_in(bid).contains(&r),
                    live_in_brute(func, bid, r),
                    "live_in({:?}, {:?})", bid, r
                );
            }
        }
    }

    /// Reaching definitions sanity: every def reported as reaching a
    /// use is a def of the right register, and every use of a window
    /// register has at least one reaching def (they are all defined in
    /// the entry).
    #[test]
    fn def_use_chains_are_well_formed(spec in cfg_spec()) {
        use ccr_analysis::{DefUse, ReachingDefs};
        let (p, id) = build_cfg(&spec);
        let func = p.function(id);
        let rd = ReachingDefs::compute(func);
        let du = DefUse::compute(func, &rd);
        let reachable = reachable_blocks(func);
        for (bid, block) in func.iter_blocks() {
            if !reachable[bid.index()] {
                continue;
            }
            for instr in &block.instrs {
                for r in instr.src_regs() {
                    let defs = du.defs_reaching(instr.id);
                    prop_assert!(
                        defs.iter().any(|d| d.reg == r),
                        "{:?} uses {:?} with no reaching def", instr.id, r
                    );
                }
            }
        }
        let _ = Operand::Imm(0);
    }
}

//! Alias information and determinable-load classification.
//!
//! The paper (Section 4.1): *"The compiler first performs program-level
//! alias analysis to identify such load instructions and annotates them
//! as determinable, indicating that all potential store instructions
//! can be determined at compile time. Both globally and locally-named
//! structures are reused, whereas anonymous data structures are the
//! subject of ongoing research."*
//!
//! Because our IR names the object each memory access touches, the
//! points-to relation is exact for named objects: a load is
//! *determinable* iff its object is named (or read-only), and the set
//! of stores that may write that object is simply every store naming
//! it — collected program-wide here, closed over calls via
//! [`crate::callgraph::SideEffects`].

use std::collections::HashMap;

use ccr_ir::{FuncId, InstrId, MemObjectId, ObjectKind, Op, Program};

/// Determinability classification of a load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Determinable {
    /// All stores that may write the accessed object are statically
    /// known, and there are none (read-only table): the load never
    /// needs invalidation.
    ReadOnly,
    /// All stores that may write the accessed object are statically
    /// known (named object with at least one static store site).
    Writable,
    /// The load accesses anonymous storage; reuse is not attempted.
    No,
}

impl Determinable {
    /// True for the two determinable classes.
    pub fn is_determinable(self) -> bool {
        !matches!(self, Determinable::No)
    }
}

/// Program-wide alias facts.
#[derive(Clone, Debug)]
pub struct AliasInfo {
    load_class: HashMap<InstrId, Determinable>,
    store_sites: HashMap<MemObjectId, Vec<(FuncId, InstrId)>>,
}

impl AliasInfo {
    /// Computes alias information for `program`.
    pub fn compute(program: &Program) -> AliasInfo {
        let mut store_sites: HashMap<MemObjectId, Vec<(FuncId, InstrId)>> = HashMap::new();
        for func in program.functions() {
            for (_, instr) in func.iter_instrs() {
                if let Op::Store { object, .. } = &instr.op {
                    store_sites
                        .entry(*object)
                        .or_default()
                        .push((func.id(), instr.id));
                }
            }
        }
        let mut load_class = HashMap::new();
        for func in program.functions() {
            for (_, instr) in func.iter_instrs() {
                if let Op::Load { object, .. } = &instr.op {
                    let class = match program.object(*object).kind() {
                        ObjectKind::ReadOnly => Determinable::ReadOnly,
                        ObjectKind::Named => Determinable::Writable,
                        ObjectKind::Anonymous => Determinable::No,
                    };
                    load_class.insert(instr.id, class);
                }
            }
        }
        AliasInfo {
            load_class,
            store_sites,
        }
    }

    /// Determinability class of a load instruction.
    ///
    /// Returns [`Determinable::No`] for non-load instructions.
    pub fn load_class(&self, id: InstrId) -> Determinable {
        self.load_class
            .get(&id)
            .copied()
            .unwrap_or(Determinable::No)
    }

    /// True if the load is annotated determinable.
    pub fn is_determinable(&self, id: InstrId) -> bool {
        self.load_class(id).is_determinable()
    }

    /// All static store sites that may write `object`.
    pub fn store_sites(&self, object: MemObjectId) -> &[(FuncId, InstrId)] {
        self.store_sites.get(&object).map_or(&[], Vec::as_slice)
    }

    /// Number of static store sites writing `object`.
    pub fn store_site_count(&self, object: MemObjectId) -> usize {
        self.store_sites(object).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{Operand, ProgramBuilder};

    fn program() -> (ccr_ir::Program, [InstrId; 3], MemObjectId) {
        let mut pb = ProgramBuilder::new();
        let ro = pb.table("bits", vec![0, 1, 1, 2]);
        let named = pb.object("brktable", 16);
        let heap = pb.heap("anon", 8);
        let mut f = pb.function("main", 0, 0);
        let a = f.load(ro, 1i64);
        let b = f.load(named, 0i64);
        let c = f.load(heap, 0i64);
        f.store(named, 0i64, a);
        f.store(heap, 1i64, b);
        let _ = c;
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let loads: Vec<InstrId> = p
            .function(id)
            .iter_instrs()
            .filter(|(_, i)| i.is_load())
            .map(|(_, i)| i.id)
            .collect();
        (p, [loads[0], loads[1], loads[2]], named)
    }

    #[test]
    fn classification_by_object_kind() {
        let (p, [ro_load, named_load, heap_load], _) = program();
        let ai = AliasInfo::compute(&p);
        assert_eq!(ai.load_class(ro_load), Determinable::ReadOnly);
        assert_eq!(ai.load_class(named_load), Determinable::Writable);
        assert_eq!(ai.load_class(heap_load), Determinable::No);
        assert!(ai.is_determinable(ro_load));
        assert!(ai.is_determinable(named_load));
        assert!(!ai.is_determinable(heap_load));
    }

    #[test]
    fn store_sites_collected() {
        let (p, _, named) = program();
        let ai = AliasInfo::compute(&p);
        assert_eq!(ai.store_site_count(named), 1);
        let (f, _) = ai.store_sites(named)[0];
        assert_eq!(f, p.main());
    }

    #[test]
    fn non_load_is_not_determinable() {
        let (p, _, _) = program();
        let ai = AliasInfo::compute(&p);
        let ret = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| matches!(i.op, Op::Ret { .. }))
            .unwrap()
            .1
            .id;
        assert_eq!(ai.load_class(ret), Determinable::No);
    }

    #[test]
    fn readonly_object_has_no_store_sites() {
        let mut pb = ProgramBuilder::new();
        let ro = pb.table("t", vec![5]);
        let mut f = pb.function("main", 0, 1);
        let v = f.load(ro, 0i64);
        f.ret(&[Operand::Reg(v)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let ai = AliasInfo::compute(&p);
        assert_eq!(ai.store_site_count(ro), 0);
    }
}

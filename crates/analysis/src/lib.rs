#![warn(missing_docs)]

//! # ccr-analysis — program analyses for the CCR framework
//!
//! The compiler side of the paper (Section 4) needs a standard
//! middle-end analysis toolkit:
//!
//! * control-flow utilities: reachability, reverse postorder ([`cfg`](mod@cfg)),
//! * dominator trees ([`dom`]) and natural-loop detection ([`loops`]),
//! * live-register analysis ([`liveness`]) — used to compute the
//!   live-out set of a reusable computation region,
//! * reaching definitions and def-use chains ([`reaching`]) — used by
//!   acyclic region growth along dataflow edges,
//! * a call graph with transitive side-effect summaries ([`callgraph`]),
//! * alias information for named memory objects and the paper's
//!   *determinable load* classification ([`alias`]).
//!
//! All analyses operate on the [`ccr_ir`] representation and are pure
//! queries: they never mutate the program.

pub mod alias;
pub mod callgraph;
pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod loops;
pub mod reaching;

pub use alias::{AliasInfo, Determinable};
pub use callgraph::{CallGraph, SideEffects};
pub use cfg::{reachable_blocks, reverse_postorder};
pub use dom::DomTree;
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use reaching::{DefUse, ReachingDefs};

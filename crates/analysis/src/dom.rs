//! Dominator trees, via the Cooper–Harvey–Kennedy iterative algorithm.

use ccr_ir::{BlockId, Function};

use crate::cfg::reverse_postorder;

/// The dominator tree of a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the entry and for
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder index of each block (usize::MAX if
    /// unreachable).
    rpo_index: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> DomTree {
        let n = func.blocks.len();
        let rpo = reverse_postorder(func);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = func.predecessors();
        let entry = func.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally itself during the fixpoint;
        // expose it as None.
        idom[entry.index()] = None;
        DomTree {
            idom,
            rpo_index,
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return cur == a && a == self.entry,
            }
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("reachable block without idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("reachable block without idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, ProgramBuilder};

    /// entry(0) -> {1,2}; 1->3; 2->3; 3->ret. Plus loop test separately.
    fn diamond() -> (ccr_ir::Program, ccr_ir::FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let a = f.block();
        let b = f.block();
        let join = f.block();
        f.br(CmpPred::Lt, 1i64, 2i64, a, b);
        f.switch_to(a);
        f.jump(join);
        f.switch_to(b);
        f.jump(join);
        f.switch_to(join);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        (pb.finish(), id)
    }

    #[test]
    fn diamond_idoms() {
        let (p, id) = diamond();
        let dt = DomTree::compute(p.function(id));
        assert_eq!(dt.idom(BlockId(0)), None);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        // join's idom is the entry, not either arm.
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
    }

    #[test]
    fn dominates_is_reflexive_and_follows_tree() {
        let (p, id) = diamond();
        let dt = DomTree::compute(p.function(id));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        f.br(CmpPred::Lt, i, 10i64, body, exit);
        f.switch_to(body);
        f.inc(i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let dt = DomTree::compute(p.function(id));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dt.is_reachable(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let dead = f.block();
        f.ret(&[]);
        f.switch_to(dead);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let dt = DomTree::compute(p.function(id));
        assert_eq!(dt.idom(dead), None);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(BlockId(0), dead));
    }
}

//! Natural-loop detection.
//!
//! Cyclic RCR formation (Section 4.4 of the paper) operates on
//! inner-nested loops. We detect natural loops from back edges in the
//! dominator tree, compute their bodies, nesting, exits, and
//! preheaders.

use std::collections::BTreeSet;

use ccr_ir::{BlockId, Function};

use crate::dom::DomTree;

/// A natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub body: BTreeSet<BlockId>,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// Exit edges `(from_block_in_loop, to_block_outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
    /// Loop nesting depth (1 = outermost).
    pub depth: usize,
    /// True if no other detected loop is strictly contained in this one.
    pub innermost: bool,
}

impl Loop {
    /// True if `b` belongs to the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// The unique predecessor of the header outside the loop, if there
    /// is exactly one (the natural preheader position).
    pub fn preheader(&self, func: &Function) -> Option<BlockId> {
        let preds = func.predecessors();
        let outside: Vec<BlockId> = preds[self.header.index()]
            .iter()
            .copied()
            .filter(|p| !self.contains(*p))
            .collect();
        if outside.len() == 1 {
            Some(outside[0])
        } else {
            None
        }
    }

    /// The unique block outside the loop targeted by exit edges, if
    /// all exits agree on one target.
    pub fn single_exit_target(&self) -> Option<BlockId> {
        let mut targets: Vec<BlockId> = self.exits.iter().map(|&(_, t)| t).collect();
        targets.sort();
        targets.dedup();
        if targets.len() == 1 {
            Some(targets[0])
        } else {
            None
        }
    }
}

/// All natural loops of a function.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects the natural loops of `func`.
    ///
    /// Loops sharing a header are merged (standard natural-loop
    /// treatment of multiple back edges).
    pub fn compute(func: &Function) -> LoopForest {
        let dt = DomTree::compute(func);
        Self::compute_with(func, &dt)
    }

    /// Detects loops reusing an existing dominator tree.
    pub fn compute_with(func: &Function, dt: &DomTree) -> LoopForest {
        // Find back edges: b -> h where h dominates b.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for (bid, block) in func.iter_blocks() {
            if !dt.is_reachable(bid) {
                continue;
            }
            for s in block.successors() {
                if dt.dominates(s, bid) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(bid),
                        None => by_header.push((s, vec![bid])),
                    }
                }
            }
        }
        let preds = func.predecessors();
        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, latches)| {
                let mut body = BTreeSet::new();
                body.insert(header);
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for &p in &preds[b.index()] {
                            if !body.contains(&p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                let mut exits = Vec::new();
                for &b in &body {
                    for s in func.block(b).successors() {
                        if !body.contains(&s) {
                            exits.push((b, s));
                        }
                    }
                }
                Loop {
                    header,
                    body,
                    latches,
                    exits,
                    depth: 0,
                    innermost: true,
                }
            })
            .collect();
        // Nesting: loop A contains loop B if A.body ⊇ B.body and A != B.
        let bodies: Vec<BTreeSet<BlockId>> = loops.iter().map(|l| l.body.clone()).collect();
        for (i, l) in loops.iter_mut().enumerate() {
            let mut depth = 1;
            let mut innermost = true;
            for (j, other) in bodies.iter().enumerate() {
                if i == j {
                    continue;
                }
                if other.is_superset(&l.body) && other.len() > l.body.len() {
                    depth += 1;
                }
                if l.body.is_superset(other) && l.body.len() > other.len() {
                    innermost = false;
                }
            }
            l.depth = depth;
            l.innermost = innermost;
        }
        LoopForest { loops }
    }

    /// All detected loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loops only.
    pub fn inner_loops(&self) -> impl Iterator<Item = &Loop> {
        self.loops.iter().filter(|l| l.innermost)
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// Loop nesting depth of a block (0 = not in any loop).
    pub fn depth_of(&self, b: BlockId) -> usize {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .map(|l| l.depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, FuncId, Program, ProgramBuilder};

    /// main: i=0; do { j=0; do { j++ } while j<5; i++ } while i<10; ret
    fn nested() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let j = f.fresh();
        let outer = f.block();
        let inner = f.block();
        let outer_latch = f.block();
        let exit = f.block();
        f.jump(outer);
        f.switch_to(outer);
        f.assign(j, 0i64);
        f.jump(inner);
        f.switch_to(inner);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 5i64, inner, outer_latch);
        f.switch_to(outer_latch);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 10i64, outer, exit);
        f.switch_to(exit);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        (pb.finish(), id)
    }

    #[test]
    fn detects_two_nested_loops() {
        let (p, id) = nested();
        let lf = LoopForest::compute(p.function(id));
        assert_eq!(lf.loops().len(), 2);
        let inner: Vec<&Loop> = lf.inner_loops().collect();
        assert_eq!(inner.len(), 1);
        let inner = inner[0];
        assert_eq!(inner.header, BlockId(2));
        assert_eq!(inner.body.len(), 1); // self-loop block only
        assert_eq!(inner.depth, 2);
        let outer = lf.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        assert!(!outer.innermost);
        assert_eq!(outer.depth, 1);
        assert!(outer.body.contains(&BlockId(2)));
        assert!(outer.body.contains(&BlockId(3)));
    }

    #[test]
    fn exits_and_preheader() {
        let (p, id) = nested();
        let lf = LoopForest::compute(p.function(id));
        let inner = lf.inner_loops().next().unwrap();
        assert_eq!(inner.exits, vec![(BlockId(2), BlockId(3))]);
        assert_eq!(inner.single_exit_target(), Some(BlockId(3)));
        assert_eq!(inner.preheader(p.function(id)), Some(BlockId(1)));
        let outer = lf.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        assert_eq!(outer.single_exit_target(), Some(BlockId(4)));
        assert_eq!(outer.preheader(p.function(id)), Some(BlockId(0)));
    }

    #[test]
    fn depth_of_blocks() {
        let (p, id) = nested();
        let lf = LoopForest::compute(p.function(id));
        assert_eq!(lf.depth_of(BlockId(0)), 0);
        assert_eq!(lf.depth_of(BlockId(1)), 1);
        assert_eq!(lf.depth_of(BlockId(2)), 2);
        assert_eq!(lf.depth_of(BlockId(4)), 0);
        assert_eq!(
            lf.innermost_containing(BlockId(2)).unwrap().header,
            BlockId(2)
        );
        assert!(lf.innermost_containing(BlockId(4)).is_none());
    }

    #[test]
    fn loop_free_function_has_no_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let lf = LoopForest::compute(p.function(id));
        assert!(lf.loops().is_empty());
    }
}

//! Call graph and transitive side-effect summaries.
//!
//! Memory-dependent region formation must know, for every function,
//! which named objects it (or anything it calls) may write. The paper
//! relies on interprocedural points-to analysis to find "the set of
//! only four functions" that update `brktable`; our equivalent is the
//! transitive store summary computed here.

use std::collections::BTreeSet;

use ccr_ir::{FuncId, MemObjectId, Op, Program};

/// The static call graph of a program.
#[derive(Clone, Debug)]
pub struct CallGraph {
    callees: Vec<BTreeSet<FuncId>>,
    callers: Vec<BTreeSet<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn compute(program: &Program) -> CallGraph {
        let n = program.functions().len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut callers = vec![BTreeSet::new(); n];
        for func in program.functions() {
            for (_, instr) in func.iter_instrs() {
                if let Op::Call { callee, .. } = &instr.op {
                    callees[func.id().index()].insert(*callee);
                    callers[callee.index()].insert(func.id());
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions directly called by `f`.
    pub fn callees(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callees[f.index()]
    }

    /// Functions that directly call `f`.
    pub fn callers(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callers[f.index()]
    }

    /// Functions reachable from `f` through calls, including `f`.
    pub fn reachable_from(&self, f: FuncId) -> BTreeSet<FuncId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if seen.insert(g) {
                stack.extend(self.callees[g.index()].iter().copied());
            }
        }
        seen
    }
}

/// Per-function side-effect summaries, closed over the call graph.
#[derive(Clone, Debug)]
pub struct SideEffects {
    /// Objects a function may write, directly or transitively.
    writes: Vec<BTreeSet<MemObjectId>>,
    /// Objects a function may read, directly or transitively.
    reads: Vec<BTreeSet<MemObjectId>>,
    /// Whether the function (transitively) contains any store at all.
    has_store: Vec<bool>,
    /// Whether the function (transitively) contains any call.
    has_call: Vec<bool>,
}

impl SideEffects {
    /// Computes transitive summaries for every function.
    pub fn compute(program: &Program, cg: &CallGraph) -> SideEffects {
        let n = program.functions().len();
        let mut writes = vec![BTreeSet::new(); n];
        let mut reads = vec![BTreeSet::new(); n];
        let mut has_store = vec![false; n];
        let mut has_call = vec![false; n];
        for func in program.functions() {
            let i = func.id().index();
            for (_, instr) in func.iter_instrs() {
                match &instr.op {
                    Op::Store { object, .. } => {
                        writes[i].insert(*object);
                        has_store[i] = true;
                    }
                    Op::Load { object, .. } => {
                        reads[i].insert(*object);
                    }
                    Op::Call { .. } => has_call[i] = true,
                    _ => {}
                }
            }
        }
        // Transitive closure over the call graph.
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                for callee in cg.callees(FuncId(f as u32)).clone() {
                    let (w, r, s) = (
                        writes[callee.index()].clone(),
                        reads[callee.index()].clone(),
                        has_store[callee.index()],
                    );
                    let before = writes[f].len() + reads[f].len();
                    writes[f].extend(w);
                    reads[f].extend(r);
                    if s && !has_store[f] {
                        has_store[f] = true;
                        changed = true;
                    }
                    if writes[f].len() + reads[f].len() != before {
                        changed = true;
                    }
                }
            }
        }
        SideEffects {
            writes,
            reads,
            has_store,
            has_call,
        }
    }

    /// Objects `f` may write, transitively.
    pub fn writes(&self, f: FuncId) -> &BTreeSet<MemObjectId> {
        &self.writes[f.index()]
    }

    /// Objects `f` may read, transitively.
    pub fn reads(&self, f: FuncId) -> &BTreeSet<MemObjectId> {
        &self.reads[f.index()]
    }

    /// True if `f` may store to memory, transitively.
    pub fn may_store(&self, f: FuncId) -> bool {
        self.has_store[f.index()]
    }

    /// True if `f` contains a call instruction.
    pub fn makes_calls(&self, f: FuncId) -> bool {
        self.has_call[f.index()]
    }

    /// All functions that may write `object`, directly or through
    /// callees — the invalidation-placement set for an MD region.
    pub fn writers_of(&self, object: MemObjectId) -> Vec<FuncId> {
        self.writes
            .iter()
            .enumerate()
            .filter(|(_, w)| w.contains(&object))
            .map(|(i, _)| FuncId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{Operand, ProgramBuilder};

    /// main -> a -> b(writes obj); main -> c(reads obj)
    fn program() -> (ccr_ir::Program, MemObjectId, [FuncId; 4]) {
        let mut pb = ProgramBuilder::new();
        let obj = pb.object("table", 8);
        let b = {
            let mut f = pb.function("b", 0, 0);
            f.store(obj, 0i64, 1i64);
            f.ret(&[]);
            pb.finish_function(f)
        };
        let a = {
            let mut f = pb.function("a", 0, 0);
            let _ = f.call(b, &[], 0);
            f.ret(&[]);
            pb.finish_function(f)
        };
        let c = {
            let mut f = pb.function("c", 0, 1);
            let v = f.load(obj, 0i64);
            f.ret(&[Operand::Reg(v)]);
            pb.finish_function(f)
        };
        let main = {
            let mut f = pb.function("main", 0, 0);
            let _ = f.call(a, &[], 0);
            let _ = f.call(c, &[], 1);
            f.ret(&[]);
            pb.finish_function(f)
        };
        pb.set_main(main);
        (pb.finish(), obj, [main, a, b, c])
    }

    #[test]
    fn call_graph_edges() {
        let (p, _, [main, a, b, c]) = program();
        let cg = CallGraph::compute(&p);
        assert!(cg.callees(main).contains(&a));
        assert!(cg.callees(main).contains(&c));
        assert!(cg.callees(a).contains(&b));
        assert!(cg.callers(b).contains(&a));
        let reach = cg.reachable_from(main);
        assert_eq!(reach.len(), 4);
        assert_eq!(cg.reachable_from(b).len(), 1);
    }

    #[test]
    fn transitive_writes() {
        let (p, obj, [main, a, b, c]) = program();
        let cg = CallGraph::compute(&p);
        let se = SideEffects::compute(&p, &cg);
        assert!(se.writes(b).contains(&obj));
        assert!(
            se.writes(a).contains(&obj),
            "write must propagate to caller"
        );
        assert!(se.writes(main).contains(&obj));
        assert!(!se.writes(c).contains(&obj));
        assert!(se.reads(c).contains(&obj));
        assert!(se.reads(main).contains(&obj));
        assert!(se.may_store(a));
        assert!(!se.may_store(c));
        assert!(se.makes_calls(main));
        assert!(!se.makes_calls(b));
    }

    #[test]
    fn writers_of_object() {
        let (p, obj, [main, a, b, _c]) = program();
        let cg = CallGraph::compute(&p);
        let se = SideEffects::compute(&p, &cg);
        let writers = se.writers_of(obj);
        assert!(writers.contains(&b));
        assert!(writers.contains(&a));
        assert!(writers.contains(&main));
        assert_eq!(writers.len(), 3);
    }

    #[test]
    fn recursive_functions_converge() {
        let mut pb = ProgramBuilder::new();
        let obj = pb.object("o", 1);
        let f_id = pb.declare("rec", 0, 0);
        let mut f = pb.function_body(f_id);
        let t = f.block();
        let e = f.block();
        f.br(ccr_ir::CmpPred::Lt, 0i64, 1i64, t, e);
        f.switch_to(t);
        let _ = f.call(f_id, &[], 0);
        f.jump(e);
        f.switch_to(e);
        f.store(obj, 0i64, 0i64);
        f.ret(&[]);
        pb.finish_function(f);
        let mut m = pb.function("main", 0, 0);
        let _ = m.call(f_id, &[], 0);
        m.ret(&[]);
        let main = pb.finish_function(m);
        pb.set_main(main);
        let p = pb.finish();
        let cg = CallGraph::compute(&p);
        let se = SideEffects::compute(&p, &cg);
        assert!(se.writes(f_id).contains(&obj));
        assert!(se.writes(main).contains(&obj));
    }
}

//! Backward live-register analysis.
//!
//! Region formation uses liveness twice: to compute the *live-out
//! registers* of a region (the values the computation instance must
//! record in its output bank) and to check the paper's eight-register
//! capacity limits.

use std::collections::HashSet;

use ccr_ir::{BlockId, Function, Reg};

/// Live-register sets at block boundaries.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `func` by iterating the standard backward
    /// dataflow equations to a fixpoint.
    pub fn compute(func: &Function) -> Liveness {
        let n = func.blocks.len();
        // Per-block use/def (use = read before any write in the block).
        let mut uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        for (bid, block) in func.iter_blocks() {
            let (u, d) = (&mut uses[bid.index()], &mut defs[bid.index()]);
            for instr in &block.instrs {
                for r in instr.src_regs() {
                    if !d.contains(&r) {
                        u.insert(r);
                    }
                }
                for w in instr.dsts() {
                    d.insert(w);
                }
            }
        }
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate blocks in reverse id order as a cheap
            // approximation of post-order for faster convergence.
            for idx in (0..n).rev() {
                let bid = BlockId(idx as u32);
                let mut out = HashSet::new();
                for s in func.block(bid).successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<Reg> = uses[idx].clone();
                inn.extend(out.difference(&defs[idx]).copied());
                if out != live_out[idx] {
                    live_out[idx] = out;
                    changed = true;
                }
                if inn != live_in[idx] {
                    live_in[idx] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[b.index()]
    }

    /// Registers live immediately *before* instruction `pos` of block
    /// `b`, computed by walking backward from the block's live-out set.
    pub fn live_before(&self, func: &Function, b: BlockId, pos: usize) -> HashSet<Reg> {
        let block = func.block(b);
        let mut live = self.live_out[b.index()].clone();
        for instr in block.instrs.iter().skip(pos).rev() {
            for w in instr.dsts() {
                live.remove(&w);
            }
            for r in instr.src_regs() {
                live.insert(r);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, Operand, ProgramBuilder};

    #[test]
    fn straight_line_liveness() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(1); // a dead after b's def if unused later
        let b = f.add(a, 2);
        f.ret(&[Operand::Reg(b)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let lv = Liveness::compute(func);
        let entry = func.entry();
        assert!(lv.live_in(entry).is_empty());
        assert!(lv.live_out(entry).is_empty());
        // Before the ret (pos 2), b is live but a is not.
        let before_ret = lv.live_before(func, entry, 2);
        assert!(before_ret.contains(&b));
        assert!(!before_ret.contains(&a));
        // Before the add (pos 1), a is live.
        let before_add = lv.live_before(func, entry, 1);
        assert!(before_add.contains(&a));
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let sum = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let exit = f.block();
        f.jump(body);
        f.switch_to(body);
        f.bin_into(ccr_ir::BinKind::Add, sum, sum, i);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 10i64, body, exit);
        f.switch_to(exit);
        f.ret(&[Operand::Reg(sum)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let lv = Liveness::compute(func);
        assert!(lv.live_in(body).contains(&sum));
        assert!(lv.live_in(body).contains(&i));
        assert!(lv.live_out(body).contains(&sum));
        assert!(lv.live_in(exit).contains(&sum));
        assert!(!lv.live_in(exit).contains(&i));
    }

    #[test]
    fn branch_operands_are_live() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let x = f.movi(3);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Eq, x, 0i64, t, e);
        f.switch_to(t);
        f.ret(&[]);
        f.switch_to(e);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let lv = Liveness::compute(func);
        let before_br = lv.live_before(func, func.entry(), 1);
        assert!(before_br.contains(&x));
        assert!(lv.live_in(t).is_empty());
    }
}

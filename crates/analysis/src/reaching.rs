//! Reaching definitions and def-use chains.
//!
//! Acyclic region formation grows regions along dataflow edges: a
//! successor instruction is one that consumes a value produced inside
//! the region. Def-use chains over reaching definitions provide those
//! edges.

use std::collections::{HashMap, HashSet};

use ccr_ir::{BlockId, Function, InstrId, Reg};

/// One register definition site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Def {
    /// The defining instruction.
    pub instr: InstrId,
    /// The register it defines.
    pub reg: Reg,
}

/// Reaching-definition sets at block boundaries.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    defs: Vec<Def>,
    /// Indices into `defs`, reaching each block entry.
    reach_in: Vec<HashSet<u32>>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `func`.
    ///
    /// Function parameters are modeled as definitions by a virtual
    /// "entry" instruction with id `InstrId(u32::MAX)`.
    pub fn compute(func: &Function) -> ReachingDefs {
        let mut defs: Vec<Def> = Vec::new();
        let mut defs_of_reg: HashMap<Reg, Vec<u32>> = HashMap::new();
        for p in func.params() {
            let idx = defs.len() as u32;
            defs.push(Def {
                instr: InstrId(u32::MAX),
                reg: p,
            });
            defs_of_reg.entry(p).or_default().push(idx);
        }
        for (_, instr) in func.iter_instrs() {
            for reg in instr.dsts() {
                let idx = defs.len() as u32;
                defs.push(Def {
                    instr: instr.id,
                    reg,
                });
                defs_of_reg.entry(reg).or_default().push(idx);
            }
        }
        let n = func.blocks.len();
        // gen/kill per block.
        let mut gen = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        let mut def_index: HashMap<(InstrId, Reg), u32> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            def_index.insert((d.instr, d.reg), i as u32);
        }
        for (bid, block) in func.iter_blocks() {
            let (g, k) = (&mut gen[bid.index()], &mut kill[bid.index()]);
            for instr in &block.instrs {
                for reg in instr.dsts() {
                    let this = def_index[&(instr.id, reg)];
                    for &other in &defs_of_reg[&reg] {
                        if other != this {
                            k.insert(other);
                        }
                    }
                    g.retain(|d: &u32| defs[*d as usize].reg != reg);
                    g.insert(this);
                    k.remove(&this);
                }
            }
        }
        let mut reach_in: Vec<HashSet<u32>> = vec![HashSet::new(); n];
        // Parameters reach the entry block.
        for (i, d) in defs.iter().enumerate() {
            if d.instr == InstrId(u32::MAX) {
                reach_in[func.entry().index()].insert(i as u32);
            }
        }
        let preds = func.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for idx in 0..n {
                let bid = BlockId(idx as u32);
                let mut inn: HashSet<u32> = if bid == func.entry() {
                    reach_in[idx].clone()
                } else {
                    HashSet::new()
                };
                for p in &preds[idx] {
                    let pi = p.index();
                    // out(p) = gen(p) ∪ (in(p) − kill(p))
                    inn.extend(gen[pi].iter().copied());
                    inn.extend(
                        reach_in[pi]
                            .iter()
                            .copied()
                            .filter(|d| !kill[pi].contains(d)),
                    );
                }
                if inn != reach_in[idx] {
                    reach_in[idx] = inn;
                    changed = true;
                }
            }
        }
        ReachingDefs { defs, reach_in }
    }

    /// All definitions (parameters first, then instruction defs).
    pub fn defs(&self) -> &[Def] {
        &self.defs
    }

    /// Definitions reaching the entry of `b`.
    pub fn reaching_in(&self, b: BlockId) -> impl Iterator<Item = Def> + '_ {
        self.reach_in[b.index()]
            .iter()
            .map(|&i| self.defs[i as usize])
    }

    /// The definitions of `reg` that reach the *use site* at position
    /// `pos` in block `b` (walking forward from the block entry).
    pub fn reaching_defs_of_use(
        &self,
        func: &Function,
        b: BlockId,
        pos: usize,
        reg: Reg,
    ) -> Vec<Def> {
        let mut current: Vec<Def> = self.reaching_in(b).filter(|d| d.reg == reg).collect();
        for instr in func.block(b).instrs.iter().take(pos) {
            if instr.dsts().contains(&reg) {
                current = vec![Def {
                    instr: instr.id,
                    reg,
                }];
            }
        }
        current
    }
}

/// Def-use chains: for every definition, the set of instructions that
/// may use it.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    /// def instruction -> instructions using one of its results.
    uses_of_def: HashMap<InstrId, Vec<InstrId>>,
    /// use instruction -> definitions reaching each of its source regs.
    defs_of_use: HashMap<InstrId, Vec<Def>>,
}

impl DefUse {
    /// Builds def-use chains from reaching definitions.
    pub fn compute(func: &Function, rd: &ReachingDefs) -> DefUse {
        let mut du = DefUse::default();
        for (bid, block) in func.iter_blocks() {
            for (pos, instr) in block.instrs.iter().enumerate() {
                for reg in instr.src_regs() {
                    for d in rd.reaching_defs_of_use(func, bid, pos, reg) {
                        du.defs_of_use.entry(instr.id).or_default().push(d);
                        if d.instr != InstrId(u32::MAX) {
                            du.uses_of_def.entry(d.instr).or_default().push(instr.id);
                        }
                    }
                }
            }
        }
        du
    }

    /// Instructions that may use a result of `def`.
    pub fn uses_of(&self, def: InstrId) -> &[InstrId] {
        self.uses_of_def.get(&def).map_or(&[], Vec::as_slice)
    }

    /// Definitions that may reach the source operands of `user`.
    pub fn defs_reaching(&self, user: InstrId) -> &[Def] {
        self.defs_of_use.get(&user).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, Operand, ProgramBuilder};

    #[test]
    fn straight_line_chains() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(1);
        let b = f.add(a, 2);
        f.ret(&[Operand::Reg(b)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let rd = ReachingDefs::compute(func);
        let du = DefUse::compute(func, &rd);
        let ids: Vec<InstrId> = func.iter_instrs().map(|(_, i)| i.id).collect();
        // movi (ids[0]) is used by add (ids[1]); add by ret (ids[2]).
        assert_eq!(du.uses_of(ids[0]), &[ids[1]]);
        assert_eq!(du.uses_of(ids[1]), &[ids[2]]);
        assert!(du.uses_of(ids[2]).is_empty());
        let defs = du.defs_reaching(ids[1]);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].instr, ids[0]);
    }

    #[test]
    fn merge_point_sees_both_defs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.fresh();
        let t = f.block();
        let e = f.block();
        let j = f.block();
        f.br(CmpPred::Lt, 0i64, 1i64, t, e);
        f.switch_to(t);
        f.assign(x, 1i64);
        f.jump(j);
        f.switch_to(e);
        f.assign(x, 2i64);
        f.jump(j);
        f.switch_to(j);
        f.ret(&[Operand::Reg(x)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let rd = ReachingDefs::compute(func);
        let du = DefUse::compute(func, &rd);
        let ret_id = func
            .iter_instrs()
            .find(|(_, i)| matches!(i.op, ccr_ir::Op::Ret { .. }))
            .unwrap()
            .1
            .id;
        let defs = du.defs_reaching(ret_id);
        assert_eq!(defs.len(), 2, "{defs:?}");
    }

    #[test]
    fn redefinition_kills_earlier_def() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(1);
        f.assign(x, 5i64); // redefines x; the movi no longer reaches
        f.ret(&[Operand::Reg(x)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let rd = ReachingDefs::compute(func);
        let du = DefUse::compute(func, &rd);
        let ids: Vec<InstrId> = func.iter_instrs().map(|(_, i)| i.id).collect();
        assert!(du.uses_of(ids[0]).is_empty());
        assert_eq!(du.uses_of(ids[1]), &[ids[2]]);
    }

    #[test]
    fn loop_carried_def_reaches_header_use() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        let body = f.block();
        let exit = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1); // def of i inside loop
        f.br(CmpPred::Lt, i, 10i64, body, exit);
        f.switch_to(exit);
        f.ret(&[Operand::Reg(i)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let func = p.function(id);
        let rd = ReachingDefs::compute(func);
        let du = DefUse::compute(func, &rd);
        let inc_id = func.block(body).instrs[0].id;
        // The inc's result is used by the branch, by itself
        // (loop-carried), and by the ret.
        let users = du.uses_of(inc_id);
        assert!(users.contains(&func.block(body).instrs[1].id));
        assert!(users.contains(&inc_id));
        assert!(users.contains(&func.block(exit).instrs[0].id));
    }

    #[test]
    fn params_reach_entry() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("g", 1, 1);
        let mut g = pb.function_body(callee);
        let x = g.param(0);
        let y = g.add(x, 1i64);
        g.ret(&[Operand::Reg(y)]);
        pb.finish_function(g);
        let mut m = pb.function("main", 0, 0);
        let _ = m.call(callee, &[Operand::Imm(1)], 1);
        m.ret(&[]);
        let mid = pb.finish_function(m);
        pb.set_main(mid);
        let p = pb.finish();
        let func = p.function(callee);
        let rd = ReachingDefs::compute(func);
        let entry_defs: Vec<Def> = rd.reaching_in(func.entry()).collect();
        assert_eq!(entry_defs.len(), 1);
        assert_eq!(entry_defs[0].instr, InstrId(u32::MAX));
    }
}

//! Control-flow-graph utilities.

use ccr_ir::{BlockId, Function};

/// The blocks reachable from the function entry, as a boolean vector
/// indexed by block id.
pub fn reachable_blocks(func: &Function) -> Vec<bool> {
    let mut reachable = vec![false; func.blocks.len()];
    let mut stack = vec![func.entry()];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b.index()], true) {
            continue;
        }
        for s in func.block(b).successors() {
            if !reachable[s.index()] {
                stack.push(s);
            }
        }
    }
    reachable
}

/// Reverse postorder of the reachable blocks (entry first).
///
/// Reverse postorder visits every block before any of its successors
/// except along back edges, which makes forward dataflow fixpoints
/// converge quickly.
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS carrying an explicit successor cursor.
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    visited[func.entry().index()] = true;
    stack.push((func.entry(), 0));
    while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
        let succs = func.block(b).successors();
        if *cursor < succs.len() {
            let s = succs[*cursor];
            *cursor += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Postorder index of each block (usize::MAX for unreachable blocks).
pub fn postorder_index(func: &Function) -> Vec<usize> {
    let rpo = reverse_postorder(func);
    let mut idx = vec![usize::MAX; func.blocks.len()];
    let n = rpo.len();
    for (i, b) in rpo.iter().enumerate() {
        idx[b.index()] = n - 1 - i;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{CmpPred, ProgramBuilder};

    /// Builds a diamond with an unreachable extra block:
    /// entry -> {a, b} -> join; dead block unreached.
    fn diamond() -> (ccr_ir::Program, ccr_ir::FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let a = f.block();
        let b = f.block();
        let join = f.block();
        let dead = f.block();
        f.br(CmpPred::Lt, 1i64, 2i64, a, b);
        f.switch_to(a);
        f.jump(join);
        f.switch_to(b);
        f.jump(join);
        f.switch_to(join);
        f.ret(&[]);
        f.switch_to(dead);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        (pb.finish(), id)
    }

    #[test]
    fn reachability_excludes_dead_blocks() {
        let (p, id) = diamond();
        let r = reachable_blocks(p.function(id));
        assert_eq!(r, vec![true, true, true, true, false]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (p, id) = diamond();
        let rpo = reverse_postorder(p.function(id));
        assert_eq!(rpo[0], p.function(id).entry());
        assert_eq!(rpo.len(), 4);
        // join must come after both a and b.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn rpo_handles_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let body = f.block();
        let exit = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 10i64, body, exit);
        f.switch_to(exit);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let rpo = reverse_postorder(p.function(id));
        assert_eq!(rpo.len(), 3);
        assert_eq!(rpo[0], BlockId(0));
    }

    #[test]
    fn postorder_index_orders_successors_lower() {
        let (p, id) = diamond();
        let po = postorder_index(p.function(id));
        // entry has the highest postorder index among reachable blocks.
        assert!(po[0] > po[1] && po[0] > po[2] && po[0] > po[3]);
        assert_eq!(po[4], usize::MAX);
    }
}

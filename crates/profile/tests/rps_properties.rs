//! Reference checks for the Reuse Profiling System: the online
//! profiler's counters must match naive recounts over an explicitly
//! recorded trace, and the emulator's event stream must satisfy its
//! structural contract (balanced call/ret, block entries preceding
//! their instructions).

use std::collections::HashMap;

use ccr_ir::{BinKind, BlockId, CmpPred, FuncId, Operand, Program, ProgramBuilder};
use ccr_profile::{hash_values, Emulator, ExecEvent, NullCrb, TraceSink, ValueProfiler, TOP_K};
use proptest::prelude::*;

/// A recording sink: keeps per-instruction input-signature sequences
/// and the raw event structure.
#[derive(Default)]
struct Recorder {
    sigs: HashMap<ccr_ir::InstrId, Vec<u64>>,
    depth: i64,
    max_depth: i64,
    balanced: bool,
    block_entries: u64,
    execs: u64,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            balanced: true,
            ..Recorder::default()
        }
    }
}

impl TraceSink for Recorder {
    fn on_exec(&mut self, e: &ExecEvent<'_>) {
        self.execs += 1;
        self.sigs
            .entry(e.instr.id)
            .or_default()
            .push(hash_values(e.inputs));
        if e.depth as i64 != self.depth {
            self.balanced = false;
        }
    }
    fn on_block_enter(&mut self, _f: FuncId, _b: BlockId) {
        self.block_entries += 1;
    }
    fn on_call(&mut self, _c: FuncId, _t: FuncId) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }
    fn on_ret(&mut self, _f: FuncId) {
        self.depth -= 1;
        if self.depth < -1 {
            self.balanced = false;
        }
    }
}

/// Naive invariance: the sum of the top-k signature counts over exec.
fn invariance_brute(sigs: &[u64], k: usize) -> f64 {
    if sigs.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for s in sigs {
        *counts.entry(*s).or_insert(0) += 1;
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v.into_iter().take(k).sum::<u64>() as f64 / sigs.len() as f64
}

#[derive(Debug, Clone)]
struct Spec {
    pool: Vec<i64>,
    trips: i64,
    call_helper: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(-50i64..50, 1..8),
        1i64..60,
        any::<bool>(),
    )
        .prop_map(|(pool, trips, call_helper)| Spec {
            pool,
            trips,
            call_helper,
        })
}

fn build(spec: &Spec) -> Program {
    let mut pb = ProgramBuilder::new();
    let n = spec.pool.len().next_power_of_two().max(4);
    let mut init = spec.pool.clone();
    init.resize(n, 0);
    let t = pb.table("t", init);
    let helper = pb.declare("helper", 1, 1);
    {
        let mut h = pb.function_body(helper);
        let x = h.param(0);
        let y = h.mul(x, 3);
        h.ret(&[Operand::Reg(y)]);
        pb.finish_function(h);
    }
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let m = f.and(i, n as i64 - 1);
    let v = f.load(t, m);
    let x = f.xor(v, 5);
    let w = if spec.call_helper {
        f.call(helper, &[Operand::Reg(x)], 1)[0]
    } else {
        f.add(x, 1)
    };
    f.bin_into(BinKind::Add, acc, acc, w);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, spec.trips, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let id = pb.finish_function(f);
    pb.set_main(id);
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The profiler's exec counts and invariance ratios equal naive
    /// recounts from the raw trace.
    #[test]
    fn profiler_matches_trace_recount(s in spec()) {
        let p = build(&s);
        // One run records the raw trace, a second run profiles; the
        // emulator is deterministic so both see the same stream.
        let mut rec = Recorder::new();
        Emulator::new(&p).run(&mut NullCrb, &mut rec).unwrap();
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        prop_assert_eq!(profile.total_dyn_instrs, rec.execs);
        for (id, sigs) in &rec.sigs {
            prop_assert_eq!(
                profile.exec(*id),
                sigs.len() as u64,
                "exec count of {:?}", id
            );
            let got = profile.invariance_ratio(*id, TOP_K);
            let want = invariance_brute(sigs, TOP_K);
            prop_assert!(
                (got - want).abs() < 1e-9,
                "invariance of {:?}: {} vs {}", id, got, want
            );
        }
    }

    /// Event-stream contract: call/ret depths balance, and the
    /// reported per-event depth matches the running call depth.
    #[test]
    fn trace_stream_is_well_formed(s in spec()) {
        let p = build(&s);
        let mut rec = Recorder::new();
        Emulator::new(&p).run(&mut NullCrb, &mut rec).unwrap();
        prop_assert!(rec.balanced, "depth bookkeeping diverged");
        // Final ret from main leaves depth at -1.
        prop_assert_eq!(rec.depth, -1);
        prop_assert!(rec.block_entries > 0);
        if s.call_helper {
            prop_assert!(rec.max_depth >= 1);
        }
    }

    /// The memory profile: a read-only table scanned at a fixed
    /// stride is "unchanged" on every access after each location's
    /// first.
    #[test]
    fn readonly_mem_profile_is_exact(s in spec()) {
        let p = build(&s);
        let mut prof = ValueProfiler::for_program(&p);
        Emulator::new(&p).run(&mut NullCrb, &mut prof).unwrap();
        let profile = prof.finish();
        let load_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| i.is_load())
            .unwrap()
            .1
            .id;
        let n = p.object(ccr_ir::MemObjectId(0)).size() as i64;
        let distinct_locs = s.trips.min(n) as f64;
        let execs = s.trips as f64;
        let want = (execs - distinct_locs) / execs;
        let got = profile.mem_unchanged_ratio(load_id);
        prop_assert!((got - want).abs() < 1e-9, "{} vs {}", got, want);
    }
}

//! The reuse-potential limit study behind Figure 4 of the paper.
//!
//! Section 2.3: *"we constructed a value profiling infrastructure
//! within the IMPACT compiler and emulation framework to record reuse
//! opportunities for basic blocks and regions of code. Regions are
//! defined as paths of basic block segments and include both cyclic
//! and acyclic formations. ... Store instructions were not considered
//! to have reuse opportunities. Load instructions were considered
//! reusable if their source memory location had not been accessed by
//! any store operation between load executions. Reuse for cyclic
//! regions is detected by monitoring additional program state at the
//! invocation of the respective region headers. ... eight records of
//! previous dynamic information for each code segment were maintained."*
//!
//! The study runs as a [`TraceSink`] over an emulation:
//!
//! * **Block level**: every dynamic basic-block execution forms an
//!   input signature (live-in register values consumed plus the
//!   version stamps of every loaded location). A match against the
//!   block's 8-deep history makes all its non-store instructions
//!   *block-reusable*.
//! * **Region level**: dynamic *paths* of up to
//!   [`PotentialConfig::max_path_blocks`] block executions form the
//!   acyclic regions, and invocations of pure innermost loops form the
//!   cyclic regions, each with their own 8-deep history. Instructions
//!   inside an active pure-loop invocation are attributed to the
//!   cyclic detector; all others to the path detector, so the two
//!   never double-count.

use std::collections::{HashMap, VecDeque};

use ccr_ir::{BlockId, FuncId, MemObjectId, Operand, Program, Reg, Value};

use crate::rps::{hash_values, LoopKey, LoopMeta, ValueProfiler};
use crate::trace::{ExecEvent, TraceSink};

/// Limit-study parameters.
#[derive(Clone, Copy, Debug)]
pub struct PotentialConfig {
    /// Records of previous dynamic information kept per code segment
    /// (8 in the paper).
    pub history_depth: usize,
    /// Maximum block executions chained into one acyclic path region.
    pub max_path_blocks: usize,
}

impl Default for PotentialConfig {
    fn default() -> Self {
        PotentialConfig {
            history_depth: 8,
            max_path_blocks: 8,
        }
    }
}

/// Result of the limit study.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ReusePotential {
    /// Total dynamic instructions observed.
    pub total_instrs: u64,
    /// Dynamic instructions covered by block-level reuse.
    pub block_reusable: u64,
    /// Dynamic instructions covered by region-level (path + cyclic)
    /// reuse.
    pub region_reusable: u64,
    /// Portion of `region_reusable` contributed by cyclic regions.
    pub cyclic_reusable: u64,
}

impl ReusePotential {
    /// Fraction of dynamic execution reusable at block granularity.
    pub fn block_ratio(&self) -> f64 {
        ratio(self.block_reusable, self.total_instrs)
    }

    /// Fraction of dynamic execution reusable at region granularity.
    pub fn region_ratio(&self) -> f64 {
        ratio(self.region_reusable, self.total_instrs)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Accumulates the input signature of a region (block, path, or loop
/// invocation) as its instructions execute.
#[derive(Clone, Debug, Default)]
struct SigAccum {
    inputs: Vec<(Reg, Value)>,
    written: Vec<Reg>,
    loads: Vec<(MemObjectId, u64, u64)>,
    instrs: u64,
    stores: u64,
}

impl SigAccum {
    fn observe(&mut self, event: &ExecEvent<'_>, loc_version: &HashMap<(MemObjectId, u64), u64>) {
        self.instrs += 1;
        for (op, val) in event.instr.src_operands().iter().zip(event.inputs) {
            if let Operand::Reg(r) = op {
                if !self.written.contains(r) && !self.inputs.iter().any(|(x, _)| x == r) {
                    self.inputs.push((*r, *val));
                }
            }
        }
        for d in event.instr.dsts() {
            if !self.written.contains(&d) {
                self.written.push(d);
            }
        }
        if let Some(mem) = event.mem {
            if mem.is_store {
                self.stores += 1;
            } else {
                let v = loc_version
                    .get(&(mem.object, mem.index))
                    .copied()
                    .unwrap_or(0);
                self.loads.push((mem.object, mem.index, v));
            }
        }
    }

    /// Signature over live-in values, load locations, and load
    /// versions: equal signatures mean equal inputs with memory
    /// untouched in between.
    fn signature(&self) -> u64 {
        let mut vals: Vec<Value> = Vec::with_capacity(self.inputs.len() + self.loads.len() * 3);
        for (r, v) in &self.inputs {
            vals.push(Value::from_int(i64::from(r.0)));
            vals.push(*v);
        }
        for (o, i, ver) in &self.loads {
            vals.push(Value::from_int(i64::from(o.0)));
            vals.push(Value::from_int(*i as i64));
            vals.push(Value::from_int(*ver as i64));
        }
        hash_values(&vals)
    }

    /// Instructions counted reusable on a signature match.
    fn reusable_instrs(&self) -> u64 {
        self.instrs - self.stores
    }
}

#[derive(Debug)]
struct History {
    records: HashMap<(FuncId, BlockId), VecDeque<u64>>,
    depth: usize,
}

impl History {
    fn new(depth: usize) -> History {
        History {
            records: HashMap::new(),
            depth,
        }
    }

    /// Checks `sig` against the segment's history and records it.
    fn check_and_record(&mut self, key: (FuncId, BlockId), sig: u64) -> bool {
        let h = self.records.entry(key).or_default();
        let hit = h.iter().any(|&s| s == sig);
        if h.len() == self.depth {
            h.pop_front();
        }
        h.push_back(sig);
        hit
    }
}

#[derive(Debug)]
struct PathState {
    func: FuncId,
    head: BlockId,
    blocks: Vec<BlockId>,
    accum: SigAccum,
    /// Instructions inside this path already proven block-reusable;
    /// credited to the region count when the path itself misses, so
    /// region-level coverage subsumes block-level coverage (a single
    /// block is a trivial region).
    block_matched: u64,
}

#[derive(Debug)]
struct LoopState {
    key: LoopKey,
    accum: SigAccum,
    block_matched: u64,
}

/// The limit study, attached to an emulation as a [`TraceSink`].
pub struct PotentialStudy {
    config: PotentialConfig,
    loops: HashMap<LoopKey, LoopMeta>,
    result: ReusePotential,
    block_history: History,
    path_history: History,
    loop_history: History,
    loc_version: HashMap<(MemObjectId, u64), u64>,
    // Per-depth dynamic state.
    cur_block: HashMap<usize, (FuncId, BlockId, SigAccum)>,
    cur_path: HashMap<usize, PathState>,
    cur_loop: HashMap<usize, LoopState>,
    depth: usize,
}

impl PotentialStudy {
    /// Creates a study for `program` with default parameters; pure
    /// innermost loops become cyclic-region candidates.
    pub fn for_program(program: &Program) -> PotentialStudy {
        PotentialStudy::with_config(program, PotentialConfig::default())
    }

    /// Creates a study with explicit parameters.
    pub fn with_config(program: &Program, config: PotentialConfig) -> PotentialStudy {
        // Reuse the profiler's loop discovery, then discard it.
        let profiler = ValueProfiler::for_program(program);
        let loops = profiler.loop_metas();
        PotentialStudy {
            config,
            loops: loops
                .into_iter()
                .filter(|m| !m.impure)
                .map(|m| (m.key, m))
                .collect(),
            result: ReusePotential::default(),
            block_history: History::new(config.history_depth),
            path_history: History::new(config.history_depth),
            loop_history: History::new(config.history_depth),
            loc_version: HashMap::new(),
            cur_block: HashMap::new(),
            cur_path: HashMap::new(),
            cur_loop: HashMap::new(),
            depth: 0,
        }
    }

    /// Finalizes open segments and returns the measured potential.
    pub fn finish(mut self) -> ReusePotential {
        let depths: Vec<usize> = self.cur_block.keys().copied().collect();
        for d in depths {
            self.close_block(d);
        }
        let depths: Vec<usize> = self.cur_path.keys().copied().collect();
        for d in depths {
            self.close_path(d);
        }
        let depths: Vec<usize> = self.cur_loop.keys().copied().collect();
        for d in depths {
            self.close_loop(d);
        }
        self.result
    }

    fn close_block(&mut self, depth: usize) {
        if let Some((func, block, accum)) = self.cur_block.remove(&depth) {
            if accum.instrs == 0 {
                return;
            }
            let sig = accum.signature();
            if self.block_history.check_and_record((func, block), sig) {
                let n = accum.reusable_instrs();
                self.result.block_reusable += n;
                // Credit the enclosing region segment: if it misses,
                // these instructions are still region-reusable as
                // trivial single-block regions.
                if let Some(lp) = self.cur_loop.get_mut(&depth) {
                    lp.block_matched += n;
                } else if let Some(p) = self.cur_path.get_mut(&depth) {
                    p.block_matched += n;
                }
            }
        }
    }

    fn close_path(&mut self, depth: usize) {
        if let Some(path) = self.cur_path.remove(&depth) {
            if path.accum.instrs == 0 {
                return;
            }
            // Path identity: head block plus the sequence of blocks.
            let mut sig_vals: Vec<Value> = path
                .blocks
                .iter()
                .map(|b| Value::from_int(i64::from(b.0)))
                .collect();
            sig_vals.push(Value::from_int(path.accum.signature() as i64));
            let sig = hash_values(&sig_vals);
            if self
                .path_history
                .check_and_record((path.func, path.head), sig)
            {
                self.result.region_reusable += path.accum.reusable_instrs();
            } else {
                self.result.region_reusable += path.block_matched;
            }
        }
    }

    fn close_loop(&mut self, depth: usize) {
        if let Some(lp) = self.cur_loop.remove(&depth) {
            if lp.accum.instrs == 0 {
                return;
            }
            let sig = lp.accum.signature();
            if self
                .loop_history
                .check_and_record((lp.key.func, lp.key.header), sig)
            {
                self.result.region_reusable += lp.accum.reusable_instrs();
                self.result.cyclic_reusable += lp.accum.reusable_instrs();
            } else {
                self.result.region_reusable += lp.block_matched;
            }
        }
    }
}

impl TraceSink for PotentialStudy {
    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        let depth = self.depth;
        // Block segment: close previous, open new.
        self.close_block(depth);
        self.cur_block
            .insert(depth, (func, block, SigAccum::default()));

        // Cyclic regions take precedence over paths.
        let key = LoopKey {
            func,
            header: block,
        };
        let in_active_loop = self.cur_loop.get(&depth).is_some_and(|l| {
            self.loops
                .get(&l.key)
                .is_some_and(|m| m.body.contains(&block) && func == l.key.func)
        });
        if let Some(active) = self.cur_loop.get(&depth) {
            if active.key == key {
                // Next iteration: keep accumulating.
                return;
            }
            if !in_active_loop {
                self.close_loop(depth);
            } else {
                return; // still inside the active loop body
            }
        }
        if self.loops.contains_key(&key) {
            // Starting a new pure-loop invocation: paths pause.
            self.close_path(depth);
            self.cur_loop.insert(
                depth,
                LoopState {
                    key,
                    accum: SigAccum::default(),
                    block_matched: 0,
                },
            );
            return;
        }

        // Path segment: extend or rotate.
        let rotate = match self.cur_path.get(&depth) {
            None => true,
            Some(p) => {
                p.func != func
                    || p.blocks.len() >= self.config.max_path_blocks
                    || p.blocks.contains(&block)
            }
        };
        if rotate {
            self.close_path(depth);
            self.cur_path.insert(
                depth,
                PathState {
                    func,
                    head: block,
                    blocks: vec![block],
                    accum: SigAccum::default(),
                    block_matched: 0,
                },
            );
        } else if let Some(p) = self.cur_path.get_mut(&depth) {
            p.blocks.push(block);
        }
    }

    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        // A call ends the caller's open path; candidate loops are
        // pure, so no loop can be active across a call.
        let depth = self.depth;
        self.close_path(depth);
        self.close_loop(depth);
        self.depth += 1;
    }

    fn on_ret(&mut self, _from: FuncId) {
        let depth = self.depth;
        self.close_block(depth);
        self.close_path(depth);
        self.close_loop(depth);
        self.depth = self.depth.saturating_sub(1);
    }

    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        self.result.total_instrs += 1;
        let depth = self.depth;
        if let Some((_, _, accum)) = self.cur_block.get_mut(&depth) {
            accum.observe(event, &self.loc_version);
        }
        if let Some(lp) = self.cur_loop.get_mut(&depth) {
            lp.accum.observe(event, &self.loc_version);
        } else if let Some(p) = self.cur_path.get_mut(&depth) {
            p.accum.observe(event, &self.loc_version);
        }
        // Stores bump versions *after* the signature observation so a
        // load earlier in the same segment keeps its pre-store stamp.
        if let Some(mem) = event.mem {
            if mem.is_store {
                *self.loc_version.entry((mem.object, mem.index)).or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crb::NullCrb;
    use crate::emulator::Emulator;
    use ccr_ir::{BinKind, CmpPred, ProgramBuilder};

    fn run_study(p: &ccr_ir::Program) -> ReusePotential {
        let mut study = PotentialStudy::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut study).unwrap();
        study.finish()
    }

    /// Repeatedly sums a constant table: nearly everything is
    /// region-reusable, and per-block reuse is also high.
    #[test]
    fn constant_loop_is_highly_reusable() {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer = f.block();
        let inner = f.block();
        let after = f.block();
        let done = f.block();
        f.jump(outer);
        f.switch_to(outer);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(t, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 8, inner, after);
        f.switch_to(after);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, 20, outer, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let pot = run_study(&p);
        assert!(pot.total_instrs > 500);
        // 19 of 20 inner-loop invocations are cyclic-reusable.
        assert!(
            pot.region_ratio() > 0.5,
            "region ratio {}",
            pot.region_ratio()
        );
        assert!(pot.cyclic_reusable > 0);
        // Region-level reuse must dominate block-level reuse.
        assert!(pot.region_reusable >= pot.block_reusable / 2);
    }

    /// A computation whose inputs never repeat: no reuse at any level.
    #[test]
    fn nonrepeating_computation_has_little_reuse() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        let acc = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let sq = f.mul(i, i);
        let x = f.xor(acc, sq);
        f.bin_into(BinKind::Add, acc, x, i);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 200, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let pot = run_study(&p);
        assert!(pot.block_ratio() < 0.1, "block ratio {}", pot.block_ratio());
        assert!(
            pot.region_ratio() < 0.1,
            "region ratio {}",
            pot.region_ratio()
        );
    }

    /// Straight-line repetition without loops: identical call bodies
    /// make paths match across invocations.
    #[test]
    fn repeated_call_bodies_are_path_reusable() {
        let mut pb = ProgramBuilder::new();
        let g = pb.declare("g", 1, 1);
        let mut gb = pb.function_body(g);
        let x = gb.param(0);
        let a = gb.mul(x, 3);
        let b = gb.add(a, 7);
        let c = gb.xor(b, x);
        gb.ret(&[ccr_ir::Operand::Reg(c)]);
        pb.finish_function(gb);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        // Always call with the same argument: g's path repeats.
        let r = f.call(g, &[ccr_ir::Operand::Imm(5)], 1);
        f.bin_into(BinKind::Add, acc, acc, r[0]);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 30, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let pot = run_study(&p);
        assert!(
            pot.region_ratio() > 0.3,
            "region ratio {}",
            pot.region_ratio()
        );
    }

    /// A deeper history can only find more reuse; depth 8 (the
    /// paper's) dominates depth 1 on an alternating pattern.
    #[test]
    fn history_depth_monotonicity() {
        // A helper is called with arguments alternating A, B, A, B:
        // its path signature is just the argument, so a 1-deep
        // history never matches while an 8-deep history matches from
        // the third call on.
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![11, 22]);
        let g = pb.declare("g", 1, 1);
        let mut gb = pb.function_body(g);
        let x = gb.param(0);
        let a = gb.mul(x, 3);
        let b = gb.add(a, 9);
        let c = gb.xor(b, x);
        gb.ret(&[ccr_ir::Operand::Reg(c)]);
        pb.finish_function(gb);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let sel = f.and(i, 1);
        let v = f.load(t, sel);
        let r = f.call(g, &[ccr_ir::Operand::Reg(v)], 1);
        f.bin_into(BinKind::Add, acc, acc, r[0]);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let run = |depth: usize| {
            let mut study = PotentialStudy::with_config(
                &p,
                PotentialConfig {
                    history_depth: depth,
                    max_path_blocks: 8,
                },
            );
            Emulator::new(&p).run(&mut NullCrb, &mut study).unwrap();
            study.finish()
        };
        let shallow = run(1);
        let deep = run(8);
        assert!(
            deep.region_reusable > shallow.region_reusable,
            "8-deep {} must beat 1-deep {}",
            deep.region_reusable,
            shallow.region_reusable
        );
        assert!(deep.block_reusable > shallow.block_reusable);
    }

    /// Stores to the scanned table between invocations destroy
    /// region-level reuse of the scan loop.
    #[test]
    fn stores_invalidate_cyclic_reuse() {
        let mut pb = ProgramBuilder::new();
        let tbl = pb.object("tbl", 4);
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let n = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer = f.block();
        let inner = f.block();
        let after = f.block();
        let done = f.block();
        f.jump(outer);
        f.switch_to(outer);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.store(tbl, 0, n); // mutate before each scan
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(tbl, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 4, inner, after);
        f.switch_to(after);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(n, 1);
        f.br(CmpPred::Lt, n, 20, outer, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let pot = run_study(&p);
        assert_eq!(pot.cyclic_reusable, 0, "{pot:?}");
    }
}

//! The dynamic instruction trace.
//!
//! The emulator executes one instruction at a time and reports each to
//! a [`TraceSink`]. Profilers, the limit study, and the cycle-level
//! timing model are all sinks; the emulator does not know or care
//! which are attached.

use ccr_ir::{BlockId, FuncId, Instr, MemObjectId, Reg, RegionId, Value};

use crate::crb::MissCause;

/// A memory access performed by a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Object accessed.
    pub object: MemObjectId,
    /// Element index within the object (after masking).
    pub index: u64,
    /// Value loaded or stored.
    pub value: Value,
    /// True for stores.
    pub is_store: bool,
}

/// Outcome of a `reuse` instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReuseOutcome {
    /// The region consulted.
    pub region: RegionId,
    /// True if a recorded computation instance matched and the region
    /// body was skipped.
    pub hit: bool,
    /// Input registers compared during validation (the instance's
    /// input bank on a hit; the entry's summary set on a miss).
    pub inputs: Vec<Reg>,
    /// Live-out registers updated from the output bank (hits only).
    pub outputs: Vec<Reg>,
    /// Dynamic instructions skipped by this hit (as measured when the
    /// matched instance was recorded).
    pub skipped_instrs: u64,
    /// Why the lookup missed (misses only, and only when the CRB model
    /// classifies misses — see [`crate::crb::MissCause`]).
    pub miss_cause: Option<MissCause>,
}

/// One executed instruction, as reported to sinks.
#[derive(Clone, Debug)]
pub struct ExecEvent<'a> {
    /// Function containing the instruction.
    pub func: FuncId,
    /// Block containing the instruction.
    pub block: BlockId,
    /// The instruction itself.
    pub instr: &'a Instr,
    /// Values of the instruction's source operands, in
    /// [`Instr::src_operands`] order.
    pub inputs: &'a [Value],
    /// Result value written to the destination register, if any.
    pub result: Option<Value>,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// For branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For `reuse` instructions: the lookup outcome.
    pub reuse: Option<&'a ReuseOutcome>,
    /// Call-stack depth at execution time (main = 0).
    pub depth: usize,
}

/// Observer of the dynamic instruction stream.
///
/// All methods have empty default implementations, so a sink overrides
/// only what it needs.
pub trait TraceSink {
    /// Called for every executed instruction.
    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        let _ = event;
    }

    /// Called when control enters a block (including the entry block
    /// of a function and re-entry via back edges).
    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        let _ = (func, block);
    }

    /// Called after a call instruction transfers control to the callee.
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        let _ = (caller, callee);
    }

    /// Called when a function returns to its caller.
    fn on_ret(&mut self, from: FuncId) {
        let _ = from;
    }
}

/// A sink that discards all events.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Fans events out to two sinks. Nest `MultiSink`s for more.
pub struct MultiSink<'a, 'b> {
    first: &'a mut dyn TraceSink,
    second: &'b mut dyn TraceSink,
}

impl<'a, 'b> MultiSink<'a, 'b> {
    /// Combines two sinks.
    pub fn new(first: &'a mut dyn TraceSink, second: &'b mut dyn TraceSink) -> Self {
        MultiSink { first, second }
    }
}

impl TraceSink for MultiSink<'_, '_> {
    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        self.first.on_exec(event);
        self.second.on_exec(event);
    }

    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        self.first.on_block_enter(func, block);
        self.second.on_block_enter(func, block);
    }

    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.first.on_call(caller, callee);
        self.second.on_call(caller, callee);
    }

    fn on_ret(&mut self, from: FuncId) {
        self.first.on_ret(from);
        self.second.on_ret(from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{InstrId, Op};

    #[derive(Default)]
    struct Counter {
        execs: usize,
        blocks: usize,
        calls: usize,
        rets: usize,
    }

    impl TraceSink for Counter {
        fn on_exec(&mut self, _: &ExecEvent<'_>) {
            self.execs += 1;
        }
        fn on_block_enter(&mut self, _: FuncId, _: BlockId) {
            self.blocks += 1;
        }
        fn on_call(&mut self, _: FuncId, _: FuncId) {
            self.calls += 1;
        }
        fn on_ret(&mut self, _: FuncId) {
            self.rets += 1;
        }
    }

    #[test]
    fn multi_sink_fans_out() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut m = MultiSink::new(&mut a, &mut b);
            let instr = Instr::new(InstrId(0), Op::Nop);
            let ev = ExecEvent {
                func: FuncId(0),
                block: BlockId(0),
                instr: &instr,
                inputs: &[],
                result: None,
                mem: None,
                taken: None,
                reuse: None,
                depth: 0,
            };
            m.on_exec(&ev);
            m.on_block_enter(FuncId(0), BlockId(0));
            m.on_call(FuncId(0), FuncId(1));
            m.on_ret(FuncId(1));
        }
        for c in [&a, &b] {
            assert_eq!(c.execs, 1);
            assert_eq!(c.blocks, 1);
            assert_eq!(c.calls, 1);
            assert_eq!(c.rets, 1);
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.on_block_enter(FuncId(0), BlockId(0));
        s.on_call(FuncId(0), FuncId(0));
        s.on_ret(FuncId(0));
    }
}

//! Functional emulator for `ccr-ir` programs.
//!
//! Implements the architectural semantics of the base ISA *and* the
//! CCR extensions of Section 3.2 of the paper:
//!
//! * the `reuse` instruction consults the [`CrbModel`]; on a hit it
//!   commits the matched instance's output bank to the register file
//!   and continues after the region, on a miss it branches to the
//!   region body and enters **memoization mode**;
//! * in memoization mode, registers *used before being defined* are
//!   recorded into the input bank, destinations of instructions with
//!   the live-out extension are recorded into the output bank, and
//!   executing a load sets the memory-valid flag;
//! * a control instruction carrying the region-endpoint extension
//!   records the instance; one carrying the region-exit extension
//!   aborts memoization ("no reuse along paths from inception to exit
//!   point");
//! * the `invalidate` instruction forwards to the buffer.
//!
//! Memoization mode is *depth-aware*: it is anchored to the call
//! frame that executed the `reuse` instruction, so a region may
//! contain whole function calls (the function-level reuse of the
//! paper's future-work section). Reads in deeper frames never touch
//! the input bank (callee registers are fresh), while loads anywhere
//! set the memory-valid flag and stores anywhere abort the recording.
//!
//! The emulator is defensive where the compiler is trusted in the
//! paper: stores, bank overflow, returning past the anchor frame, or
//! a nested `reuse` during memoization abort the recording rather
//! than corrupt it.

use std::collections::HashSet;

use ccr_ir::semantics::{eval_binary, eval_unary};
use ccr_ir::{BlockId, FuncId, Instr, Op, Operand, Program, Reg, RegionId, Value};

use crate::crb::{CrbModel, RecordedInstance};
use crate::trace::{ExecEvent, MemAccess, ReuseOutcome, TraceSink};

/// Emulator limits.
#[derive(Clone, Copy, Debug)]
pub struct EmuConfig {
    /// Maximum dynamic instructions before aborting with
    /// [`EmuError::StepLimit`].
    pub max_instrs: u64,
    /// Maximum call depth before aborting with
    /// [`EmuError::StackOverflow`].
    pub max_depth: usize,
}

impl Default for EmuConfig {
    fn default() -> Self {
        EmuConfig {
            max_instrs: 200_000_000,
            max_depth: 4096,
        }
    }
}

/// Emulation failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// The dynamic instruction limit was exceeded.
    StepLimit,
    /// The call-depth limit was exceeded.
    StackOverflow,
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::StepLimit => write!(f, "dynamic instruction limit exceeded"),
            EmuError::StackOverflow => write!(f, "call depth limit exceeded"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Result of a completed run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Values returned by the entry function.
    pub returned: Vec<Value>,
    /// Dynamic instructions actually executed.
    pub dyn_instrs: u64,
    /// Dynamic instructions skipped by reuse hits (execution the
    /// baseline would have performed).
    pub skipped_instrs: u64,
    /// Number of reuse-instruction hits.
    pub reuse_hits: u64,
    /// Number of reuse-instruction misses.
    pub reuse_misses: u64,
}

#[derive(Debug)]
struct MemoState {
    region: RegionId,
    inputs: Vec<(Reg, Value)>,
    /// Live-out registers whose defining (marked) instructions
    /// executed; their *values* are snapshotted at the region
    /// endpoint, after every write — including return-value writes
    /// that land when a wrapped call's callee returns.
    outputs: Vec<Reg>,
    written: HashSet<Reg>,
    accesses_memory: bool,
    body_instrs: u64,
}

impl MemoState {
    fn new(region: RegionId) -> MemoState {
        MemoState {
            region,
            inputs: Vec::new(),
            outputs: Vec::new(),
            written: HashSet::new(),
            accesses_memory: false,
            body_instrs: 0,
        }
    }

    fn into_instance(self, read_reg: impl Fn(Reg) -> Value) -> RecordedInstance {
        RecordedInstance {
            inputs: self.inputs,
            outputs: self.outputs.iter().map(|r| (*r, read_reg(*r))).collect(),
            accesses_memory: self.accesses_memory,
            body_instrs: self.body_instrs,
        }
    }
}

#[derive(Debug)]
struct Frame<'p> {
    func: FuncId,
    regs: Vec<Value>,
    block: BlockId,
    pos: usize,
    /// Caller registers receiving the return values — borrowed from
    /// the call instruction in the program, so pushing a frame never
    /// clones the register list.
    ret_regs: &'p [Reg],
}

/// The emulator. Holds a borrowed program; all run state is local to
/// [`Emulator::run`], so one emulator can run many times.
///
/// ```
/// use ccr_ir::{Operand, ProgramBuilder};
/// use ccr_profile::{Emulator, NullCrb, NullSink};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0, 1);
/// let x = f.movi(6);
/// let y = f.mul(x, 7);
/// f.ret(&[Operand::Reg(y)]);
/// let id = pb.finish_function(f);
/// pb.set_main(id);
/// let program = pb.finish();
///
/// let out = Emulator::new(&program).run(&mut NullCrb, &mut NullSink)?;
/// assert_eq!(out.returned[0].as_int(), 42);
/// assert_eq!(out.dyn_instrs, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    config: EmuConfig,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with default limits.
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator::with_config(program, EmuConfig::default())
    }

    /// Creates an emulator with explicit limits.
    pub fn with_config(program: &'p Program, config: EmuConfig) -> Emulator<'p> {
        Emulator { program, config }
    }

    /// The program being emulated.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Runs the program from its entry function to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] if a configured limit is exceeded.
    pub fn run(
        &self,
        crb: &mut dyn CrbModel,
        sink: &mut dyn TraceSink,
    ) -> Result<RunOutcome, EmuError> {
        let mut run = self.start(sink);
        loop {
            if let Some(out) = run.step(crb, sink)? {
                return Ok(out);
            }
        }
    }

    /// Begins a resumable run: builds the initial architectural state
    /// and reports entry of `main` to the sink. Drive the returned
    /// [`EmuRun`] with [`EmuRun::step`].
    pub fn start(&self, sink: &mut dyn TraceSink) -> EmuRun<'p> {
        let program = self.program;
        let memory: Vec<Vec<Value>> = program
            .objects()
            .iter()
            .map(|o| o.initial_contents())
            .collect();
        let main = program.function(program.main());
        let stack = vec![Frame {
            func: main.id(),
            regs: vec![Value::ZERO; main.reg_limit().max(1) as usize],
            block: main.entry(),
            pos: 0,
            ret_regs: &[],
        }];
        sink.on_block_enter(main.id(), main.entry());
        EmuRun {
            program,
            config: self.config,
            memory,
            stack,
            dyn_instrs: 0,
            memo: None,
            skipped_instrs: 0,
            reuse_hits: 0,
            reuse_misses: 0,
            inputs_buf: Vec::with_capacity(4),
            regs_pool: Vec::new(),
        }
    }

    /// Rebuilds a mid-run state from a snapshot taken on an identical
    /// program. The sink is *not* replayed: the caller restores the
    /// sink's own state separately (that is the simulator snapshot's
    /// job), so resuming begins exactly at the next [`EmuRun::step`].
    ///
    /// # Errors
    ///
    /// Returns a one-line description when the snapshot is
    /// structurally inconsistent with the program — wrong object
    /// sizes, out-of-range functions/blocks/positions, or a caller
    /// frame not suspended at a call to its callee.
    pub fn resume(&self, snap: &EmuSnapshot) -> Result<EmuRun<'p>, String> {
        let program = self.program;
        if snap.memory.len() != program.objects().len() {
            return Err(format!(
                "snapshot has {} memory objects, program has {}",
                snap.memory.len(),
                program.objects().len()
            ));
        }
        let mut memory: Vec<Vec<Value>> = Vec::with_capacity(snap.memory.len());
        for (i, words) in snap.memory.iter().enumerate() {
            let want = program.objects()[i].initial_contents().len();
            if words.len() != want {
                return Err(format!(
                    "memory object {i} has {} words, program wants {want}",
                    words.len()
                ));
            }
            memory.push(words.iter().map(|w| Value(*w as i64)).collect());
        }

        if snap.frames.is_empty() {
            return Err("snapshot has no call frames".to_string());
        }
        let mut stack: Vec<Frame<'p>> = Vec::with_capacity(snap.frames.len());
        for (i, fs) in snap.frames.iter().enumerate() {
            if fs.func as usize >= program.functions().len() {
                return Err(format!("frame {i}: function {} out of range", fs.func));
            }
            let func = program.function(FuncId(fs.func));
            if fs.block as usize >= func.iter_blocks().count() {
                return Err(format!("frame {i}: block {} out of range", fs.block));
            }
            let block = func.block(BlockId(fs.block));
            if fs.pos as usize >= block.instrs.len() {
                return Err(format!("frame {i}: position {} out of range", fs.pos));
            }
            if fs.regs.len() != func.reg_limit().max(1) as usize {
                return Err(format!(
                    "frame {i}: {} registers, function wants {}",
                    fs.regs.len(),
                    func.reg_limit().max(1)
                ));
            }
            // The caller's register list receiving our return values
            // is borrowed from the call instruction the caller is
            // suspended after (`pos` was advanced past the call before
            // this frame was pushed), re-borrowed here from the
            // program so the frame stays allocation-free.
            let ret_regs: &'p [Reg] = if i == 0 {
                &[]
            } else {
                let caller = &snap.frames[i - 1];
                let call_pos = (caller.pos as usize)
                    .checked_sub(1)
                    .ok_or_else(|| format!("frame {i}: caller is not past a call site"))?;
                let cb = program
                    .function(FuncId(caller.func))
                    .block(BlockId(caller.block));
                match &cb.instrs[call_pos].op {
                    Op::Call { callee, rets, .. } if *callee == FuncId(fs.func) => rets,
                    _ => {
                        return Err(format!(
                            "frame {i}: caller is not suspended at a call to function {}",
                            fs.func
                        ))
                    }
                }
            };
            stack.push(Frame {
                func: FuncId(fs.func),
                regs: fs.regs.iter().map(|w| Value(*w as i64)).collect(),
                block: BlockId(fs.block),
                pos: fs.pos as usize,
                ret_regs,
            });
        }

        let memo = match &snap.memo {
            None => None,
            Some(ms) => {
                if ms.depth as usize >= stack.len() {
                    return Err(format!(
                        "memoization depth {} exceeds stack depth {}",
                        ms.depth,
                        stack.len()
                    ));
                }
                let mut m = MemoState::new(RegionId(ms.region));
                m.inputs = ms
                    .inputs
                    .iter()
                    .map(|(r, w)| (Reg(*r), Value(*w as i64)))
                    .collect();
                m.outputs = ms.outputs.iter().map(|r| Reg(*r)).collect();
                m.written = ms.written.iter().map(|r| Reg(*r)).collect();
                m.accesses_memory = ms.accesses_memory;
                m.body_instrs = ms.body_instrs;
                Some((ms.depth as usize, m))
            }
        };

        Ok(EmuRun {
            program,
            config: self.config,
            memory,
            stack,
            dyn_instrs: snap.dyn_instrs,
            memo,
            skipped_instrs: snap.skipped_instrs,
            reuse_hits: snap.reuse_hits,
            reuse_misses: snap.reuse_misses,
            inputs_buf: Vec::with_capacity(4),
            regs_pool: Vec::new(),
        })
    }
}

/// An in-flight emulation: the loop state of [`Emulator::run`] made
/// resumable. Created by [`Emulator::start`] (cold) or
/// [`Emulator::resume`] (from an [`EmuSnapshot`]); advanced one
/// dynamic instruction at a time by [`EmuRun::step`], which lets a
/// driver interleave snapshotting and state fingerprinting at exact
/// instruction boundaries without a second semantics implementation.
#[derive(Debug)]
pub struct EmuRun<'p> {
    program: &'p Program,
    config: EmuConfig,
    memory: Vec<Vec<Value>>,
    stack: Vec<Frame<'p>>,
    dyn_instrs: u64,
    // Active memoization, anchored to the frame depth that executed
    // the reuse instruction.
    memo: Option<(usize, MemoState)>,
    skipped_instrs: u64,
    reuse_hits: u64,
    reuse_misses: u64,
    inputs_buf: Vec<Value>,
    // Register files of popped frames, recycled by later calls so the
    // call/ret hot path stops allocating. Scratch: not state.
    regs_pool: Vec<Vec<Value>>,
}

impl<'p> EmuRun<'p> {
    /// Dynamic instructions executed so far.
    pub fn dyn_instrs(&self) -> u64 {
        self.dyn_instrs
    }

    /// True once the entry function has returned.
    pub fn finished(&self) -> bool {
        self.stack.is_empty()
    }

    /// Captures the complete architectural state as plain data. The
    /// two scratch pools (`inputs_buf`, `regs_pool`) are excluded:
    /// their contents are dead between steps.
    pub fn snapshot(&self) -> EmuSnapshot {
        EmuSnapshot {
            memory: self
                .memory
                .iter()
                .map(|m| m.iter().map(|v| v.0 as u64).collect())
                .collect(),
            frames: self
                .stack
                .iter()
                .map(|f| EmuFrameSnapshot {
                    func: f.func.0,
                    block: f.block.0,
                    pos: f.pos as u64,
                    regs: f.regs.iter().map(|v| v.0 as u64).collect(),
                })
                .collect(),
            dyn_instrs: self.dyn_instrs,
            skipped_instrs: self.skipped_instrs,
            reuse_hits: self.reuse_hits,
            reuse_misses: self.reuse_misses,
            memo: self.memo.as_ref().map(|(depth, m)| {
                let mut written: Vec<u32> = m.written.iter().map(|r| r.0).collect();
                written.sort_unstable();
                EmuMemoSnapshot {
                    depth: *depth as u64,
                    region: m.region.0,
                    inputs: m.inputs.iter().map(|(r, v)| (r.0, v.0 as u64)).collect(),
                    outputs: m.outputs.iter().map(|r| r.0).collect(),
                    written,
                    accesses_memory: m.accesses_memory,
                    body_instrs: m.body_instrs,
                }
            }),
        }
    }

    /// Folds every word of architectural state into `push`, in a
    /// deterministic order (unordered sets are sorted first). This is
    /// the emulator's contribution to the determinism fingerprint.
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.dyn_instrs);
        push(self.skipped_instrs);
        push(self.reuse_hits);
        push(self.reuse_misses);
        push(self.memory.len() as u64);
        for obj in &self.memory {
            push(obj.len() as u64);
            for v in obj {
                push(v.0 as u64);
            }
        }
        push(self.stack.len() as u64);
        for f in &self.stack {
            push(u64::from(f.func.0));
            push(u64::from(f.block.0));
            push(f.pos as u64);
            push(f.regs.len() as u64);
            for v in &f.regs {
                push(v.0 as u64);
            }
        }
        match &self.memo {
            None => push(0),
            Some((depth, m)) => {
                push(1);
                push(*depth as u64);
                push(u64::from(m.region.0));
                push(m.inputs.len() as u64);
                for (r, v) in &m.inputs {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(m.outputs.len() as u64);
                for r in &m.outputs {
                    push(u64::from(r.0));
                }
                let mut written: Vec<u32> = m.written.iter().map(|r| r.0).collect();
                written.sort_unstable();
                push(written.len() as u64);
                for r in written {
                    push(u64::from(r));
                }
                push(u64::from(m.accesses_memory));
                push(m.body_instrs);
            }
        }
    }

    /// Executes one dynamic instruction.
    ///
    /// Returns `Ok(None)` while the program has more work to do and
    /// `Ok(Some(outcome))` when the entry function returns.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] if a configured limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if called again after the program has returned.
    pub fn step(
        &mut self,
        crb: &mut dyn CrbModel,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<RunOutcome>, EmuError> {
        let program = self.program;
        assert!(!self.stack.is_empty(), "step after the program returned");
        if self.dyn_instrs >= self.config.max_instrs {
            return Err(EmuError::StepLimit);
        }
        let depth = self.stack.len() - 1;
        let frame = self.stack.last_mut().expect("non-empty stack");
        let func = program.function(frame.func);
        let block = func.block(frame.block);
        let instr: &Instr = &block.instrs[frame.pos];
        self.dyn_instrs += 1;

        // Gather input values.
        self.inputs_buf.clear();
        for op in instr.src_operands() {
            self.inputs_buf.push(read_operand(&frame.regs, op));
        }

        // Memoization: record inputs (used-before-defined in the
        // anchor frame) before the instruction executes. Deeper
        // frames have fresh registers and contribute no inputs,
        // only execution (counted for the skip total) and memory
        // accesses.
        let mut abort_memo = false;
        if let Some((mdepth, m)) = self.memo.as_mut() {
            m.body_instrs += 1;
            if depth == *mdepth {
                for r in instr.src_regs() {
                    if m.written.contains(&r) || m.inputs.iter().any(|(x, _)| *x == r) {
                        continue;
                    }
                    if m.inputs.len() >= crb.input_capacity() {
                        abort_memo = true;
                        break;
                    }
                    m.inputs.push((r, frame.regs[r.index()]));
                }
            }
            if instr.is_store() {
                abort_memo = true;
            }
        }
        if abort_memo {
            self.memo = None;
        }

        let mut result: Option<Value> = None;
        let mut mem_access: Option<MemAccess> = None;
        let mut taken: Option<bool> = None;
        let mut reuse_outcome: Option<ReuseOutcome> = None;

        // Control transfer decided during execution. Call
        // arguments and return values live in `inputs_buf` (which
        // is untouched between operand gathering and the transfer
        // below), and the destination register list is borrowed
        // from the instruction, so deciding a transfer allocates
        // nothing.
        enum Ctl<'a> {
            Next,
            Goto(BlockId),
            Call { callee: FuncId, rets: &'a [Reg] },
            Ret,
        }
        let mut ctl = Ctl::Next;

        match &instr.op {
            Op::Binary { kind, dst, .. } => {
                let v = eval_binary(*kind, self.inputs_buf[0], self.inputs_buf[1]);
                frame.regs[dst.index()] = v;
                result = Some(v);
            }
            Op::Unary { kind, dst, .. } => {
                let v = eval_unary(*kind, self.inputs_buf[0]);
                frame.regs[dst.index()] = v;
                result = Some(v);
            }
            Op::Cmp { pred, dst, .. } => {
                let v = Value::from_int(
                    pred.eval(self.inputs_buf[0].as_int(), self.inputs_buf[1].as_int()) as i64,
                );
                frame.regs[dst.index()] = v;
                result = Some(v);
            }
            Op::Load {
                dst,
                object,
                offset,
                ..
            } => {
                let data = &self.memory[object.index()];
                let idx = mask_index(self.inputs_buf[0].as_int() + offset, data.len());
                let v = data[idx as usize];
                frame.regs[dst.index()] = v;
                result = Some(v);
                mem_access = Some(MemAccess {
                    object: *object,
                    index: idx,
                    value: v,
                    is_store: false,
                });
                if let Some((_, m)) = self.memo.as_mut() {
                    m.accesses_memory = true;
                }
            }
            Op::Store { object, offset, .. } => {
                let data = &mut self.memory[object.index()];
                let idx = mask_index(self.inputs_buf[0].as_int() + offset, data.len());
                let v = self.inputs_buf[1];
                data[idx as usize] = v;
                mem_access = Some(MemAccess {
                    object: *object,
                    index: idx,
                    value: v,
                    is_store: true,
                });
            }
            Op::Branch {
                pred,
                taken: t_blk,
                not_taken,
                ..
            } => {
                let is_taken = pred.eval(self.inputs_buf[0].as_int(), self.inputs_buf[1].as_int());
                taken = Some(is_taken);
                ctl = Ctl::Goto(if is_taken { *t_blk } else { *not_taken });
            }
            Op::Jump { target } => {
                ctl = Ctl::Goto(*target);
            }
            Op::Call { callee, rets, .. } => {
                ctl = Ctl::Call {
                    callee: *callee,
                    rets,
                };
            }
            Op::Ret { .. } => {
                ctl = Ctl::Ret;
            }
            Op::Reuse { region, body, cont } => {
                // A reuse inside an active memoization aborts the
                // outer recording (regions do not nest).
                self.memo = None;
                let regs = &mut frame.regs;
                let lookup = crb.lookup(*region, &mut |r| regs[r.index()]);
                match lookup {
                    Some(hit) => {
                        self.reuse_hits += 1;
                        self.skipped_instrs += hit.skipped_instrs;
                        for (r, v) in &hit.outputs {
                            frame.regs[r.index()] = *v;
                        }
                        reuse_outcome = Some(ReuseOutcome {
                            region: *region,
                            hit: true,
                            inputs: hit.inputs,
                            outputs: hit.outputs.iter().map(|(r, _)| *r).collect(),
                            skipped_instrs: hit.skipped_instrs,
                            miss_cause: None,
                        });
                        ctl = Ctl::Goto(*cont);
                    }
                    None => {
                        self.reuse_misses += 1;
                        self.memo = Some((depth, MemoState::new(*region)));
                        reuse_outcome = Some(ReuseOutcome {
                            region: *region,
                            hit: false,
                            inputs: Vec::new(),
                            outputs: Vec::new(),
                            skipped_instrs: 0,
                            miss_cause: crb.last_miss_cause(),
                        });
                        ctl = Ctl::Goto(*body);
                    }
                }
            }
            Op::Invalidate { region } => {
                crb.invalidate(*region);
            }
            Op::Nop => {}
        }

        // Memoization: record live-outs and handle region
        // endpoints after the instruction has executed — anchor
        // frame only.
        let mut overflow = false;
        if let Some((mdepth, m)) = self.memo.as_mut() {
            if depth == *mdepth && instr.ext.contains(ccr_ir::InstrExt::LIVE_OUT) {
                for dst in instr.dsts() {
                    if m.outputs.contains(&dst) {
                        continue;
                    }
                    if m.outputs.len() >= crb.output_capacity() {
                        overflow = true;
                    } else {
                        m.outputs.push(dst);
                    }
                }
            }
        }
        if overflow {
            self.memo = None;
        }
        if let Some((mdepth, m)) = self.memo.as_mut() {
            if depth == *mdepth {
                for dst in instr.dsts() {
                    m.written.insert(dst);
                }
                if instr.ext.contains(ccr_ir::InstrExt::REGION_END) {
                    let (_, done) = self.memo.take().expect("memo present");
                    // Output values are read at the endpoint, when
                    // every write (including a wrapped callee's
                    // return values) has landed.
                    let regs = &frame.regs;
                    crb.record(done.region, done.into_instance(|r| regs[r.index()]));
                } else if instr.ext.contains(ccr_ir::InstrExt::REGION_EXIT) {
                    self.memo = None;
                }
            }
        }

        // Report the event.
        let event = ExecEvent {
            func: frame.func,
            block: frame.block,
            instr,
            inputs: &self.inputs_buf,
            result,
            mem: mem_access,
            taken,
            reuse: reuse_outcome.as_ref(),
            depth,
        };
        sink.on_exec(&event);

        // Perform the control transfer.
        match ctl {
            Ctl::Next => {
                frame.pos += 1;
            }
            Ctl::Goto(target) => {
                frame.block = target;
                frame.pos = 0;
                let fid = frame.func;
                sink.on_block_enter(fid, target);
            }
            Ctl::Call { callee, rets } => {
                frame.pos += 1; // resume after the call
                if self.stack.len() >= self.config.max_depth {
                    return Err(EmuError::StackOverflow);
                }
                let caller_id = self.stack.last().expect("frame").func;
                let target = program.function(callee);
                // The call arguments are still in `inputs_buf`.
                let mut regs = self.regs_pool.pop().unwrap_or_default();
                regs.clear();
                regs.resize(target.reg_limit().max(1) as usize, Value::ZERO);
                regs[..self.inputs_buf.len()].copy_from_slice(&self.inputs_buf);
                self.stack.push(Frame {
                    func: callee,
                    regs,
                    block: target.entry(),
                    pos: 0,
                    ret_regs: rets,
                });
                sink.on_call(caller_id, callee);
                sink.on_block_enter(callee, target.entry());
            }
            Ctl::Ret => {
                // Returning out of (or past) the anchor frame
                // makes the recording meaningless.
                if self
                    .memo
                    .as_ref()
                    .is_some_and(|(mdepth, _)| depth <= *mdepth)
                {
                    self.memo = None;
                }
                // The returned values are still in `inputs_buf`.
                let done = self.stack.pop().expect("frame");
                sink.on_ret(done.func);
                match self.stack.last_mut() {
                    None => {
                        return Ok(Some(RunOutcome {
                            returned: std::mem::take(&mut self.inputs_buf),
                            dyn_instrs: self.dyn_instrs,
                            skipped_instrs: self.skipped_instrs,
                            reuse_hits: self.reuse_hits,
                            reuse_misses: self.reuse_misses,
                        }));
                    }
                    Some(caller) => {
                        for (r, v) in done.ret_regs.iter().zip(self.inputs_buf.iter()) {
                            caller.regs[r.index()] = *v;
                        }
                        self.regs_pool.push(done.regs);
                    }
                }
            }
        }
        Ok(None)
    }
}

/// Complete architectural state of an [`EmuRun`] as plain integers
/// (each [`Value`] is its `u64` bit pattern), so a snapshot can be
/// serialized without touching `ccr-ir` types. Produced by
/// [`EmuRun::snapshot`], consumed by [`Emulator::resume`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmuSnapshot {
    /// Per-object memory contents.
    pub memory: Vec<Vec<u64>>,
    /// Call stack, outermost (entry function) first.
    pub frames: Vec<EmuFrameSnapshot>,
    /// Dynamic instructions executed so far.
    pub dyn_instrs: u64,
    /// Dynamic instructions skipped by reuse hits so far.
    pub skipped_instrs: u64,
    /// Reuse-instruction hits so far.
    pub reuse_hits: u64,
    /// Reuse-instruction misses so far.
    pub reuse_misses: u64,
    /// Active memoization, if a region recording is in flight.
    pub memo: Option<EmuMemoSnapshot>,
}

/// One suspended call frame of an [`EmuSnapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmuFrameSnapshot {
    /// Function index.
    pub func: u32,
    /// Current block index.
    pub block: u32,
    /// Next instruction position within the block.
    pub pos: u64,
    /// Register file (bit patterns).
    pub regs: Vec<u64>,
}

/// In-flight region memoization of an [`EmuSnapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmuMemoSnapshot {
    /// Anchor frame depth (index into the stack).
    pub depth: u64,
    /// Region being recorded.
    pub region: u32,
    /// Input bank: `(register, value bit pattern)` in record order.
    pub inputs: Vec<(u32, u64)>,
    /// Output bank registers in record order.
    pub outputs: Vec<u32>,
    /// Registers written since inception, sorted.
    pub written: Vec<u32>,
    /// Whether the body loaded from memory.
    pub accesses_memory: bool,
    /// Body instructions executed so far.
    pub body_instrs: u64,
}

fn read_operand(regs: &[Value], op: Operand) -> Value {
    match op {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => Value::from_int(v),
    }
}

/// Masks a raw element index into the object's bounds. Negative and
/// out-of-range indices wrap (the emulator is total: no trap).
fn mask_index(raw: i64, size: usize) -> u64 {
    debug_assert!(size > 0, "zero-sized object");
    raw.rem_euclid(size as i64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crb::{NullCrb, ReuseLookup};
    use crate::trace::NullSink;
    use ccr_ir::{BinKind, CmpPred, InstrExt, ProgramBuilder, UnKind};

    fn run_main(p: &Program) -> RunOutcome {
        Emulator::new(p).run(&mut NullCrb, &mut NullSink).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(7);
        let b = f.mul(a, 6);
        let c = f.sub(b, 2);
        f.ret(&[Operand::Reg(c)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let out = run_main(&p);
        assert_eq!(out.returned, vec![Value::from_int(40)]);
        assert_eq!(out.dyn_instrs, 4);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 2);
        let d = f.div(5, 0);
        let r = f.rem(5, 0);
        f.ret(&[Operand::Reg(d), Operand::Reg(r)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::ZERO, Value::ZERO]);
    }

    #[test]
    fn loop_sums_table() {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![3, 1, 4, 1, 5]);
        let mut f = pb.function("main", 0, 1);
        let sum = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let v = f.load(t, i);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 5, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(sum)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::from_int(14)]);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 4);
        let mut f = pb.function("main", 0, 1);
        f.store(o, 2, 99);
        let v = f.load(o, 2);
        f.ret(&[Operand::Reg(v)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::from_int(99)]);
    }

    #[test]
    fn negative_index_wraps() {
        let mut pb = ProgramBuilder::new();
        let o = pb.table("o", vec![10, 20, 30, 40]);
        let mut f = pb.function("main", 0, 1);
        let v = f.load(o, -1); // wraps to index 3
        f.ret(&[Operand::Reg(v)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::from_int(40)]);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let g = pb.declare("addmul", 2, 2);
        let mut gb = pb.function_body(g);
        let (x, y) = (gb.param(0), gb.param(1));
        let s = gb.add(x, y);
        let m = gb.mul(x, y);
        gb.ret(&[Operand::Reg(s), Operand::Reg(m)]);
        pb.finish_function(gb);
        let mut f = pb.function("main", 0, 1);
        let rs = f.call(g, &[Operand::Imm(3), Operand::Imm(4)], 2);
        let total = f.add(rs[0], rs[1]);
        f.ret(&[Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::from_int(19)]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let spin = f.block();
        f.jump(spin);
        f.switch_to(spin);
        f.jump(spin);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let emu = Emulator::with_config(
            &p,
            EmuConfig {
                max_instrs: 1000,
                max_depth: 16,
            },
        );
        assert_eq!(
            emu.run(&mut NullCrb, &mut NullSink).unwrap_err(),
            EmuError::StepLimit
        );
    }

    #[test]
    fn recursion_limit_stops_runaway() {
        let mut pb = ProgramBuilder::new();
        let g = pb.declare("g", 0, 0);
        let mut gb = pb.function_body(g);
        let _ = gb.call(g, &[], 0);
        gb.ret(&[]);
        pb.finish_function(gb);
        let mut f = pb.function("main", 0, 0);
        let _ = f.call(g, &[], 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let emu = Emulator::with_config(
            &p,
            EmuConfig {
                max_instrs: 1_000_000,
                max_depth: 64,
            },
        );
        assert_eq!(
            emu.run(&mut NullCrb, &mut NullSink).unwrap_err(),
            EmuError::StackOverflow
        );
    }

    #[test]
    fn float_ops_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let two = f.movi(2);
        let fx = f.un(UnKind::IntToFloat, two);
        let half = f.bin(BinKind::FDiv, fx, Operand::Imm(Value::from_f64(4.0).0));
        let i = f.un(UnKind::FloatToInt, half); // 0.5 -> 0
        f.ret(&[Operand::Reg(i)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let out = run_main(&pb.finish());
        assert_eq!(out.returned, vec![Value::ZERO]);
    }

    /// A scripted CRB: always misses first, records, then replays
    /// recorded instances exactly (single entry, unlimited instances).
    #[derive(Default)]
    struct ScriptCrb {
        instances: Vec<(RegionId, RecordedInstance)>,
        invalidated: Vec<RegionId>,
        records: usize,
    }

    impl CrbModel for ScriptCrb {
        fn lookup(
            &mut self,
            region: RegionId,
            read_reg: &mut dyn FnMut(Reg) -> Value,
        ) -> Option<ReuseLookup> {
            for (r, inst) in &self.instances {
                if *r != region {
                    continue;
                }
                if inst.accesses_memory && self.invalidated.contains(&region) {
                    continue;
                }
                if inst.inputs.iter().all(|(reg, v)| read_reg(*reg) == *v) {
                    return Some(ReuseLookup {
                        outputs: inst.outputs.clone(),
                        inputs: inst.inputs.iter().map(|(r, _)| *r).collect(),
                        skipped_instrs: inst.body_instrs,
                    });
                }
            }
            None
        }

        fn record(&mut self, region: RegionId, instance: RecordedInstance) {
            self.records += 1;
            self.instances.push((region, instance));
        }

        fn invalidate(&mut self, region: RegionId) {
            self.invalidated.push(region);
        }
    }

    /// Builds: main calls region-annotated `square-ish` computation
    /// twice with the same input; the second call must reuse.
    ///
    /// Layout (single function):
    ///   b0: x = 17; jump b1
    ///   b1: reuse rcr0 body=b2 cont=b3
    ///   b2: y = x*x (live-out); t = y+1 (live-out); jump b3 (region_end)
    ///   b3: ... second round or return
    fn reuse_program(runs: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 2);
        let x = f.movi(17);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let t = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        // The reuse terminator is patched in below.
        f.jump(body);
        f.switch_to(body);
        f.bin_into(BinKind::Mul, y, x, x);
        f.bin_into(BinKind::Add, t, y, 1);
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, t);
        f.inc(count, 1);
        f.br(CmpPred::Lt, count, runs, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc), Operand::Reg(y)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        // Patch: reuse terminator, live-out marks, region end.
        let func = p.function_mut(id);
        let reuse_blk = BlockId(1);
        let body = BlockId(2);
        let cont = BlockId(3);
        func.block_mut(reuse_blk).instrs[0].op = Op::Reuse { region, body, cont };
        func.block_mut(body).instrs[0].ext = InstrExt::LIVE_OUT;
        func.block_mut(body).instrs[1].ext = InstrExt::LIVE_OUT;
        func.block_mut(body).instrs[2].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();
        p
    }

    #[test]
    fn reuse_miss_records_then_hit_replays() {
        let p = reuse_program(3);
        let mut crb = ScriptCrb::default();
        let out = Emulator::new(&p).run(&mut crb, &mut NullSink).unwrap();
        // First iteration misses and records; the two others hit.
        assert_eq!(out.reuse_misses, 1);
        assert_eq!(out.reuse_hits, 2);
        assert_eq!(crb.records, 1);
        // acc = 3 * (17*17+1) = 870; y live-out = 289 even on hits.
        assert_eq!(out.returned[0], Value::from_int(870));
        assert_eq!(out.returned[1], Value::from_int(289));
        // Each hit skips the 3-instruction body.
        assert_eq!(out.skipped_instrs, 6);
        // Recorded instance: input bank = {x}, outputs = {y, t}.
        let inst = &crb.instances[0].1;
        assert_eq!(inst.inputs.len(), 1);
        assert_eq!(inst.inputs[0].1, Value::from_int(17));
        assert_eq!(inst.outputs.len(), 2);
        assert!(!inst.accesses_memory);
        assert_eq!(inst.body_instrs, 3);
    }

    #[test]
    fn reuse_with_null_crb_equals_plain_execution() {
        let p = reuse_program(3);
        let out = Emulator::new(&p).run(&mut NullCrb, &mut NullSink).unwrap();
        assert_eq!(out.returned[0], Value::from_int(870));
        assert_eq!(out.reuse_hits, 0);
        assert_eq!(out.reuse_misses, 3);
        assert_eq!(out.skipped_instrs, 0);
    }

    #[test]
    fn memoization_aborts_on_store() {
        // Region body contains a store: the emulator must refuse to
        // record an instance.
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 2);
        let mut f = pb.function("main", 0, 0);
        let body = f.block();
        let cont = f.block();
        f.jump(body); // patched to reuse
        f.switch_to(body);
        f.store(o, 0, 1);
        f.jump(cont);
        f.switch_to(cont);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(BlockId(0)).instrs[0].op = Op::Reuse {
            region,
            body: BlockId(1),
            cont: BlockId(2),
        };
        func.block_mut(BlockId(1)).instrs[1].ext = InstrExt::REGION_END;
        let mut crb = ScriptCrb::default();
        Emulator::new(&p).run(&mut crb, &mut NullSink).unwrap();
        assert_eq!(crb.records, 0, "store inside region must abort recording");
    }

    #[test]
    fn region_exit_aborts_recording() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let body = f.block();
        let exit_path = f.block();
        let cont = f.block();
        f.jump(body); // patched to reuse
        f.switch_to(body);
        f.br(CmpPred::Eq, 0, 0, exit_path, cont); // always exits
        f.switch_to(exit_path);
        f.ret(&[]);
        f.switch_to(cont);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(BlockId(0)).instrs[0].op = Op::Reuse {
            region,
            body: BlockId(1),
            cont: BlockId(3),
        };
        func.block_mut(BlockId(1)).instrs[0].ext = InstrExt::REGION_EXIT;
        let mut crb = ScriptCrb::default();
        Emulator::new(&p).run(&mut crb, &mut NullSink).unwrap();
        assert_eq!(crb.records, 0);
    }

    #[test]
    fn snapshot_resume_reproduces_the_run_at_every_step() {
        // Drive the reuse program to every intermediate instruction,
        // snapshot, resume, and finish: the outcome must be identical
        // to the uninterrupted run — including steps taken mid-way
        // through a memoization recording and inside callee frames.
        let p = reuse_program(3);
        let emu = Emulator::new(&p);
        let mut crb = ScriptCrb::default();
        let cold = emu.run(&mut crb, &mut NullSink).unwrap();
        for k in 0..cold.dyn_instrs {
            let mut crb = ScriptCrb::default();
            let mut run = emu.start(&mut NullSink);
            for _ in 0..k {
                assert!(run.step(&mut crb, &mut NullSink).unwrap().is_none());
            }
            let snap = run.snapshot();
            // The snapshot round-trips through resume exactly.
            let mut resumed = emu.resume(&snap).unwrap();
            assert_eq!(resumed.snapshot(), snap);
            let out = loop {
                if let Some(o) = resumed.step(&mut crb, &mut NullSink).unwrap() {
                    break o;
                }
            };
            assert_eq!(out, cold, "divergence after resuming at step {k}");
        }
    }

    #[test]
    fn resume_rejects_inconsistent_snapshots() {
        let p = reuse_program(1);
        let emu = Emulator::new(&p);
        let mut run = emu.start(&mut NullSink);
        let mut crb = ScriptCrb::default();
        for _ in 0..5 {
            run.step(&mut crb, &mut NullSink).unwrap();
        }
        let snap = run.snapshot();

        let mut bad = snap.clone();
        bad.frames[0].block = 999;
        assert!(emu.resume(&bad).unwrap_err().contains("block 999"));

        let mut bad = snap.clone();
        bad.frames[0].pos = 10_000;
        assert!(emu.resume(&bad).unwrap_err().contains("position"));

        let mut bad = snap.clone();
        bad.frames.clear();
        assert!(emu.resume(&bad).unwrap_err().contains("no call frames"));

        let mut bad = snap;
        bad.memory.push(vec![0]);
        assert!(emu.resume(&bad).unwrap_err().contains("memory objects"));
    }

    #[test]
    fn invalidate_blocks_memory_dependent_reuse() {
        // Region loads from a table; after recording, an invalidate
        // plus a store changes the table; reuse must miss and
        // re-execute, observing the new value.
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let count = f.movi(0);
        let v = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.store(o, 0, 5);
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body); // patched
        f.switch_to(body);
        f.load_into(v, o, 0, 0);
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, v);
        // After the first round, rewrite the table and invalidate.
        f.store(o, 0, 11);
        f.nop(); // patched to invalidate
        f.inc(count, 1);
        f.br(CmpPred::Lt, count, 2, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: BlockId(2),
            cont: BlockId(3),
        };
        func.block_mut(BlockId(2)).instrs[0].ext = InstrExt::LIVE_OUT;
        func.block_mut(BlockId(2)).instrs[1].ext = InstrExt::REGION_END;
        // Replace the nop with invalidate.
        let nop_pos = 2;
        func.block_mut(BlockId(3)).instrs[nop_pos].op = Op::Invalidate { region };
        let mut crb = ScriptCrb::default();
        let out = Emulator::new(&p).run(&mut crb, &mut NullSink).unwrap();
        // acc = 5 (first round) + 11 (second round, reuse invalidated).
        assert_eq!(out.returned[0], Value::from_int(16));
        assert_eq!(out.reuse_hits, 0);
        assert_eq!(out.reuse_misses, 2);
    }
}

#![warn(missing_docs)]

//! # ccr-profile — emulation and the Reuse Profiling System
//!
//! The paper's evaluation is *emulation-driven*: the IMPACT framework
//! executes the program functionally and feeds both the profilers and
//! the cycle-level timing model. This crate provides:
//!
//! * a functional [`emulator::Emulator`] for `ccr-ir`
//!   programs, implementing the full execution semantics of the CCR
//!   ISA extensions (reuse lookup, memoization mode, instance
//!   recording, invalidation) against a pluggable
//!   [`crb::CrbModel`],
//! * a structured instruction [`trace`] consumed by observers
//!   ([`trace::TraceSink`]),
//! * the **Reuse Profiling System** ([`rps`]): instruction-level value
//!   profiles, memory-update profiles, and cyclic recurrence profiles
//!   (Section 4.2 of the paper),
//! * the **reuse-potential limit study** ([`potential`]) behind
//!   Figure 4: block-level vs region-level dynamic reuse with an
//!   8-record history per code segment.

pub mod crb;
pub mod emulator;
pub mod potential;
pub mod rps;
pub mod trace;

pub use crb::{CrbModel, MissCause, NullCrb, RecordedInstance, ReuseLookup};
pub use emulator::{
    EmuConfig, EmuError, EmuFrameSnapshot, EmuMemoSnapshot, EmuRun, EmuSnapshot, Emulator,
    RunOutcome,
};
pub use potential::{PotentialConfig, PotentialStudy, ReusePotential};
pub use rps::{
    hash_values, CyclicProfile, InstrProfile, LoopKey, MemProfile, ReuseProfile, ValueProfiler,
    CYCLIC_HISTORY, RECENT_WINDOW, TOP_K,
};
pub use trace::{ExecEvent, MemAccess, MultiSink, NullSink, ReuseOutcome, TraceSink};

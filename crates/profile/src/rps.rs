//! The Reuse Profiling System (RPS).
//!
//! Section 4.2 of the paper: *"The Reuse Profiling System (RPS) was
//! developed as a result of this work and is designed to report
//! accurate reuse information for three components: instruction-level
//! repetition, reusability for memory operations, and cyclic
//! computation recurrence."*
//!
//! * **Instruction-level**: for every instruction, the execution
//!   count, the concentration of its input-operand value vectors in
//!   the top *k* distinct vectors (the paper's `Invariance_R[k]`,
//!   k = 5), and the recurrence of vectors within the ten most recent
//!   executions ("profiling support allows the ten most recent
//!   instruction executions to be maintained").
//! * **Memory**: for every load, the fraction of executions for which
//!   the referenced location had not been stored to since the load's
//!   previous access of that location.
//! * **Cyclic**: for every candidate loop, the invocation count, the
//!   fraction of invocations with more than one iteration, and the
//!   fraction whose live-in value vector (with unchanged loop memory)
//!   matches one of the eight most recent recorded invocations.

use std::collections::{BTreeSet, HashMap, VecDeque};

use ccr_analysis::{CallGraph, LoopForest, SideEffects};
use ccr_ir::{BlockId, FuncId, InstrId, MemObjectId, Op, Operand, Program, Reg, Value};

use crate::trace::{ExecEvent, TraceSink};

/// Identifies a loop by its function and header block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LoopKey {
    /// Function containing the loop.
    pub func: FuncId,
    /// The loop header.
    pub header: BlockId,
}

/// Static facts about a candidate loop, needed for cyclic profiling.
#[derive(Clone, Debug)]
pub struct LoopMeta {
    /// The loop's identity.
    pub key: LoopKey,
    /// Blocks in the loop body (header included).
    pub body: BTreeSet<BlockId>,
    /// Objects loaded anywhere in the body.
    pub loaded_objects: Vec<MemObjectId>,
    /// True if the body contains a store or a call — such loops are
    /// profiled for invocation statistics but can never be reused.
    pub impure: bool,
}

/// Number of distinct value vectors whose weight defines invariance
/// (the paper's k; "the number of invariant values to five").
pub const TOP_K: usize = 5;
/// Recent-execution window maintained per instruction.
pub const RECENT_WINDOW: usize = 10;
/// Invocation history depth for cyclic recurrence (matches the eight
/// records of the Figure 4 study).
pub const CYCLIC_HISTORY: usize = 8;
/// Cap on distinct value vectors tracked per instruction.
const MAX_TRACKED_VECTORS: usize = 64;
/// Cap on distinct locations tracked per load.
const MAX_TRACKED_LOCATIONS: usize = 4096;

/// Per-instruction value-locality counters.
#[derive(Clone, Debug, Default)]
pub struct InstrProfile {
    /// Total executions.
    pub exec: u64,
    /// Executions whose input vector was seen in the recent window.
    pub recent_hits: u64,
    /// For branches: executions on which the branch was taken.
    pub taken: u64,
    vector_counts: HashMap<u64, u64>,
    overflow: u64,
    recent: VecDeque<u64>,
}

impl InstrProfile {
    /// Sum of the top-`k` distinct input-vector counts.
    pub fn invariance_top(&self, k: usize) -> u64 {
        let mut counts: Vec<u64> = self.vector_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.into_iter().take(k).sum()
    }

    /// The paper's `Invariance_R[k](i) / Exec(i)` ratio in `[0, 1]`.
    pub fn invariance_ratio(&self, k: usize) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.invariance_top(k) as f64 / self.exec as f64
        }
    }

    /// Fraction of executions whose input vector recurred within the
    /// recent window.
    pub fn recent_ratio(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.recent_hits as f64 / self.exec as f64
        }
    }

    /// Number of distinct input vectors observed (saturating at the
    /// tracking cap).
    pub fn distinct_vectors(&self) -> usize {
        self.vector_counts.len()
    }

    fn observe(&mut self, sig: u64) {
        self.exec += 1;
        if self.recent.iter().any(|&s| s == sig) {
            self.recent_hits += 1;
        }
        if self.recent.len() == RECENT_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(sig);
        if self.vector_counts.len() < MAX_TRACKED_VECTORS || self.vector_counts.contains_key(&sig) {
            *self.vector_counts.entry(sig).or_insert(0) += 1;
        } else {
            self.overflow += 1;
        }
    }
}

/// Per-load memory-reuse counters.
#[derive(Clone, Debug, Default)]
pub struct MemProfile {
    /// Total executions of the load.
    pub exec: u64,
    /// Executions finding the location unchanged since this load last
    /// touched it.
    pub unchanged: u64,
    last_seen_version: HashMap<(MemObjectId, u64), u64>,
}

impl MemProfile {
    /// The fraction of executions with unchanged source locations —
    /// the paper's per-load memory reusability.
    pub fn unchanged_ratio(&self) -> f64 {
        if self.exec == 0 {
            0.0
        } else {
            self.unchanged as f64 / self.exec as f64
        }
    }
}

/// Per-loop cyclic recurrence counters.
#[derive(Clone, Debug, Default)]
pub struct CyclicProfile {
    /// Loop invocations observed.
    pub invocations: u64,
    /// Invocations executing more than one iteration.
    pub multi_iteration: u64,
    /// Invocations whose input state matched a recent record.
    pub reuse_opportunities: u64,
    /// Total iterations across all invocations.
    pub total_iterations: u64,
    history: VecDeque<(u64, Vec<u64>)>,
}

impl CyclicProfile {
    /// Fraction of invocations that could have reused a recent result.
    pub fn reuse_ratio(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.reuse_opportunities as f64 / self.invocations as f64
        }
    }

    /// Fraction of invocations with more than one iteration.
    pub fn multi_iteration_ratio(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.multi_iteration as f64 / self.invocations as f64
        }
    }

    /// Mean iterations per invocation.
    pub fn mean_iterations(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.invocations as f64
        }
    }
}

/// The finished profile, as consumed by region formation.
#[derive(Clone, Debug, Default)]
pub struct ReuseProfile {
    instr: HashMap<InstrId, InstrProfile>,
    mem: HashMap<InstrId, MemProfile>,
    cyclic: HashMap<LoopKey, CyclicProfile>,
    /// Total dynamic instructions profiled.
    pub total_dyn_instrs: u64,
}

impl ReuseProfile {
    /// Execution count of an instruction (0 if never executed).
    pub fn exec(&self, id: InstrId) -> u64 {
        self.instr.get(&id).map_or(0, |p| p.exec)
    }

    /// The `Invariance_R[k]/Exec` ratio of an instruction.
    pub fn invariance_ratio(&self, id: InstrId, k: usize) -> f64 {
        self.instr.get(&id).map_or(0.0, |p| p.invariance_ratio(k))
    }

    /// Recent-window recurrence ratio of an instruction.
    pub fn recent_ratio(&self, id: InstrId) -> f64 {
        self.instr.get(&id).map_or(0.0, |p| p.recent_ratio())
    }

    /// Memory-unchanged ratio of a load (0 for non-loads).
    pub fn mem_unchanged_ratio(&self, id: InstrId) -> f64 {
        self.mem.get(&id).map_or(0.0, |p| p.unchanged_ratio())
    }

    /// For branches: fraction of executions on which the branch was
    /// taken (0 if never executed).
    pub fn taken_ratio(&self, id: InstrId) -> f64 {
        self.instr.get(&id).map_or(0.0, |p| {
            if p.exec == 0 {
                0.0
            } else {
                p.taken as f64 / p.exec as f64
            }
        })
    }

    /// Full per-instruction profile, if the instruction executed.
    pub fn instr_profile(&self, id: InstrId) -> Option<&InstrProfile> {
        self.instr.get(&id)
    }

    /// Cyclic profile of a loop, if it was a candidate and ran.
    pub fn cyclic_profile(&self, key: LoopKey) -> Option<&CyclicProfile> {
        self.cyclic.get(&key)
    }

    /// Iterates over all profiled loops.
    pub fn iter_cyclic(&self) -> impl Iterator<Item = (&LoopKey, &CyclicProfile)> {
        self.cyclic.iter()
    }
}

struct ActiveInvocation {
    key: LoopKey,
    inputs: Vec<(Reg, Value)>,
    written: Vec<Reg>,
    iterations: u64,
    start_versions: Vec<u64>,
}

/// Online profiler; attach to an [`crate::Emulator`] run as a
/// [`TraceSink`], then call [`ValueProfiler::finish`].
pub struct ValueProfiler {
    profile: ReuseProfile,
    loops: HashMap<LoopKey, LoopMeta>,
    /// Per-object global store version.
    obj_version: Vec<u64>,
    /// Per-location store version (object, index) -> version.
    loc_version: HashMap<(MemObjectId, u64), u64>,
    /// Active loop invocation per call depth.
    active: HashMap<usize, ActiveInvocation>,
    depth: usize,
    current_block: Option<(FuncId, BlockId)>,
}

impl ValueProfiler {
    /// Creates a profiler with explicit loop metadata.
    pub fn new(program: &Program, loops: Vec<LoopMeta>) -> ValueProfiler {
        ValueProfiler {
            profile: ReuseProfile::default(),
            loops: loops.into_iter().map(|m| (m.key, m)).collect(),
            obj_version: vec![0; program.objects().len()],
            loc_version: HashMap::new(),
            active: HashMap::new(),
            depth: 0,
            current_block: None,
        }
    }

    /// Creates a profiler, deriving candidate-loop metadata from the
    /// program: every *innermost* natural loop is a candidate.
    pub fn for_program(program: &Program) -> ValueProfiler {
        let cg = CallGraph::compute(program);
        let se = SideEffects::compute(program, &cg);
        let mut metas = Vec::new();
        for func in program.functions() {
            let forest = LoopForest::compute(func);
            for lp in forest.inner_loops() {
                let mut loaded = BTreeSet::new();
                let mut impure = false;
                for &b in &lp.body {
                    for instr in &func.block(b).instrs {
                        match &instr.op {
                            Op::Load { object, .. } => {
                                loaded.insert(*object);
                            }
                            Op::Store { .. } => impure = true,
                            Op::Call { callee, .. } => {
                                impure = true;
                                let _ = se.may_store(*callee);
                            }
                            _ => {}
                        }
                    }
                }
                metas.push(LoopMeta {
                    key: LoopKey {
                        func: func.id(),
                        header: lp.header,
                    },
                    body: lp.body.clone(),
                    loaded_objects: loaded.into_iter().collect(),
                    impure,
                });
            }
        }
        ValueProfiler::new(program, metas)
    }

    /// The candidate-loop metadata the profiler was built with (used
    /// by the limit study and by region formation).
    pub fn loop_metas(&self) -> Vec<LoopMeta> {
        self.loops.values().cloned().collect()
    }

    /// Consumes the profiler, finalizing any open invocation records.
    pub fn finish(mut self) -> ReuseProfile {
        let depths: Vec<usize> = self.active.keys().copied().collect();
        for d in depths {
            self.finalize_invocation(d);
        }
        self.profile
    }

    fn loop_versions(&self, meta: &LoopMeta) -> Vec<u64> {
        meta.loaded_objects
            .iter()
            .map(|o| self.obj_version[o.index()])
            .collect()
    }

    fn finalize_invocation(&mut self, depth: usize) {
        let Some(inv) = self.active.remove(&depth) else {
            return;
        };
        let meta = &self.loops[&inv.key];
        let versions = self.loop_versions(meta);
        let sig = hash_reg_values(&inv.inputs);
        let prof = self.profile.cyclic.entry(inv.key).or_default();
        prof.invocations += 1;
        prof.total_iterations += inv.iterations;
        if inv.iterations > 1 {
            prof.multi_iteration += 1;
        }
        let reusable = !meta.impure
            && prof
                .history
                .iter()
                .any(|(s, v)| *s == sig && *v == inv.start_versions && *v == versions);
        if reusable {
            prof.reuse_opportunities += 1;
        }
        if prof.history.len() == CYCLIC_HISTORY {
            prof.history.pop_front();
        }
        prof.history.push_back((sig, versions));
    }
}

impl TraceSink for ValueProfiler {
    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        let key = LoopKey {
            func,
            header: block,
        };
        let depth = self.depth;
        // Entering a tracked header: new invocation or next iteration.
        if self.loops.contains_key(&key) {
            match self.active.get_mut(&depth) {
                Some(inv) if inv.key == key => {
                    inv.iterations += 1;
                }
                _ => {
                    self.finalize_invocation(depth);
                    let versions = self.loop_versions(&self.loops[&key].clone());
                    self.active.insert(
                        depth,
                        ActiveInvocation {
                            key,
                            inputs: Vec::new(),
                            written: Vec::new(),
                            iterations: 1,
                            start_versions: versions,
                        },
                    );
                }
            }
        } else if let Some(inv) = self.active.get(&depth) {
            // Leaving the active loop's body ends the invocation.
            let meta = &self.loops[&inv.key];
            if !meta.body.contains(&block) {
                self.finalize_invocation(depth);
            }
        }
        self.current_block = Some((func, block));
    }

    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        self.depth += 1;
    }

    fn on_ret(&mut self, _from: FuncId) {
        self.finalize_invocation(self.depth);
        self.depth = self.depth.saturating_sub(1);
    }

    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        self.profile.total_dyn_instrs += 1;
        let instr = event.instr;
        let sig = hash_values(event.inputs);
        let ip = self.profile.instr.entry(instr.id).or_default();
        ip.observe(sig);
        if event.taken == Some(true) {
            ip.taken += 1;
        }

        // Memory bookkeeping.
        if let Some(mem) = event.mem {
            let loc = (mem.object, mem.index);
            if mem.is_store {
                self.obj_version[mem.object.index()] += 1;
                *self.loc_version.entry(loc).or_insert(0) += 1;
            } else {
                let version = self.loc_version.get(&loc).copied().unwrap_or(0);
                let prof = self.profile.mem.entry(instr.id).or_default();
                prof.exec += 1;
                match prof.last_seen_version.get(&loc) {
                    Some(&seen) if seen == version => prof.unchanged += 1,
                    _ => {}
                }
                if prof.last_seen_version.len() < MAX_TRACKED_LOCATIONS
                    || prof.last_seen_version.contains_key(&loc)
                {
                    prof.last_seen_version.insert(loc, version);
                }
            }
        }

        // Cyclic live-in capture: registers read before written while
        // the invocation is active and the instruction is in the body.
        if let Some(inv) = self.active.get_mut(&self.depth) {
            let in_body = self
                .loops
                .get(&inv.key)
                .is_some_and(|m| m.body.contains(&event.block));
            if in_body && event.func == inv.key.func {
                for (op, val) in instr.src_operands().iter().zip(event.inputs) {
                    if let Operand::Reg(r) = op {
                        if !inv.written.contains(r) && !inv.inputs.iter().any(|(x, _)| x == r) {
                            inv.inputs.push((*r, *val));
                        }
                    }
                }
                for d in instr.dsts() {
                    if !inv.written.contains(&d) {
                        inv.written.push(d);
                    }
                }
            }
        }
    }
}

/// Hashes a value slice with an FNV-1a-style mix (stable across runs).
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h ^= v.0 as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 29;
    }
    h
}

fn hash_reg_values(pairs: &[(Reg, Value)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (r, v) in pairs {
        h ^= u64::from(r.0);
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= v.0 as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crb::NullCrb;
    use crate::emulator::Emulator;
    use ccr_ir::{BinKind, CmpPred, ProgramBuilder};

    /// Loop over a constant table, invoked `n` times via an outer loop.
    /// The inner loop's inputs are identical every invocation, so its
    /// cyclic reuse ratio should approach (n-1)/n.
    fn looped_sum(n: i64) -> (ccr_ir::Program, LoopKey) {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![2, 4, 6, 8]);
        let mut f = pb.function("main", 0, 1);
        let total = f.movi(0);
        let outer_i = f.movi(0);
        let sum = f.fresh();
        let j = f.fresh();
        let outer = f.block();
        let inner = f.block();
        let inner_done = f.block();
        let done = f.block();
        f.jump(outer);
        f.switch_to(outer);
        f.assign(sum, 0);
        f.assign(j, 0);
        f.jump(inner);
        f.switch_to(inner);
        let v = f.load(t, j);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(j, 1);
        f.br(CmpPred::Lt, j, 4, inner, inner_done);
        f.switch_to(inner_done);
        f.bin_into(BinKind::Add, total, total, sum);
        f.inc(outer_i, 1);
        f.br(CmpPred::Lt, outer_i, n, outer, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(total)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        (
            pb.finish(),
            LoopKey {
                func: ccr_ir::FuncId(0),
                header: inner,
            },
        )
    }

    fn profile(p: &ccr_ir::Program) -> ReuseProfile {
        let mut prof = ValueProfiler::for_program(p);
        Emulator::new(p).run(&mut NullCrb, &mut prof).unwrap();
        prof.finish()
    }

    #[test]
    fn instruction_invariance_of_constant_inputs() {
        let (p, _) = looped_sum(10);
        let prof = profile(&p);
        // The load executes 40 times over 4 distinct indices: top-5
        // vectors cover everything.
        let load_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| i.is_load())
            .unwrap()
            .1
            .id;
        assert_eq!(prof.exec(load_id), 40);
        assert!((prof.invariance_ratio(load_id, 5) - 1.0).abs() < 1e-9);
        assert!(prof.instr_profile(load_id).unwrap().distinct_vectors() <= 4);
    }

    #[test]
    fn memory_unchanged_ratio_for_readonly_table() {
        let (p, _) = looped_sum(10);
        let prof = profile(&p);
        let load_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| i.is_load())
            .unwrap()
            .1
            .id;
        // First touch of each of 4 locations is "unknown"; the
        // remaining 36 accesses see unchanged locations.
        assert_eq!(prof.mem_unchanged_ratio(load_id), 36.0 / 40.0);
    }

    #[test]
    fn cyclic_profile_counts_invocations_and_reuse() {
        let (p, key) = looped_sum(10);
        let prof = profile(&p);
        let cyc = prof.cyclic_profile(key).expect("inner loop profiled");
        assert_eq!(cyc.invocations, 10);
        assert_eq!(cyc.multi_iteration, 10);
        assert_eq!(cyc.total_iterations, 40);
        // Every invocation after the first can reuse.
        assert_eq!(cyc.reuse_opportunities, 9);
        assert!((cyc.reuse_ratio() - 0.9).abs() < 1e-9);
        assert!((cyc.mean_iterations() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stores_break_memory_reuse() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 1);
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        let acc = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let v = f.load(o, 0);
        f.bin_into(BinKind::Add, acc, acc, v);
        f.store(o, 0, i); // location changes every iteration
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 8, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let prof = profile(&p);
        let load_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| i.is_load())
            .unwrap()
            .1
            .id;
        assert_eq!(prof.mem_unchanged_ratio(load_id), 0.0);
        // The loop stores, so it is impure: no cyclic reuse.
        let key = LoopKey {
            func: p.main(),
            header: BlockId(1),
        };
        let cyc = prof.cyclic_profile(key).unwrap();
        assert_eq!(cyc.reuse_opportunities, 0);
    }

    #[test]
    fn varying_inputs_reduce_invariance() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        let acc = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let sq = f.mul(i, i); // new input vector every iteration
        f.bin_into(BinKind::Add, acc, acc, sq);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let prof = profile(&p);
        let mul_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| {
                matches!(
                    i.op,
                    Op::Binary {
                        kind: BinKind::Mul,
                        ..
                    }
                )
            })
            .unwrap()
            .1
            .id;
        assert_eq!(prof.exec(mul_id), 100);
        assert!(prof.invariance_ratio(mul_id, 5) <= 0.06);
        assert_eq!(prof.recent_ratio(mul_id), 0.0);
    }

    #[test]
    fn recent_window_catches_alternation() {
        // Input alternates between two values: every execution after
        // the first two finds its vector in the 10-deep window.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(0);
        let acc = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let bit = f.and(i, 1);
        let dbl = f.shl(bit, 1);
        f.bin_into(BinKind::Add, acc, acc, dbl);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 50, body, done);
        f.switch_to(done);
        f.ret(&[ccr_ir::Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let prof = profile(&p);
        let shl_id = p
            .function(p.main())
            .iter_instrs()
            .find(|(_, i)| {
                matches!(
                    i.op,
                    Op::Binary {
                        kind: BinKind::Shl,
                        ..
                    }
                )
            })
            .unwrap()
            .1
            .id;
        let ip = prof.instr_profile(shl_id).unwrap();
        assert!(ip.recent_ratio() > 0.9, "ratio {}", ip.recent_ratio());
        assert_eq!(ip.distinct_vectors(), 2);
    }

    #[test]
    fn hash_values_distinguishes_and_is_stable() {
        let a = hash_values(&[Value::from_int(1), Value::from_int(2)]);
        let b = hash_values(&[Value::from_int(2), Value::from_int(1)]);
        let c = hash_values(&[Value::from_int(1), Value::from_int(2)]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(hash_values(&[]), hash_values(&[Value::ZERO]));
    }
}

//! The functional interface between the emulator and a Computation
//! Reuse Buffer implementation.
//!
//! The emulator implements the *semantics* of the CCR ISA extensions
//! (what a reuse hit does to architectural state, how memoization mode
//! builds a computation instance); the *policy* (capacity, instance
//! counts, LRU replacement, invalidation bookkeeping) lives behind the
//! [`CrbModel`] trait. The real buffer is `ccr_sim::crb::ReuseBuffer`;
//! [`NullCrb`] (always miss, never record) is used for profiling runs
//! and as the "CCR disabled" baseline.

use ccr_ir::{Reg, RegionId, Value};

/// A computation instance assembled by memoization mode, ready to be
/// recorded into the buffer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RecordedInstance {
    /// Input bank: registers read before being defined inside the
    /// region, with the values they held (at most 8 in the paper's
    /// configuration; the emulator aborts memoization beyond the
    /// buffer's declared capacity).
    pub inputs: Vec<(Reg, Value)>,
    /// Output bank: final values of the live-out-marked destinations.
    pub outputs: Vec<(Reg, Value)>,
    /// True if any load executed during memoization (the instance's
    /// *memory valid* flag must then be honored by invalidation).
    pub accesses_memory: bool,
    /// Dynamic instructions executed by the region body while
    /// recording — the execution a future hit will skip.
    pub body_instrs: u64,
}

/// Why a CRB lookup missed, classified at lookup time by the buffer.
///
/// The cause is purely observational: it never feeds back into timing
/// or replacement, so a profiled run is cycle-identical to an
/// unprofiled one. The five causes partition every miss:
///
/// * [`Cold`](MissCause::Cold) — the region has never had an instance
///   recorded (compulsory miss).
/// * [`Mismatch`](MissCause::Mismatch) — the entry holds live
///   instances for this region, but none whose input bank matches the
///   current register values.
/// * [`Capacity`](MissCause::Capacity) — a matching instance existed
///   but was evicted by the entry's replacement policy to make room
///   for another instance of the *same* region.
/// * [`Conflict`](MissCause::Conflict) — the region's instances were
///   cleared when a different region claimed the direct-mapped entry.
/// * [`Invalidated`](MissCause::Invalidated) — a matching
///   memory-dependent instance was killed by a *computation
///   invalidate* instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MissCause {
    /// Region never recorded: compulsory (cold) miss.
    Cold,
    /// Live instances exist, but no input bank matches.
    Mismatch,
    /// A matching instance was evicted by same-region replacement.
    Capacity,
    /// The entry was reassigned to another region, clearing instances.
    Conflict,
    /// A matching memory-dependent instance was invalidated.
    Invalidated,
}

impl MissCause {
    /// Stable lowercase name used in the telemetry event stream and
    /// all JSON schemas.
    pub fn as_str(self) -> &'static str {
        match self {
            MissCause::Cold => "cold",
            MissCause::Mismatch => "mismatch",
            MissCause::Capacity => "capacity",
            MissCause::Conflict => "conflict",
            MissCause::Invalidated => "invalidated",
        }
    }

    /// All causes, in the canonical (schema) order.
    pub const ALL: [MissCause; 5] = [
        MissCause::Cold,
        MissCause::Mismatch,
        MissCause::Capacity,
        MissCause::Conflict,
        MissCause::Invalidated,
    ];
}

/// Result of a successful CRB lookup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReuseLookup {
    /// The matched instance's output bank, to be committed to the
    /// architectural registers.
    pub outputs: Vec<(Reg, Value)>,
    /// The matched instance's input bank registers (reported to the
    /// timing model as the validation read set).
    pub inputs: Vec<Reg>,
    /// Dynamic instruction count the hit skips.
    pub skipped_instrs: u64,
}

/// A Computation Reuse Buffer, as seen by the emulator.
pub trait CrbModel {
    /// Looks up a valid computation instance for `region` whose input
    /// bank matches the current register values. `read_reg` reads the
    /// current architectural value of a register.
    fn lookup(
        &mut self,
        region: RegionId,
        read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup>;

    /// Records a freshly built instance for `region`.
    fn record(&mut self, region: RegionId, instance: RecordedInstance);

    /// Invalidates the memory-dependent instances of `region`
    /// (executed for the paper's *computation invalidate* instruction).
    fn invalidate(&mut self, region: RegionId);

    /// The input-bank capacity of a computation instance. Memoization
    /// aborts if a region turns out to need more input registers.
    fn input_capacity(&self) -> usize {
        8
    }

    /// The output-bank capacity of a computation instance.
    fn output_capacity(&self) -> usize {
        8
    }

    /// Cause of the most recent [`lookup`](CrbModel::lookup) miss, if
    /// the model classifies misses. Models without classification
    /// (including [`NullCrb`]) return `None`; the consumer treats an
    /// unclassified miss as cold.
    fn last_miss_cause(&self) -> Option<MissCause> {
        None
    }
}

/// A buffer that never hits and never records: runs the program purely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullCrb;

impl CrbModel for NullCrb {
    fn lookup(
        &mut self,
        _region: RegionId,
        _read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup> {
        None
    }

    fn record(&mut self, _region: RegionId, _instance: RecordedInstance) {}

    fn invalidate(&mut self, _region: RegionId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_crb_never_hits() {
        let mut crb = NullCrb;
        let mut read = |_r: Reg| Value::from_int(1);
        assert!(crb.lookup(RegionId(0), &mut read).is_none());
        crb.record(RegionId(0), RecordedInstance::default());
        crb.invalidate(RegionId(0));
        assert!(crb.lookup(RegionId(0), &mut read).is_none());
        assert_eq!(crb.input_capacity(), 8);
        assert_eq!(crb.output_capacity(), 8);
        assert_eq!(crb.last_miss_cause(), None);
    }

    #[test]
    fn miss_cause_names_are_stable_and_distinct() {
        let names: Vec<&str> = MissCause::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            names,
            ["cold", "mismatch", "capacity", "conflict", "invalidated"]
        );
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to
//! crates.io, so this vendored crate provides the *subset* of the
//! `rand` 0.9 API the workspace actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `random` / `random_range`. The generator is xoshiro256**
//! (public-domain algorithm by Blackman and Vigna) seeded through
//! SplitMix64 — deterministic, high-quality, and identical across
//! platforms. The output stream differs from upstream `rand`'s
//! ChaCha12-based `StdRng`, which only matters to golden outputs
//! regenerated in this repository.

use std::ops::Range;

/// A random-number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as i8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand` 0.9 names.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from narrow state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = r.random_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            seen[r.random_range(0usize..10)] += 1;
        }
        for (i, count) in seen.iter().enumerate() {
            assert!(*count > 700, "value {i} drawn only {count} times");
        }
    }
}

//! Test-runner support types: configuration, errors, and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG behind case generation. Seeded deterministically from the
/// test's fully-qualified name so failures reproduce across runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator seeded from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Samples uniformly from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        use rand::Rng as _;
        self.inner.random_range(0..bound.max(1))
    }
}

//! Value-generation strategies.

use std::fmt::Debug;
use std::ops::Range;

use rand::{Rng as _, SampleRange, Standard};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between strategies of the same value type (built by
/// `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.0.len());
        self.0[k].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`prop_map`](Strategy::prop_map) combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for any [`Standard`]-distributed value (`any::<T>()`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates uniformly-distributed values of `T`.
pub fn any<T: Standard + Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard + Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut source = RngAdapter(rng);
        source.random()
    }
}

/// Adapts [`TestRng`] to the `rand` shim's core trait so range and
/// standard sampling can be shared.
struct RngAdapter<'a>(&'a mut TestRng);

impl rand::RngCore for RngAdapter<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange + Clone,
    <Range<T> as SampleRange>::Output: Debug,
{
    type Value = <Range<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut source = RngAdapter(rng);
        source.random_range(self.clone())
    }
}

/// A `".{lo,hi}"`-style string pattern, treated loosely: generates a
/// string of `lo..=hi` mostly-printable characters with occasional
/// multi-byte code points. (Upstream proptest interprets the full
/// regex; the workspace only uses the any-character form.)
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 64));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| match rng.below(20) {
                0 => char::from_u32(0x80 + rng.next_u64() as u32 % 0x700).unwrap_or('\u{fffd}'),
                1 => '\n',
                _ => (0x20u8 + rng.below(0x5f) as u8) as char,
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let (_, tail) = pattern.split_once('{')?;
    let (body, _) = tail.split_once('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic("strategy::compose");
        let s = (0u8..4, -10i64..10).prop_map(|(a, b)| (a as i64) * 100 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-10..=310).contains(&v), "{v}");
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::deterministic("strategy::union");
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::deterministic("strategy::string");
        let s = ".{0,200}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 200);
        }
    }
}

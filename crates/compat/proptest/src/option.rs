//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` (`None` one time in four, matching
/// upstream's default weighting).
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` of the inner strategy's value, or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let mut rng = TestRng::deterministic("option::of");
        let s = of(0u8..10);
        let values: Vec<Option<u8>> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}

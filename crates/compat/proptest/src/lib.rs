//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to
//! crates.io, so this vendored crate implements the subset of the
//! proptest API the workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`,
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, integer-range
//! and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! and a loose `".{a,b}"` string strategy.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name) and
//! failing cases are *not* shrunk — the failure message prints the
//! full generated inputs instead.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test, returning a
/// [`TestCaseError`] (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Chooses uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $config; $($rest)*);
    };
    (@with $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            described
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

//! Collection strategies (`prop::collection`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element`-generated values with a length in
/// `size` (half-open, like upstream's `1..8`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = TestRng::deterministic("collection::vec");
        let s = vec(0u8..10, 1..8);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..8).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no access to
//! crates.io, so this vendored crate provides the subset of the
//! Criterion API the workspace's benches use: [`Criterion`],
//! `benchmark_group` / `bench_function` / `sample_size`, `b.iter`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!`
//! macros. Instead of statistical sampling it runs a warmup pass and a
//! fixed number of timed samples, printing mean wall time per
//! iteration — enough to compare hot paths locally, with no external
//! dependencies.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            samples: 20,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&name.into(), 20, f);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { nanos: Vec::new() };
    // Warmup sample, then the timed ones.
    f(&mut b);
    b.nanos.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.nanos.is_empty() {
        println!("  {name}: no measurements");
        return;
    }
    let mean = b.nanos.iter().sum::<u128>() / b.nanos.len() as u128;
    let min = *b.nanos.iter().min().expect("non-empty");
    println!(
        "  {name}: mean {} / min {} over {} samples",
        fmt_nanos(mean),
        fmt_nanos(min),
        b.nanos.len()
    );
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

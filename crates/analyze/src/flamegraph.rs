//! A self-contained flamegraph renderer over collapsed-stack text —
//! the `flamegraph.svg` artifact.
//!
//! Takes [`crate::folded::fold_samples`] output (`a;b;c N` lines) and
//! renders an icicle-layout SVG (root on top, leaves growing down)
//! with no scripts, no external fonts, and no tool dependencies.
//! Everything is deterministic: sibling frames are laid out in
//! lexicographic order, colors are a pure hash of the frame name, and
//! coordinates are emitted at fixed precision — identical folded
//! input yields byte-identical SVG, so the artifact can be
//! golden-file checked.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Canvas width in pixels.
pub const WIDTH: f64 = 1200.0;
/// Height of one frame row in pixels.
pub const ROW_HEIGHT: f64 = 16.0;
/// Frames narrower than this many pixels are dropped (standard
/// flamegraph practice: they would be sub-pixel noise).
pub const MIN_FRAME_WIDTH: f64 = 0.2;
/// Frames at least this wide get an inline label.
const MIN_LABEL_WIDTH: f64 = 40.0;
/// Approximate label character width at the embedded font size.
const CHAR_WIDTH: f64 = 7.2;

#[derive(Default)]
struct Node {
    total: u64,
    children: BTreeMap<String, Node>,
}

fn build_tree(folded: &str) -> Node {
    let mut root = Node::default();
    for line in folded.lines() {
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(count) = count.parse::<u64>() else {
            continue;
        };
        root.total += count;
        let mut node = &mut root;
        for frame in stack.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
            node.total += count;
        }
    }
    root
}

fn depth_of(node: &Node) -> usize {
    1 + node.children.values().map(depth_of).max().unwrap_or(0)
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// FNV-1a over the frame name, spread over a warm palette. Pure in
/// the name — re-renders never shuffle colors.
fn color_of(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let r = 205 + (h % 50) as u8;
    let g = 80 + ((h >> 8) % 110) as u8;
    let b = ((h >> 16) % 55) as u8;
    format!("rgb({r},{g},{b})")
}

fn render_frame(
    out: &mut String,
    name: &str,
    node: &Node,
    x: f64,
    depth: usize,
    scale: f64,
    grand_total: u64,
) {
    let w = node.total as f64 * scale;
    if w < MIN_FRAME_WIDTH {
        return;
    }
    let y = depth as f64 * ROW_HEIGHT;
    let pct = 100.0 * node.total as f64 / grand_total as f64;
    let title = format!("{} ({} cycles, {:.2}%)", escape_xml(name), node.total, pct);
    let _ = write!(
        out,
        "<g><title>{title}</title><rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" \
         height=\"{h:.1}\" fill=\"{fill}\" rx=\"1\"/>",
        h = ROW_HEIGHT - 1.0,
        fill = color_of(name),
    );
    if w >= MIN_LABEL_WIDTH {
        let budget = ((w - 6.0) / CHAR_WIDTH) as usize;
        let label: String = if name.chars().count() > budget {
            name.chars()
                .take(budget.saturating_sub(2))
                .collect::<String>()
                + ".."
        } else {
            name.to_string()
        };
        let _ = write!(
            out,
            "<text x=\"{tx:.1}\" y=\"{ty:.1}\">{}</text>",
            escape_xml(&label),
            tx = x + 3.0,
            ty = y + ROW_HEIGHT - 4.5,
        );
    }
    out.push_str("</g>\n");
    let mut child_x = x;
    for (child_name, child) in &node.children {
        render_frame(
            out,
            child_name,
            child,
            child_x,
            depth + 1,
            scale,
            grand_total,
        );
        child_x += child.total as f64 * scale;
    }
}

/// Renders collapsed-stack text as a deterministic, self-contained
/// flamegraph SVG. Empty input yields a small placeholder SVG noting
/// the absence of samples (still well-formed XML).
pub fn flamegraph_svg(folded: &str) -> String {
    let root = build_tree(folded);
    let depth = if root.total == 0 { 1 } else { depth_of(&root) };
    let height = (depth + 1) as f64 * ROW_HEIGHT + 24.0;
    let mut out = String::new();
    let _ = write!(
        out,
        "<?xml version=\"1.0\" standalone=\"no\"?>\n\
         <svg version=\"1.1\" width=\"{WIDTH:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH:.0} {height:.0}\" xmlns=\"http://www.w3.org/2000/svg\">\n\
         <style>text {{ font-family: monospace; font-size: 11px; fill: #000; }}</style>\n\
         <rect x=\"0\" y=\"0\" width=\"{WIDTH:.0}\" height=\"{height:.0}\" fill=\"#f8f8f8\"/>\n\
         <text x=\"4\" y=\"14\">ccr cycle flamegraph — {total} sampled cycles</text>\n\
         <g transform=\"translate(0,20)\">\n",
        total = root.total,
    );
    if root.total == 0 {
        out.push_str("<text x=\"4\" y=\"14\">no cycle samples (run was not profiled)</text>\n");
    } else {
        let scale = WIDTH / root.total as f64;
        render_frame(&mut out, "all", &root, 0.0, 0, scale, root.total);
    }
    out.push_str("</g>\n</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOLDED: &str = "base;main 50\nccr;main 30\nccr;main;count_ones 20\n";

    #[test]
    fn svg_is_deterministic_and_well_formed() {
        let a = flamegraph_svg(FOLDED);
        let b = flamegraph_svg(FOLDED);
        assert_eq!(a, b);
        assert!(a.starts_with("<?xml"));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<g").count(), a.matches("</g>").count());
        assert_eq!(a.matches("<svg").count(), 1);
        assert!(!a.contains("<script"), "must be inert");
    }

    #[test]
    fn frame_widths_are_proportional_to_cycles() {
        let svg = flamegraph_svg(FOLDED);
        // Root spans the canvas; base and ccr split it 50/50.
        assert!(svg.contains("width=\"1200.0\""), "{svg}");
        assert!(svg.contains(">all (100 cycles, 100.00%)<"), "{svg}");
        assert!(svg.contains(">base (50 cycles, 50.00%)<"), "{svg}");
        assert!(svg.contains(">ccr (50 cycles, 50.00%)<"), "{svg}");
        assert!(svg.contains(">count_ones (20 cycles, 20.00%)<"), "{svg}");
        assert!(svg.contains("width=\"600.0\""), "{svg}");
        assert!(svg.contains("width=\"240.0\""), "{svg}");
    }

    #[test]
    fn sibling_order_and_colors_are_stable() {
        let svg = flamegraph_svg("ccr;b 10\nccr;a 10\n");
        let a_pos = svg
            .find(">a<")
            .or_else(|| svg.find("a (10 cycles"))
            .unwrap();
        let b_pos = svg
            .find(">b<")
            .or_else(|| svg.find("b (10 cycles"))
            .unwrap();
        assert!(a_pos < b_pos, "siblings render lexicographically");
        assert_eq!(color_of("main"), color_of("main"));
    }

    #[test]
    fn names_are_xml_escaped() {
        let svg = flamegraph_svg("ccr;f<g>&co 10\n");
        assert!(svg.contains("f&lt;g&gt;&amp;co"), "{svg}");
        assert!(!svg.contains("f<g>"), "{svg}");
    }

    #[test]
    fn empty_input_renders_a_placeholder() {
        let svg = flamegraph_svg("");
        assert!(svg.contains("no cycle samples"), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn subpixel_frames_are_dropped_not_distorted() {
        let mut folded = String::from("ccr;big 1000000\n");
        folded.push_str("ccr;tiny 1\n");
        let svg = flamegraph_svg(&folded);
        assert!(svg.contains("big"), "{svg}");
        assert!(!svg.contains("tiny"), "{svg}");
    }
}

//! Reading run artifacts back: a streaming, line-tolerant
//! `events.jsonl` reader and the versioned `report.json` reader.
//!
//! The event reader is *streaming* (one line parsed at a time, typed
//! records extracted immediately, the `Value` tree dropped before the
//! next line) and *line-tolerant*: a line that fails to parse — the
//! classic artifact of a run killed mid-write — is counted and
//! skipped rather than aborting the whole analysis. Schema versions
//! are a different matter: a line that parses but carries an unknown
//! `"v"`, or a report with an unknown `schema_version`, is a hard
//! error, because silently misreading a future schema is worse than
//! failing.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::value::{self, Value};

/// Event-stream schema versions this reader understands.
pub const KNOWN_EVENT_VERSIONS: &[u64] = &[1];
/// Run-report schema versions this reader understands. Version 1
/// (PR 1) has no provenance block; version 2 adds it; version 3 adds
/// CRB miss-cause counters and per-phase cycle attribution; version 4
/// adds `git_commit` to the provenance block.
pub const KNOWN_REPORT_VERSIONS: &[u64] = &[1, 2, 3, 4];

/// What went wrong while loading run artifacts.
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem-level failure.
    Io(PathBuf, io::Error),
    /// `report.json` is not valid JSON.
    Report(PathBuf, value::ParseError),
    /// A schema version this reader does not know.
    Schema(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            IngestError::Report(p, e) => write!(f, "{}: {e}", p.display()),
            IngestError::Schema(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Which simulation a mid-run event belongs to. `ccr run` simulates
/// the unannotated baseline first, then the annotated program; the
/// `sim_begin` markers in the stream separate the two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Before the first `sim_begin` (compile-time events).
    Compile,
    /// The baseline simulation.
    Base,
    /// The CCR simulation.
    Ccr,
}

/// One optimizer-pass record (`pass` event).
#[derive(Clone, Debug)]
pub struct PassRec {
    /// Pass name.
    pub pass: String,
    /// Wall time in microseconds.
    pub wall_us: u64,
    /// Number of IR changes the pass made.
    pub changes: u64,
    /// Instruction count before the pass.
    pub instrs_before: u64,
    /// Instruction count after the pass.
    pub instrs_after: u64,
}

/// One reuse-lookup outcome (`reuse` event).
#[derive(Clone, Debug)]
pub struct ReuseRec {
    /// Phase the lookup happened in.
    pub phase: Phase,
    /// Region id.
    pub region: u64,
    /// Whether the lookup hit.
    pub hit: bool,
    /// Instructions skipped by the hit (0 on a miss).
    pub skipped: u64,
    /// Pipeline cycle after the lookup.
    pub cycle: u64,
    /// Miss-cause tag (`cold` / `mismatch` / `capacity` / `conflict`
    /// / `invalidated`). Present only on misses from profiled runs.
    pub cause: Option<String>,
}

/// One periodic call-stack sample (`cycle_sample` event, profiled
/// runs only).
#[derive(Clone, Debug)]
pub struct CycleSampleRec {
    /// Phase the sample belongs to.
    pub phase: Phase,
    /// `;`-joined call stack, outermost frame first.
    pub stack: String,
    /// Cycles the sample accounts for.
    pub cycles: u64,
}

/// One cycle-attribution bucket set (report v3, profiled runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketSet {
    /// Cycles issuing, or structurally stalled at issue.
    pub issue: u64,
    /// Cycles waiting on fetch (redirects, icache misses).
    pub fetch: u64,
    /// Cycles waiting on memory results.
    pub memory: u64,
    /// Cycles attributed to reuse-hit handling.
    pub reuse_hit: u64,
    /// End-of-run drain cycles.
    pub drain: u64,
}

impl BucketSet {
    /// Sum across the buckets.
    pub fn total(&self) -> u64 {
        self.issue + self.fetch + self.memory + self.reuse_hit + self.drain
    }
}

/// One function's cycle attribution (report v3).
#[derive(Clone, Debug)]
pub struct FuncAttrRec {
    /// Function name.
    pub name: String,
    /// Total cycles charged to the function.
    pub cycles: u64,
    /// Breakdown of those cycles.
    pub buckets: BucketSet,
}

/// One phase's full cycle attribution (report v3, profiled runs).
#[derive(Clone, Debug, Default)]
pub struct AttrRec {
    /// Run-wide bucket totals (sums to the phase's cycle count).
    pub total: BucketSet,
    /// Per-function breakdowns, descending by cycles.
    pub functions: Vec<FuncAttrRec>,
    /// Per-region `(region, cycles)` charges, ascending region id.
    pub regions: Vec<(u64, u64)>,
}

/// One interval-IPC sample (`ipc_window` event).
#[derive(Clone, Copy, Debug)]
pub struct IpcWindowRec {
    /// Phase the window belongs to.
    pub phase: Phase,
    /// Window ordinal within its phase.
    pub index: u64,
    /// Cycle the window started at.
    pub start_cycle: u64,
    /// Cycles the window spanned.
    pub cycles: u64,
    /// Dynamic instructions issued in the window.
    pub instrs: u64,
    /// Instructions eliminated by reuse in the window.
    pub skipped: u64,
    /// Effective IPC of the window.
    pub ipc: f64,
}

/// Kind of a CRB structural event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrbKind {
    /// Capacity replacement inside an entry (`crb_evict`).
    Evict,
    /// Direct-mapped tag conflict (`crb_conflict`).
    Conflict,
    /// Memory invalidation (`crb_invalidate`).
    Invalidate,
}

/// One CRB structural event.
#[derive(Clone, Copy, Debug)]
pub struct CrbRec {
    /// What happened.
    pub kind: CrbKind,
    /// Buffer clock at the event.
    pub clock: u64,
    /// Region involved.
    pub region: u64,
    /// Direct-mapped entry index.
    pub entry: u64,
    /// Valid instances in the entry after the event.
    pub occupancy: u64,
    /// Instances lost to the event.
    pub lost: u64,
}

/// One `sim_summary` event (end-of-phase totals).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimSummaryRec {
    /// Total cycles of the phase.
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub dyn_instrs: u64,
    /// Instructions eliminated by reuse.
    pub skipped: u64,
    /// Reuse hits.
    pub reuse_hits: u64,
    /// Reuse misses.
    pub reuse_misses: u64,
    /// Effective IPC.
    pub effective_ipc: f64,
}

/// The report fields the analyzer consumes, extracted from
/// `report.json` (either schema version).
#[derive(Clone, Debug, Default)]
pub struct ReportInfo {
    /// `schema_version` of the report file.
    pub schema_version: u64,
    /// Workload name.
    pub workload: String,
    /// Input set name.
    pub input: String,
    /// Scale factor.
    pub scale: u64,
    /// Machine/CRB configuration hash (v2 reports only).
    pub config_hash: Option<String>,
    /// CLI argument vector (v2 reports only).
    pub argv: Vec<String>,
    /// Producing crate version (v2 reports only).
    pub crate_version: Option<String>,
    /// Git commit id of the producing checkout (v4 reports only;
    /// `"unknown"` when the producer ran outside a checkout).
    pub git_commit: Option<String>,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// CCR cycles.
    pub ccr_cycles: u64,
    /// Reported speedup.
    pub speedup: f64,
    /// Fraction of baseline instructions eliminated.
    pub eliminated_fraction: f64,
    /// Penalty charged per reuse miss (for miss-cost rankings).
    pub reuse_miss_penalty: u64,
    /// CRB entry count.
    pub crb_entries: u64,
    /// CRB instances per entry.
    pub crb_instances: u64,
    /// Number of formed regions.
    pub regions: u64,
    /// CRB lookup/hit/miss/eviction counters from the CCR phase.
    pub crb_lookups: u64,
    /// CRB hits.
    pub crb_hits: u64,
    /// CRB misses.
    pub crb_misses: u64,
    /// Cold misses — region never recorded (v3 reports only).
    pub crb_miss_cold: u64,
    /// Input-vector mismatch misses (v3 reports only).
    pub crb_miss_mismatch: u64,
    /// Misses on instances lost to capacity eviction (v3 only).
    pub crb_miss_capacity: u64,
    /// Misses on instances lost to entry conflicts (v3 only).
    pub crb_miss_conflict: u64,
    /// Misses on instances lost to invalidation (v3 only).
    pub crb_miss_invalidated: u64,
    /// CRB invalidations.
    pub crb_invalidations: u64,
    /// CRB entry conflicts.
    pub crb_entry_conflicts: u64,
    /// Baseline-phase cycle attribution (v3, profiled runs only).
    pub base_attribution: Option<AttrRec>,
    /// CCR-phase cycle attribution (v3, profiled runs only).
    pub ccr_attribution: Option<AttrRec>,
}

/// Everything `load_run` extracted from one telemetry directory.
#[derive(Clone, Debug, Default)]
pub struct RunData {
    /// Extracted report fields.
    pub report: ReportInfo,
    /// Optimizer-pass records, in stream order.
    pub passes: Vec<PassRec>,
    /// Per-reason formation rejections.
    pub formation_rejects: Vec<(String, u64)>,
    /// Reuse lookups, in stream order.
    pub reuse: Vec<ReuseRec>,
    /// Interval-IPC windows, in stream order.
    pub ipc_windows: Vec<IpcWindowRec>,
    /// CRB structural events, in stream order.
    pub crb_events: Vec<CrbRec>,
    /// Call-stack samples, in stream order (profiled runs only).
    pub cycle_samples: Vec<CycleSampleRec>,
    /// End-of-phase totals for the baseline simulation.
    pub base_summary: SimSummaryRec,
    /// End-of-phase totals for the CCR simulation.
    pub ccr_summary: SimSummaryRec,
    /// Total event lines successfully parsed.
    pub events: u64,
    /// Lines skipped as unparseable (truncated writes, corruption).
    pub skipped_lines: u64,
}

/// A raw parsed event line: its kind tag plus the full record. Used
/// by tooling that wants the stream without the typed extraction.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// The `"ev"` kind tag.
    pub kind: String,
    /// The whole parsed line.
    pub value: Value,
}

/// Loads `DIR/events.jsonl` + `DIR/report.json`.
///
/// # Errors
///
/// I/O failures, an unparseable `report.json`, or an unknown schema
/// version in either artifact. Unparseable *event lines* are not
/// errors; they are counted in [`RunData::skipped_lines`].
pub fn load_run(dir: &Path) -> Result<RunData, IngestError> {
    let report_path = dir.join("report.json");
    let report_text = std::fs::read_to_string(&report_path)
        .map_err(|e| IngestError::Io(report_path.clone(), e))?;
    let report_val =
        value::parse(&report_text).map_err(|e| IngestError::Report(report_path.clone(), e))?;
    let report = extract_report(&report_val)?;

    let events_path = dir.join("events.jsonl");
    let file = File::open(&events_path).map_err(|e| IngestError::Io(events_path.clone(), e))?;
    let mut data = RunData {
        report,
        ..RunData::default()
    };
    let mut phase = Phase::Compile;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| IngestError::Io(events_path.clone(), e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(ev) = value::parse(trimmed) else {
            data.skipped_lines += 1;
            continue;
        };
        let v = ev.u64_field("v");
        if !KNOWN_EVENT_VERSIONS.contains(&v) {
            return Err(IngestError::Schema(format!(
                "{}: unknown event schema version {v} (known: {KNOWN_EVENT_VERSIONS:?})",
                events_path.display()
            )));
        }
        data.events += 1;
        ingest_event(&mut data, &mut phase, &ev);
    }
    Ok(data)
}

fn ingest_event(data: &mut RunData, phase: &mut Phase, ev: &Value) {
    match ev.str_field("ev") {
        "sim_begin" => {
            *phase = match ev.str_field("phase") {
                "base" => Phase::Base,
                _ => Phase::Ccr,
            };
        }
        "pass" => data.passes.push(PassRec {
            pass: ev.str_field("pass").to_string(),
            wall_us: ev.u64_field("wall_us"),
            changes: ev.u64_field("changes"),
            instrs_before: ev.u64_field("instrs_before"),
            instrs_after: ev.u64_field("instrs_after"),
        }),
        "formation_reject" => data
            .formation_rejects
            .push((ev.str_field("reason").to_string(), ev.u64_field("count"))),
        "reuse" => data.reuse.push(ReuseRec {
            phase: *phase,
            region: ev.u64_field("region"),
            hit: ev.get("hit").and_then(Value::as_bool).unwrap_or(false),
            skipped: ev.u64_field("skipped"),
            cycle: ev.u64_field("cycle"),
            cause: ev.get("cause").and_then(Value::as_str).map(String::from),
        }),
        "cycle_sample" => data.cycle_samples.push(CycleSampleRec {
            phase: *phase,
            stack: ev.str_field("stack").to_string(),
            cycles: ev.u64_field("cycles"),
        }),
        "ipc_window" => data.ipc_windows.push(IpcWindowRec {
            phase: *phase,
            index: ev.u64_field("index"),
            start_cycle: ev.u64_field("start_cycle"),
            cycles: ev.u64_field("cycles"),
            instrs: ev.u64_field("instrs"),
            skipped: ev.u64_field("skipped"),
            ipc: ev.f64_field("ipc"),
        }),
        kind @ ("crb_evict" | "crb_conflict" | "crb_invalidate") => {
            data.crb_events.push(CrbRec {
                kind: match kind {
                    "crb_evict" => CrbKind::Evict,
                    "crb_conflict" => CrbKind::Conflict,
                    _ => CrbKind::Invalidate,
                },
                clock: ev.u64_field("clock"),
                region: ev.u64_field("region"),
                entry: ev.u64_field("entry"),
                occupancy: ev.u64_field("occupancy"),
                lost: ev.u64_field("lost"),
            });
        }
        "sim_summary" => {
            let rec = SimSummaryRec {
                cycles: ev.u64_field("cycles"),
                dyn_instrs: ev.u64_field("dyn_instrs"),
                skipped: ev.u64_field("skipped"),
                reuse_hits: ev.u64_field("reuse_hits"),
                reuse_misses: ev.u64_field("reuse_misses"),
                effective_ipc: ev.f64_field("effective_ipc"),
            };
            match *phase {
                Phase::Ccr => data.ccr_summary = rec,
                _ => data.base_summary = rec,
            }
        }
        // run_begin, formation, region_summary (redundant with the
        // report), and any future kinds: ignored, by design — new
        // event kinds must not break old analyzers.
        _ => {}
    }
}

fn extract_report(v: &Value) -> Result<ReportInfo, IngestError> {
    let version = v.u64_field("schema_version");
    if !KNOWN_REPORT_VERSIONS.contains(&version) {
        return Err(IngestError::Schema(format!(
            "report.json: unknown schema_version {version} (known: {KNOWN_REPORT_VERSIONS:?})"
        )));
    }
    let mut info = ReportInfo {
        schema_version: version,
        workload: v.str_field("workload").to_string(),
        input: v.str_field("input").to_string(),
        scale: v.u64_field("scale"),
        speedup: v.f64_field("speedup"),
        eliminated_fraction: v.f64_field("eliminated_fraction"),
        ..ReportInfo::default()
    };
    // v2: the provenance block. v1 read path: absent, fields default.
    if let Some(p) = v.get("provenance") {
        info.config_hash = p
            .get("config_hash")
            .and_then(Value::as_str)
            .map(String::from);
        info.crate_version = p
            .get("crate_version")
            .and_then(Value::as_str)
            .map(String::from);
        // v4; absent on older reports.
        info.git_commit = p
            .get("git_commit")
            .and_then(Value::as_str)
            .map(String::from);
        if let Some(argv) = p.get("argv").and_then(Value::as_arr) {
            info.argv = argv
                .iter()
                .filter_map(|a| a.as_str().map(String::from))
                .collect();
        }
    }
    if let Some(machine) = v.get("machine") {
        info.reuse_miss_penalty = machine.u64_field("reuse_miss_penalty");
    }
    if let Some(crb) = v.get("crb") {
        info.crb_entries = crb.u64_field("entries");
        info.crb_instances = crb.u64_field("instances");
    }
    info.regions = v.u64_field("regions");
    if let Some(base) = v.get("base") {
        info.base_cycles = base.u64_field("cycles");
        info.base_attribution = base.get("attribution").and_then(extract_attribution);
    }
    if let Some(ccr) = v.get("ccr") {
        info.ccr_cycles = ccr.u64_field("cycles");
        info.ccr_attribution = ccr.get("attribution").and_then(extract_attribution);
        if let Some(crb) = ccr.get("crb") {
            info.crb_lookups = crb.u64_field("lookups");
            info.crb_hits = crb.u64_field("hits");
            info.crb_misses = crb.u64_field("misses");
            // v3; zero on older reports.
            info.crb_miss_cold = crb.u64_field("miss_cold");
            info.crb_miss_mismatch = crb.u64_field("miss_mismatch");
            info.crb_miss_capacity = crb.u64_field("miss_capacity");
            info.crb_miss_conflict = crb.u64_field("miss_conflict");
            info.crb_miss_invalidated = crb.u64_field("miss_invalidated");
            info.crb_invalidations = crb.u64_field("invalidations");
            info.crb_entry_conflicts = crb.u64_field("entry_conflicts");
        }
    }
    Ok(info)
}

fn extract_buckets(v: &Value) -> BucketSet {
    BucketSet {
        issue: v.u64_field("issue"),
        fetch: v.u64_field("fetch"),
        memory: v.u64_field("memory"),
        reuse_hit: v.u64_field("reuse_hit"),
        drain: v.u64_field("drain"),
    }
}

fn extract_attribution(v: &Value) -> Option<AttrRec> {
    // Unprofiled v3 reports carry `"attribution":null`.
    let total = v.get("total")?;
    let mut attr = AttrRec {
        total: extract_buckets(total),
        ..AttrRec::default()
    };
    if let Some(funcs) = v.get("functions").and_then(Value::as_arr) {
        attr.functions = funcs
            .iter()
            .map(|f| FuncAttrRec {
                name: f.str_field("name").to_string(),
                cycles: f.u64_field("cycles"),
                buckets: f.get("buckets").map(extract_buckets).unwrap_or_default(),
            })
            .collect();
    }
    if let Some(regions) = v.get("regions").and_then(Value::as_arr) {
        attr.regions = regions
            .iter()
            .map(|r| (r.u64_field("region"), r.u64_field("cycles")))
            .collect();
    }
    Some(attr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_dir(events: &str, report: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ccr-analyze-ingest-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("events.jsonl"), events).unwrap();
        std::fs::write(dir.join("report.json"), report).unwrap();
        dir
    }

    const REPORT_V2: &str = r#"{"schema_version":2,"workload":"w","input":"train","scale":1,
        "provenance":{"argv":["run","w"],"config_hash":"00ff00ff00ff00ff","crate_version":"0.1.0"},
        "machine":{"reuse_miss_penalty":2},"crb":{"entries":128,"instances":8},
        "regions":3,"base":{"cycles":1000},
        "ccr":{"cycles":800,"crb":{"lookups":10,"hits":7,"misses":3,"invalidations":1,"entry_conflicts":0}},
        "speedup":1.25,"eliminated_fraction":0.2}"#;

    #[test]
    fn loads_a_run_and_tracks_phases() {
        let events = concat!(
            r#"{"v":1,"ev":"run_begin","schema":1,"workload":"w"}"#,
            "\n",
            r#"{"v":1,"ev":"pass","pass":"dce","wall_us":5,"changes":2,"instrs_before":10,"instrs_after":8}"#,
            "\n",
            r#"{"v":1,"ev":"formation_reject","reason":"small","count":4}"#,
            "\n",
            r#"{"v":1,"ev":"sim_begin","phase":"base"}"#,
            "\n",
            r#"{"v":1,"ev":"reuse","region":0,"hit":false,"skipped":0,"cycle":50}"#,
            "\n",
            r#"{"v":1,"ev":"ipc_window","index":0,"start_cycle":0,"cycles":100,"instrs":300,"skipped":0,"ipc":3}"#,
            "\n",
            r#"{"v":1,"ev":"sim_summary","cycles":1000,"dyn_instrs":3000,"skipped":0,"reuse_hits":0,"reuse_misses":1,"effective_ipc":3}"#,
            "\n",
            r#"{"v":1,"ev":"sim_begin","phase":"ccr"}"#,
            "\n",
            r#"{"v":1,"ev":"reuse","region":0,"hit":true,"skipped":13,"cycle":60}"#,
            "\n",
            r#"{"v":1,"ev":"crb_evict","clock":9,"region":0,"entry":0,"occupancy":8,"lost":1}"#,
            "\n",
            r#"{"v":1,"ev":"sim_summary","cycles":800,"dyn_instrs":2000,"skipped":13,"reuse_hits":1,"reuse_misses":0,"effective_ipc":2.5}"#,
            "\n",
        );
        let dir = write_dir(events, REPORT_V2);
        let data = load_run(&dir).unwrap();
        assert_eq!(data.events, 11);
        assert_eq!(data.skipped_lines, 0);
        assert_eq!(data.passes.len(), 1);
        assert_eq!(data.formation_rejects, vec![("small".to_string(), 4)]);
        assert_eq!(data.reuse.len(), 2);
        assert_eq!(data.reuse[0].phase, Phase::Base);
        assert_eq!(data.reuse[1].phase, Phase::Ccr);
        assert!(data.reuse[1].hit);
        assert_eq!(data.crb_events.len(), 1);
        assert_eq!(data.crb_events[0].kind, CrbKind::Evict);
        assert_eq!(data.base_summary.cycles, 1000);
        assert_eq!(data.ccr_summary.cycles, 800);
        assert_eq!(data.report.workload, "w");
        assert_eq!(data.report.config_hash.as_deref(), Some("00ff00ff00ff00ff"));
        assert_eq!(data.report.argv, vec!["run", "w"]);
        assert_eq!(data.report.crb_hits, 7);
        assert_eq!(data.report.reuse_miss_penalty, 2);
    }

    #[test]
    fn tolerates_truncated_lines_but_counts_them() {
        let events = concat!(
            r#"{"v":1,"ev":"pass","pass":"dce","wall_us":5,"changes":0,"instrs_before":1,"instrs_after":1}"#,
            "\n",
            "\n",
            r#"{"v":1,"ev":"sim_summ"#, // torn mid-write
        );
        let dir = write_dir(events, REPORT_V2);
        let data = load_run(&dir).unwrap();
        assert_eq!(data.events, 1);
        assert_eq!(data.skipped_lines, 1, "torn line counted, blank ignored");
    }

    #[test]
    fn rejects_unknown_event_schema_version() {
        let dir = write_dir("{\"v\":99,\"ev\":\"pass\"}\n", REPORT_V2);
        let err = load_run(&dir).unwrap_err();
        assert!(matches!(err, IngestError::Schema(_)), "{err}");
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn reads_v1_reports_without_provenance() {
        let report_v1 = r#"{"schema_version":1,"workload":"w","input":"train","scale":1,
            "machine":{"reuse_miss_penalty":2},"crb":{"entries":64,"instances":4},
            "regions":1,"base":{"cycles":10},"ccr":{"cycles":9,"crb":{"lookups":1,"hits":1,"misses":0,"invalidations":0,"entry_conflicts":0}},
            "speedup":1.1,"eliminated_fraction":0.1}"#;
        let dir = write_dir("", report_v1);
        let data = load_run(&dir).unwrap();
        assert_eq!(data.report.schema_version, 1);
        assert_eq!(data.report.config_hash, None);
        assert!(data.report.argv.is_empty());
        assert_eq!(data.report.crb_entries, 64);
    }

    const REPORT_V3: &str = r#"{"schema_version":3,"workload":"w","input":"train","scale":1,
        "provenance":{"argv":["profile","w"],"config_hash":"00ff00ff00ff00ff","crate_version":"0.1.0"},
        "machine":{"reuse_miss_penalty":2},"crb":{"entries":128,"instances":8},
        "regions":3,"base":{"cycles":1000,"attribution":null},
        "ccr":{"cycles":800,
          "crb":{"lookups":10,"hits":7,"misses":3,"miss_cold":1,"miss_mismatch":1,"miss_capacity":0,"miss_conflict":1,"miss_invalidated":0,"invalidations":1,"entry_conflicts":0},
          "attribution":{"total":{"issue":500,"fetch":100,"memory":150,"reuse_hit":30,"drain":20},
            "functions":[{"name":"main","cycles":800,"buckets":{"issue":500,"fetch":100,"memory":150,"reuse_hit":30,"drain":20}}],
            "regions":[{"region":0,"cycles":90}]}},
        "speedup":1.25,"eliminated_fraction":0.2}"#;

    #[test]
    fn reads_v3_reports_with_causes_and_attribution() {
        let events = concat!(
            r#"{"v":1,"ev":"sim_begin","phase":"ccr"}"#,
            "\n",
            r#"{"v":1,"ev":"reuse","region":0,"hit":false,"skipped":0,"cycle":50,"cause":"cold"}"#,
            "\n",
            r#"{"v":1,"ev":"reuse","region":0,"hit":true,"skipped":13,"cycle":60}"#,
            "\n",
            r#"{"v":1,"ev":"cycle_sample","stack":"main;count_ones","cycles":256}"#,
            "\n",
        );
        let dir = write_dir(events, REPORT_V3);
        let data = load_run(&dir).unwrap();
        assert_eq!(data.report.schema_version, 3);
        assert_eq!(data.report.crb_miss_cold, 1);
        assert_eq!(data.report.crb_miss_conflict, 1);
        assert!(data.report.base_attribution.is_none());
        let attr = data.report.ccr_attribution.as_ref().unwrap();
        assert_eq!(attr.total.total(), 800);
        assert_eq!(attr.functions[0].name, "main");
        assert_eq!(attr.functions[0].buckets.memory, 150);
        assert_eq!(attr.regions, vec![(0, 90)]);
        assert_eq!(data.reuse[0].cause.as_deref(), Some("cold"));
        assert_eq!(data.reuse[1].cause, None);
        assert_eq!(data.cycle_samples.len(), 1);
        assert_eq!(data.cycle_samples[0].phase, Phase::Ccr);
        assert_eq!(data.cycle_samples[0].stack, "main;count_ones");
        assert_eq!(data.cycle_samples[0].cycles, 256);
    }

    #[test]
    fn reads_v4_reports_with_git_commit() {
        let report_v4 = r#"{"schema_version":4,"workload":"w","input":"train","scale":1,
            "provenance":{"argv":["run","w"],"config_hash":"00ff00ff00ff00ff","crate_version":"0.1.0","git_commit":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"},
            "machine":{"reuse_miss_penalty":2},"crb":{"entries":128,"instances":8},
            "regions":3,"base":{"cycles":1000},
            "ccr":{"cycles":800,"crb":{"lookups":10,"hits":7,"misses":3,"invalidations":1,"entry_conflicts":0}},
            "speedup":1.25,"eliminated_fraction":0.2}"#;
        let dir = write_dir("", report_v4);
        let data = load_run(&dir).unwrap();
        assert_eq!(data.report.schema_version, 4);
        assert_eq!(
            data.report.git_commit.as_deref(),
            Some("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
        );
        // v3 and older: the field reads as absent.
        let dir = write_dir("", REPORT_V3);
        assert_eq!(load_run(&dir).unwrap().report.git_commit, None);
    }

    #[test]
    fn rejects_unknown_report_schema_version() {
        let dir = write_dir("", r#"{"schema_version":9,"workload":"w"}"#);
        let err = load_run(&dir).unwrap_err();
        assert!(matches!(err, IngestError::Schema(_)), "{err}");
    }

    #[test]
    fn missing_artifacts_are_io_errors() {
        let dir = std::env::temp_dir().join("ccr-analyze-ingest-missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_run(&dir).unwrap_err();
        assert!(matches!(err, IngestError::Io(_, _)), "{err}");
        assert!(err.to_string().contains("report.json"));
    }
}

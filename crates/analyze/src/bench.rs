//! The `BENCH_ccr.json` schema — the repo's committed perf trajectory.
//!
//! `ccr bench` runs the standard workload suite and snapshots one
//! [`BenchReport`]: per-workload baseline/CCR cycle counts, speedup,
//! and hit rate, plus the provenance needed to tell whether two
//! snapshots are comparable. The simulator's cycle counts are
//! deterministic, so CI can gate on *zero* cycle drift against the
//! committed baseline; `wall_ms` is recorded for orientation but never
//! gated (it varies run to run and machine to machine).

use ccr_telemetry::JsonWriter;

use crate::value::{self, Value};

/// Version of the `BENCH_ccr.json` schema this crate reads and writes.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One workload's measured numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchWorkload {
    /// Workload name (from the suite registry).
    pub name: String,
    /// Baseline simulation cycles (deterministic).
    pub base_cycles: u64,
    /// CCR simulation cycles (deterministic).
    pub ccr_cycles: u64,
    /// base_cycles / ccr_cycles.
    pub speedup: f64,
    /// Aggregate CRB hit rate.
    pub hit_rate: f64,
    /// Reuse regions formed by the compiler.
    pub regions: u64,
    /// Host wall time for the workload, ms. Informational only —
    /// never compared by `ccr diff`.
    pub wall_ms: u64,
}

/// A full suite snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Suite name (`ccr` for the standard suite).
    pub suite: String,
    /// Input set the suite ran with.
    pub input: String,
    /// Scale factor.
    pub scale: u64,
    /// Machine/CRB configuration hash (comparability gate).
    pub config_hash: String,
    /// Version of the crate that produced the snapshot.
    pub crate_version: String,
    /// Per-workload results, in suite order.
    pub workloads: Vec<BenchWorkload>,
}

impl BenchReport {
    /// Serializes the snapshot as `BENCH_ccr.json`. Deterministic for
    /// fixed measurements (only `wall_ms` varies between otherwise
    /// identical runs).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("bench_schema_version")
            .u64_val(u64::from(BENCH_SCHEMA_VERSION));
        w.key("suite").str_val(&self.suite);
        w.key("input").str_val(&self.input);
        w.key("scale").u64_val(self.scale);
        w.key("config_hash").str_val(&self.config_hash);
        w.key("crate_version").str_val(&self.crate_version);
        w.key("workloads").arr_begin();
        for wl in &self.workloads {
            w.obj_begin();
            w.key("name").str_val(&wl.name);
            w.key("base_cycles").u64_val(wl.base_cycles);
            w.key("ccr_cycles").u64_val(wl.ccr_cycles);
            w.key("speedup").f64_val(wl.speedup);
            w.key("hit_rate").f64_val(wl.hit_rate);
            w.key("regions").u64_val(wl.regions);
            w.key("wall_ms").u64_val(wl.wall_ms);
            w.obj_end();
        }
        w.arr_end();
        w.obj_end();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Reads a snapshot back from its JSON form.
    ///
    /// # Errors
    ///
    /// Malformed JSON or an unknown `bench_schema_version`.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = value::parse(text.trim()).map_err(|e| e.to_string())?;
        let version = v.u64_field("bench_schema_version");
        if version != u64::from(BENCH_SCHEMA_VERSION) {
            return Err(format!("unknown bench_schema_version {version}"));
        }
        let mut report = BenchReport {
            suite: v.str_field("suite").to_string(),
            input: v.str_field("input").to_string(),
            scale: v.u64_field("scale"),
            config_hash: v.str_field("config_hash").to_string(),
            crate_version: v.str_field("crate_version").to_string(),
            workloads: Vec::new(),
        };
        let workloads = v
            .get("workloads")
            .and_then(Value::as_arr)
            .ok_or("BENCH json missing `workloads` array")?;
        for wl in workloads {
            report.workloads.push(BenchWorkload {
                name: wl.str_field("name").to_string(),
                base_cycles: wl.u64_field("base_cycles"),
                ccr_cycles: wl.u64_field("ccr_cycles"),
                speedup: wl.f64_field("speedup"),
                hit_rate: wl.f64_field("hit_rate"),
                regions: wl.u64_field("regions"),
                wall_ms: wl.u64_field("wall_ms"),
            });
        }
        Ok(report)
    }

    /// Renders the table `ccr bench` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
            "workload", "base_cycles", "ccr_cycles", "speedup", "hit%", "regions", "wall_ms"
        );
        for wl in &self.workloads {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12} {:>7.3}x {:>7.1}% {:>8} {:>8}",
                wl.name,
                wl.base_cycles,
                wl.ccr_cycles,
                wl.speedup,
                wl.hit_rate * 100.0,
                wl.regions,
                wl.wall_ms
            );
        }
        let _ = writeln!(
            out,
            "suite {} ({}, scale {}), config {}, v{}",
            self.suite, self.input, self.scale, self.config_hash, self.crate_version
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            suite: "ccr".into(),
            input: "train".into(),
            scale: 1,
            config_hash: "00ff00ff00ff00ff".into(),
            crate_version: "0.1.0".into(),
            workloads: vec![
                BenchWorkload {
                    name: "008.espresso".into(),
                    base_cycles: 123_456,
                    ccr_cycles: 100_000,
                    speedup: 1.23456,
                    hit_rate: 0.8125,
                    regions: 7,
                    wall_ms: 42,
                },
                BenchWorkload {
                    name: "130.li".into(),
                    base_cycles: 99,
                    ccr_cycles: 99,
                    speedup: 1.0,
                    hit_rate: 0.0,
                    regions: 0,
                    wall_ms: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let text = report.to_json();
        assert!(text.starts_with("{\"bench_schema_version\":1,"));
        assert!(text.ends_with("}\n"));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And re-serialization is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"bench_schema_version\":1", "\"bench_schema_version\":99");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("bench_schema_version 99"), "{err}");
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn render_lists_every_workload() {
        let s = sample().render();
        assert!(s.contains("008.espresso"), "{s}");
        assert!(s.contains("130.li"), "{s}");
        assert!(s.contains("1.235x"), "{s}");
        assert!(s.contains("config 00ff00ff00ff00ff"), "{s}");
    }
}

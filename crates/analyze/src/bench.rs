//! The `BENCH_ccr.json` schema — the repo's committed perf trajectory.
//!
//! `ccr bench` runs the standard workload suite and snapshots one
//! [`BenchReport`]: per-workload baseline/CCR cycle counts, speedup,
//! and hit rate, plus the provenance needed to tell whether two
//! snapshots are comparable. The simulator's cycle counts are
//! deterministic, so CI can gate on *zero* cycle drift against the
//! committed baseline; `wall_ms` is recorded for orientation but never
//! gated (it varies run to run and machine to machine). Schema v2 adds
//! a derived `sim_cycles_per_host_sec` host-throughput figure per
//! workload — gated only with a generous, explicitly requested
//! tolerance — and a `git_commit` provenance field. v1 snapshots stay
//! readable: the new fields read as `0.0` / `"unknown"`.

use ccr_telemetry::JsonWriter;

use crate::value::{self, Value};

/// Version of the `BENCH_ccr.json` schema this crate writes.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Schema versions [`BenchReport::from_json`] understands.
pub const KNOWN_BENCH_VERSIONS: &[u64] = &[1, 2];

/// One workload's measured numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchWorkload {
    /// Workload name (from the suite registry).
    pub name: String,
    /// Baseline simulation cycles (deterministic).
    pub base_cycles: u64,
    /// CCR simulation cycles (deterministic).
    pub ccr_cycles: u64,
    /// base_cycles / ccr_cycles.
    pub speedup: f64,
    /// Aggregate CRB hit rate.
    pub hit_rate: f64,
    /// Reuse regions formed by the compiler.
    pub regions: u64,
    /// Host wall time for the workload, ms. Informational only —
    /// never compared by `ccr diff`.
    pub wall_ms: u64,
    /// Simulated cycles (base + CCR) retired per host second —
    /// the simulator's own throughput on this machine. `0.0` when
    /// wall time was too small to measure, or on v1 snapshots.
    /// Gated only when a host-throughput threshold is explicitly
    /// set (it is host-dependent, so the default gate ignores it).
    pub sim_cycles_per_host_sec: f64,
}

impl BenchWorkload {
    /// Derives the host-throughput figure from the cycle counts and
    /// measured wall time: `(base + ccr) / wall_seconds`, or `0.0`
    /// when the wall time is below the clock's resolution.
    pub fn host_throughput(base_cycles: u64, ccr_cycles: u64, wall_ms: u64) -> f64 {
        if wall_ms == 0 {
            return 0.0;
        }
        (base_cycles + ccr_cycles) as f64 / (wall_ms as f64 / 1000.0)
    }
}

/// Geometric mean of the nonzero per-workload host-throughput figures
/// — the suite-level `sim_cycles_per_host_sec` aggregate the CI bench
/// gate compares across runs. The geomean (rather than a sum or
/// arithmetic mean) weights every workload's *ratio* equally, so one
/// long workload cannot mask a collapse on the short ones; workloads
/// whose wall time was unmeasurable (`0.0`) are excluded rather than
/// zeroing the product. Returns `0.0` when no workload has a figure.
pub fn geomean_host_throughput(workloads: &[BenchWorkload]) -> f64 {
    let figures: Vec<f64> = workloads
        .iter()
        .map(|w| w.sim_cycles_per_host_sec)
        .filter(|&t| t > 0.0)
        .collect();
    if figures.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = figures.iter().map(|t| t.ln()).sum();
    (log_sum / figures.len() as f64).exp()
}

/// A full suite snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Suite name (`ccr` for the standard suite).
    pub suite: String,
    /// Input set the suite ran with.
    pub input: String,
    /// Scale factor.
    pub scale: u64,
    /// Machine/CRB configuration hash (comparability gate).
    pub config_hash: String,
    /// Version of the crate that produced the snapshot.
    pub crate_version: String,
    /// Git commit of the producing checkout (v2; `"unknown"` on v1
    /// snapshots or outside a checkout).
    pub git_commit: String,
    /// Host-timing repetitions behind each workload's `wall_ms`
    /// (`ccr bench --host-reps N` records the median of N). Additive
    /// v2 field: absent reads as `1` (single-shot timing).
    pub host_reps: u64,
    /// Suite-level host throughput: the geometric mean of the
    /// per-workload `sim_cycles_per_host_sec` figures (see
    /// [`geomean_host_throughput`]). The aggregate the CI gate
    /// compares. Additive v2 field: absent reads as `0.0`
    /// (untracked).
    pub agg_sim_cycles_per_host_sec: f64,
    /// Synthetic concurrent clients behind the service-throughput
    /// baseline (0 when the bench run measured none). Additive field
    /// under v2: absent reads as `0`, so v1/v2 snapshots still parse.
    pub serve_clients: u64,
    /// Service throughput baseline: completed request points per host
    /// second with [`BenchReport::serve_clients`] synthetic clients
    /// sweeping overlapping points through one engine (0.0 when
    /// unmeasured). Additive field under v2: absent reads as `0.0`.
    pub serve_points_per_sec: f64,
    /// Per-workload results, in suite order.
    pub workloads: Vec<BenchWorkload>,
}

impl BenchReport {
    /// Serializes the snapshot as `BENCH_ccr.json`. Deterministic for
    /// fixed measurements (only `wall_ms` and the derived host
    /// throughput vary between otherwise identical runs).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("bench_schema_version")
            .u64_val(u64::from(BENCH_SCHEMA_VERSION));
        w.key("suite").str_val(&self.suite);
        w.key("input").str_val(&self.input);
        w.key("scale").u64_val(self.scale);
        w.key("config_hash").str_val(&self.config_hash);
        w.key("crate_version").str_val(&self.crate_version);
        w.key("git_commit").str_val(&self.git_commit);
        w.key("host_reps").u64_val(self.host_reps);
        w.key("agg_sim_cycles_per_host_sec")
            .f64_val(self.agg_sim_cycles_per_host_sec);
        w.key("serve_clients").u64_val(self.serve_clients);
        w.key("serve_points_per_sec")
            .f64_val(self.serve_points_per_sec);
        w.key("workloads").arr_begin();
        for wl in &self.workloads {
            w.obj_begin();
            w.key("name").str_val(&wl.name);
            w.key("base_cycles").u64_val(wl.base_cycles);
            w.key("ccr_cycles").u64_val(wl.ccr_cycles);
            w.key("speedup").f64_val(wl.speedup);
            w.key("hit_rate").f64_val(wl.hit_rate);
            w.key("regions").u64_val(wl.regions);
            w.key("wall_ms").u64_val(wl.wall_ms);
            w.key("sim_cycles_per_host_sec")
                .f64_val(wl.sim_cycles_per_host_sec);
            w.obj_end();
        }
        w.arr_end();
        w.obj_end();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Reads a snapshot back from its JSON form (v1 or v2).
    ///
    /// # Errors
    ///
    /// Malformed JSON or an unknown `bench_schema_version`.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = value::parse(text.trim()).map_err(|e| e.to_string())?;
        let version = v.u64_field("bench_schema_version");
        if !KNOWN_BENCH_VERSIONS.contains(&version) {
            return Err(format!("unknown bench_schema_version {version}"));
        }
        let git_commit = match v.get("git_commit").and_then(Value::as_str) {
            Some(c) => c.to_string(),
            None => "unknown".to_string(), // v1 read path
        };
        let mut report = BenchReport {
            suite: v.str_field("suite").to_string(),
            input: v.str_field("input").to_string(),
            scale: v.u64_field("scale"),
            config_hash: v.str_field("config_hash").to_string(),
            crate_version: v.str_field("crate_version").to_string(),
            git_commit,
            // Additive v2 fields: older snapshots read as single-shot
            // timing with an untracked aggregate.
            host_reps: v.get("host_reps").and_then(Value::as_u64).unwrap_or(1),
            agg_sim_cycles_per_host_sec: v.f64_field("agg_sim_cycles_per_host_sec"),
            serve_clients: v.get("serve_clients").and_then(Value::as_u64).unwrap_or(0),
            serve_points_per_sec: v.f64_field("serve_points_per_sec"),
            workloads: Vec::new(),
        };
        let workloads = v
            .get("workloads")
            .and_then(Value::as_arr)
            .ok_or("BENCH json missing `workloads` array")?;
        for wl in workloads {
            report.workloads.push(BenchWorkload {
                name: wl.str_field("name").to_string(),
                base_cycles: wl.u64_field("base_cycles"),
                ccr_cycles: wl.u64_field("ccr_cycles"),
                speedup: wl.f64_field("speedup"),
                hit_rate: wl.f64_field("hit_rate"),
                regions: wl.u64_field("regions"),
                wall_ms: wl.u64_field("wall_ms"),
                // v1 read path: absent, reads as 0.0 (untracked).
                sim_cycles_per_host_sec: wl.f64_field("sim_cycles_per_host_sec"),
            });
        }
        Ok(report)
    }

    /// Renders the table `ccr bench` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "workload",
            "base_cycles",
            "ccr_cycles",
            "speedup",
            "hit%",
            "regions",
            "wall_ms",
            "Mcyc/s"
        );
        for wl in &self.workloads {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12} {:>7.3}x {:>7.1}% {:>8} {:>8} {:>10.1}",
                wl.name,
                wl.base_cycles,
                wl.ccr_cycles,
                wl.speedup,
                wl.hit_rate * 100.0,
                wl.regions,
                wl.wall_ms,
                wl.sim_cycles_per_host_sec / 1.0e6
            );
        }
        if self.agg_sim_cycles_per_host_sec > 0.0 {
            let _ = writeln!(
                out,
                "host throughput (geomean) {:>10.1} Mcyc/s over {} rep{}",
                self.agg_sim_cycles_per_host_sec / 1.0e6,
                self.host_reps,
                if self.host_reps == 1 { "" } else { "s" }
            );
        }
        if self.serve_points_per_sec > 0.0 {
            let _ = writeln!(
                out,
                "serve throughput {:>19.2} points/s at {} client{}",
                self.serve_points_per_sec,
                self.serve_clients,
                if self.serve_clients == 1 { "" } else { "s" }
            );
        }
        let _ = writeln!(
            out,
            "suite {} ({}, scale {}), config {}, v{}, commit {}",
            self.suite,
            self.input,
            self.scale,
            self.config_hash,
            self.crate_version,
            short_commit(&self.git_commit)
        );
        out
    }
}

/// Abbreviates a 40-hex commit id to 12 characters for display;
/// passes `"unknown"` (or anything shorter) through untouched.
pub fn short_commit(commit: &str) -> &str {
    if commit.len() >= 12 && commit.bytes().all(|b| b.is_ascii_hexdigit()) {
        &commit[..12]
    } else {
        commit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            suite: "ccr".into(),
            input: "train".into(),
            scale: 1,
            config_hash: "00ff00ff00ff00ff".into(),
            crate_version: "0.1.0".into(),
            git_commit: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".into(),
            host_reps: 3,
            agg_sim_cycles_per_host_sec: BenchWorkload::host_throughput(123_456, 100_000, 42),
            serve_clients: 2,
            serve_points_per_sec: 3.5,
            workloads: vec![
                BenchWorkload {
                    name: "008.espresso".into(),
                    base_cycles: 123_456,
                    ccr_cycles: 100_000,
                    speedup: 1.23456,
                    hit_rate: 0.8125,
                    regions: 7,
                    wall_ms: 42,
                    sim_cycles_per_host_sec: BenchWorkload::host_throughput(123_456, 100_000, 42),
                },
                BenchWorkload {
                    name: "130.li".into(),
                    base_cycles: 99,
                    ccr_cycles: 99,
                    speedup: 1.0,
                    hit_rate: 0.0,
                    regions: 0,
                    wall_ms: 0,
                    sim_cycles_per_host_sec: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let text = report.to_json();
        assert!(text.starts_with("{\"bench_schema_version\":2,"));
        assert!(text.ends_with("}\n"));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And re-serialization is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn v1_snapshots_stay_readable() {
        let v1 = r#"{"bench_schema_version":1,"suite":"ccr","input":"train","scale":1,
            "config_hash":"00ff00ff00ff00ff","crate_version":"0.1.0",
            "workloads":[{"name":"008.espresso","base_cycles":100,"ccr_cycles":80,
            "speedup":1.25,"hit_rate":0.5,"regions":2,"wall_ms":10}]}"#;
        let report = BenchReport::from_json(v1).unwrap();
        assert_eq!(report.git_commit, "unknown");
        assert_eq!(report.host_reps, 1);
        assert_eq!(report.agg_sim_cycles_per_host_sec, 0.0);
        assert_eq!(report.serve_clients, 0);
        assert_eq!(report.serve_points_per_sec, 0.0);
        assert_eq!(report.workloads[0].sim_cycles_per_host_sec, 0.0);
        assert_eq!(report.workloads[0].base_cycles, 100);
    }

    #[test]
    fn geomean_skips_unmeasured_workloads() {
        // 130.li in the sample has no host figure; the geomean must
        // cover only the measured workload, not zero out.
        let report = sample();
        let g = geomean_host_throughput(&report.workloads);
        let only = report.workloads[0].sim_cycles_per_host_sec;
        assert!((g - only).abs() < 1e-9, "{g} vs {only}");
        // Two measured workloads: geomean of 1e6 and 4e6 is 2e6.
        let two = vec![
            BenchWorkload {
                sim_cycles_per_host_sec: 1.0e6,
                ..BenchWorkload::default()
            },
            BenchWorkload {
                sim_cycles_per_host_sec: 4.0e6,
                ..BenchWorkload::default()
            },
        ];
        assert!((geomean_host_throughput(&two) - 2.0e6).abs() < 1e-3);
        // No figures at all: untracked, not NaN.
        assert_eq!(geomean_host_throughput(&[]), 0.0);
    }

    #[test]
    fn host_throughput_derivation() {
        // 180 kilocycles over 42 ms hosts at ~5.32 Mc/s.
        let t = BenchWorkload::host_throughput(123_456, 100_000, 42);
        assert!((t - 223_456.0 / 0.042).abs() < 1e-6, "{t}");
        assert_eq!(BenchWorkload::host_throughput(1, 1, 0), 0.0);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"bench_schema_version\":2", "\"bench_schema_version\":99");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("bench_schema_version 99"), "{err}");
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn render_lists_every_workload() {
        let s = sample().render();
        assert!(s.contains("008.espresso"), "{s}");
        assert!(s.contains("130.li"), "{s}");
        assert!(s.contains("1.235x"), "{s}");
        assert!(s.contains("Mcyc/s"), "{s}");
        assert!(s.contains("config 00ff00ff00ff00ff"), "{s}");
        assert!(s.contains("commit aaaaaaaaaaaa"), "{s}");
        assert!(s.contains("host throughput (geomean)"), "{s}");
        assert!(s.contains("over 3 reps"), "{s}");
        assert!(s.contains("serve throughput"), "{s}");
        assert!(s.contains("at 2 clients"), "{s}");
    }

    #[test]
    fn short_commit_abbreviates_only_hex_ids() {
        assert_eq!(
            short_commit("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
            "aaaaaaaaaaaa"
        );
        assert_eq!(short_commit("unknown"), "unknown");
        assert_eq!(short_commit("abc"), "abc");
    }
}

//! Run-to-run comparison with regression thresholds.
//!
//! `ccr diff` compares two runs — freshly analyzed telemetry
//! directories, saved `analysis.json` baselines, or `BENCH_*.json`
//! suite snapshots — and reports per-region and aggregate deltas.
//! Thresholds turn the report into a gate: any breach makes the CLI
//! exit non-zero, which is how CI catches cycle-count or hit-rate
//! regressions against the committed baseline.
//!
//! Comparability is checked first: two runs with different workloads
//! or different machine/CRB configuration hashes measure different
//! things, and diffing them produces numbers that look like
//! regressions but are configuration changes. Such pairs are refused
//! unless explicitly forced.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::analysis::Analysis;
use crate::bench::BenchReport;
use crate::value::{self, Value};

/// Regression thresholds. `None` disables a gate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Thresholds {
    /// Maximum allowed CCR cycle-count growth, percent.
    pub max_cycle_regress_pct: Option<f64>,
    /// Maximum allowed hit-rate drop, percentage points.
    pub max_hit_rate_drop_pp: Option<f64>,
    /// Maximum allowed speedup drop, percent.
    pub max_speedup_drop_pct: Option<f64>,
    /// Maximum allowed host-throughput (`sim_cycles_per_host_sec`)
    /// drop, percent. Off by default — host speed varies machine to
    /// machine, so this gate only makes sense with a generous,
    /// explicitly chosen tolerance (CI uses 95%).
    pub max_host_throughput_drop_pct: Option<f64>,
}

impl Thresholds {
    /// The default CI gate: ≤2% cycle growth, ≤1pp hit-rate drop,
    /// ≤2% speedup drop. Host throughput is not gated by default.
    pub fn default_gate() -> Thresholds {
        Thresholds {
            max_cycle_regress_pct: Some(2.0),
            max_hit_rate_drop_pp: Some(1.0),
            max_speedup_drop_pct: Some(2.0),
            max_host_throughput_drop_pct: None,
        }
    }

    /// Report-only: no gate.
    pub fn none() -> Thresholds {
        Thresholds::default()
    }
}

/// What diff needs from one run, extractable from an [`Analysis`] or
/// a saved `analysis.json`.
#[derive(Clone, Debug, Default)]
pub struct RunSnapshot {
    /// Workload name.
    pub workload: String,
    /// Machine/CRB configuration hash, when known.
    pub config_hash: Option<String>,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// CCR cycles.
    pub ccr_cycles: u64,
    /// Speedup.
    pub speedup: f64,
    /// Aggregate CRB hit rate.
    pub hit_rate: f64,
    /// Aggregate CRB lookups.
    pub lookups: u64,
    /// Per-region `(lookups, hit_rate, skipped)`.
    pub regions: BTreeMap<u64, (u64, f64, u64)>,
}

impl From<&Analysis> for RunSnapshot {
    fn from(a: &Analysis) -> RunSnapshot {
        RunSnapshot {
            workload: a.workload.clone(),
            config_hash: a.config_hash.clone(),
            base_cycles: a.base_cycles,
            ccr_cycles: a.ccr_cycles,
            speedup: a.speedup,
            hit_rate: a.hit_rate,
            lookups: a.lookups,
            regions: a
                .regions
                .iter()
                .map(|p| (p.region, (p.lookups, p.hit_rate, p.skipped)))
                .collect(),
        }
    }
}

impl RunSnapshot {
    /// Reads a snapshot back from a saved `analysis.json`.
    ///
    /// # Errors
    ///
    /// Malformed JSON or an unknown `analysis_schema_version`.
    pub fn from_analysis_json(text: &str) -> Result<RunSnapshot, String> {
        let v = value::parse(text.trim()).map_err(|e| e.to_string())?;
        let version = v.u64_field("analysis_schema_version");
        if version != u64::from(crate::ANALYSIS_SCHEMA_VERSION) {
            return Err(format!("unknown analysis_schema_version {version}"));
        }
        let source = v.get("source").ok_or("analysis.json missing `source`")?;
        let totals = v.get("totals").ok_or("analysis.json missing `totals`")?;
        let mut snap = RunSnapshot {
            workload: source.str_field("workload").to_string(),
            config_hash: source
                .get("config_hash")
                .and_then(Value::as_str)
                .map(String::from),
            base_cycles: totals.u64_field("base_cycles"),
            ccr_cycles: totals.u64_field("ccr_cycles"),
            speedup: totals.f64_field("speedup"),
            hit_rate: totals.f64_field("hit_rate"),
            lookups: totals.u64_field("lookups"),
            regions: BTreeMap::new(),
        };
        if let Some(regions) = v.get("regions").and_then(Value::as_arr) {
            for r in regions {
                snap.regions.insert(
                    r.u64_field("region"),
                    (
                        r.u64_field("lookups"),
                        r.f64_field("hit_rate"),
                        r.u64_field("skipped"),
                    ),
                );
            }
        }
        Ok(snap)
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// What was compared (`total`, `region 3`, or a workload name).
    pub scope: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
    /// Rendered delta (`+1.3%`, `-0.4pp`, …).
    pub delta: String,
    /// Whether this row breached its threshold.
    pub breach: bool,
}

/// The result of a diff.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// All compared metrics, aggregates first.
    pub rows: Vec<DiffRow>,
    /// Non-gating observations (regions appearing/disappearing, …).
    pub notes: Vec<String>,
    /// Human-readable breach descriptions (empty ⇒ gate passed).
    pub breaches: Vec<String>,
}

impl DiffReport {
    /// True when any threshold was breached.
    pub fn breached(&self) -> bool {
        !self.breaches.is_empty()
    }

    /// Renders the report as the text `ccr diff` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<12} {:>14} {:>14} {:>10}",
            "scope", "metric", "base", "new", "delta"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:<12} {:>14} {:>14} {:>10}{}",
                row.scope,
                row.metric,
                trim_float(row.base),
                trim_float(row.new),
                row.delta,
                if row.breach { "  ** BREACH" } else { "" },
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        if self.breached() {
            let _ = writeln!(out, "FAIL: {} threshold breach(es)", self.breaches.len());
            for b in &self.breaches {
                let _ = writeln!(out, "  {b}");
            }
        } else {
            let _ = writeln!(out, "OK: all deltas within thresholds");
        }
        out
    }
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn pct_delta(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - base) / base * 100.0
    }
}

/// Refuses incomparable pairs (different workload or config hash)
/// unless `force`; a missing hash (v1 artifacts) downgrades the check
/// to a note.
fn comparability(
    base_workload: &str,
    new_workload: &str,
    base_hash: Option<&str>,
    new_hash: Option<&str>,
    force: bool,
    report: &mut DiffReport,
) -> Result<(), String> {
    if base_workload != new_workload {
        let msg = format!("workload mismatch: base is `{base_workload}`, new is `{new_workload}`");
        if !force {
            return Err(format!("{msg}; rerun with --force to compare anyway"));
        }
        report.notes.push(format!("{msg} (forced)"));
    }
    match (base_hash, new_hash) {
        (Some(b), Some(n)) if b != n => {
            let msg = format!("config hash mismatch: base {b}, new {n}");
            if !force {
                return Err(format!(
                    "{msg}; the runs simulated different machines. \
                     Rerun with --force to compare anyway"
                ));
            }
            report.notes.push(format!("{msg} (forced)"));
        }
        (None, _) | (_, None) => {
            report.notes.push(
                "config hash unavailable on one side (v1 artifact); comparability not verified"
                    .into(),
            );
        }
        _ => {}
    }
    Ok(())
}

fn gate_row(
    report: &mut DiffReport,
    scope: &str,
    metric: &str,
    base: f64,
    new: f64,
    thresholds: &Thresholds,
) {
    let (delta, breach) = match metric {
        "ccr_cycles" => {
            let pct = pct_delta(base, new);
            let breach = thresholds
                .max_cycle_regress_pct
                .is_some_and(|max| pct > max);
            (format!("{pct:+.2}%"), breach)
        }
        "hit_rate" => {
            let pp = (new - base) * 100.0;
            let breach = thresholds.max_hit_rate_drop_pp.is_some_and(|max| -pp > max);
            (format!("{pp:+.2}pp"), breach)
        }
        "speedup" => {
            let pct = pct_delta(base, new);
            let breach = thresholds
                .max_speedup_drop_pct
                .is_some_and(|max| -pct > max);
            (format!("{pct:+.2}%"), breach)
        }
        "host_mcps_geomean" => {
            let pct = pct_delta(base, new);
            let breach = thresholds
                .max_host_throughput_drop_pct
                .is_some_and(|max| -pct > max);
            (format!("{pct:+.2}%"), breach)
        }
        // Per-workload host rows are context for the aggregate gate,
        // never a breach themselves — host noise on one short
        // workload must not fail CI.
        "host_mcps" => (format!("{:+.2}%", pct_delta(base, new)), false),
        _ => (format!("{:+.2}%", pct_delta(base, new)), false),
    };
    if breach {
        report.breaches.push(format!(
            "{scope}: {metric} {} → {} ({delta})",
            trim_float(base),
            trim_float(new)
        ));
    }
    report.rows.push(DiffRow {
        scope: scope.to_string(),
        metric: metric.to_string(),
        base,
        new,
        delta,
        breach,
    });
}

/// Diffs two run snapshots.
///
/// # Errors
///
/// Returns an error when the runs are incomparable (different
/// workload or config hash) and `force` is false.
pub fn diff_analyses(
    base: &RunSnapshot,
    new: &RunSnapshot,
    thresholds: &Thresholds,
    force: bool,
) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    comparability(
        &base.workload,
        &new.workload,
        base.config_hash.as_deref(),
        new.config_hash.as_deref(),
        force,
        &mut report,
    )?;

    gate_row(
        &mut report,
        "total",
        "base_cycles",
        base.base_cycles as f64,
        new.base_cycles as f64,
        thresholds,
    );
    gate_row(
        &mut report,
        "total",
        "ccr_cycles",
        base.ccr_cycles as f64,
        new.ccr_cycles as f64,
        thresholds,
    );
    gate_row(
        &mut report,
        "total",
        "speedup",
        base.speedup,
        new.speedup,
        thresholds,
    );
    gate_row(
        &mut report,
        "total",
        "hit_rate",
        base.hit_rate,
        new.hit_rate,
        thresholds,
    );
    gate_row(
        &mut report,
        "total",
        "lookups",
        base.lookups as f64,
        new.lookups as f64,
        thresholds,
    );

    // Per-region deltas (report-only: regions gate in aggregate).
    for (region, (b_lookups, b_rate, b_skipped)) in &base.regions {
        match new.regions.get(region) {
            Some((n_lookups, n_rate, n_skipped)) => {
                let scope = format!("region {region}");
                if b_lookups != n_lookups {
                    report.rows.push(DiffRow {
                        scope: scope.clone(),
                        metric: "lookups".into(),
                        base: *b_lookups as f64,
                        new: *n_lookups as f64,
                        delta: format!("{:+.2}%", pct_delta(*b_lookups as f64, *n_lookups as f64)),
                        breach: false,
                    });
                }
                if (b_rate - n_rate).abs() > 1e-12 {
                    report.rows.push(DiffRow {
                        scope: scope.clone(),
                        metric: "hit_rate".into(),
                        base: *b_rate,
                        new: *n_rate,
                        delta: format!("{:+.2}pp", (n_rate - b_rate) * 100.0),
                        breach: false,
                    });
                }
                if b_skipped != n_skipped {
                    report.rows.push(DiffRow {
                        scope,
                        metric: "skipped".into(),
                        base: *b_skipped as f64,
                        new: *n_skipped as f64,
                        delta: format!("{:+.2}%", pct_delta(*b_skipped as f64, *n_skipped as f64)),
                        breach: false,
                    });
                }
            }
            None => report.notes.push(format!("region {region} disappeared")),
        }
    }
    for region in new.regions.keys() {
        if !base.regions.contains_key(region) {
            report.notes.push(format!("region {region} is new"));
        }
    }
    Ok(report)
}

/// Diffs two bench suite snapshots, workload by workload.
///
/// # Errors
///
/// Returns an error for incomparable snapshots (different config
/// hash) when `force` is false.
pub fn diff_bench(
    base: &BenchReport,
    new: &BenchReport,
    thresholds: &Thresholds,
    force: bool,
) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    comparability(
        &base.suite,
        &new.suite,
        Some(&base.config_hash)
            .filter(|h| !h.is_empty())
            .map(|x| x.as_str()),
        Some(&new.config_hash)
            .filter(|h| !h.is_empty())
            .map(|x| x.as_str()),
        force,
        &mut report,
    )?;
    if base.input != new.input || base.scale != new.scale {
        let msg = format!(
            "input/scale mismatch: base {}@{}, new {}@{}",
            base.input, base.scale, new.input, new.scale
        );
        if !force {
            return Err(format!("{msg}; rerun with --force to compare anyway"));
        }
        report.notes.push(format!("{msg} (forced)"));
    }

    let new_by_name: BTreeMap<&str, _> =
        new.workloads.iter().map(|w| (w.name.as_str(), w)).collect();
    for b in &base.workloads {
        let Some(n) = new_by_name.get(b.name.as_str()) else {
            report
                .notes
                .push(format!("workload {} disappeared", b.name));
            continue;
        };
        gate_row(
            &mut report,
            &b.name,
            "ccr_cycles",
            b.ccr_cycles as f64,
            n.ccr_cycles as f64,
            thresholds,
        );
        gate_row(
            &mut report,
            &b.name,
            "speedup",
            b.speedup,
            n.speedup,
            thresholds,
        );
        gate_row(
            &mut report,
            &b.name,
            "hit_rate",
            b.hit_rate,
            n.hit_rate,
            thresholds,
        );
        // Host throughput appears only on request: it is
        // host-dependent (unlike the deterministic cycle counts),
        // and v1 snapshots carry no figure at all. The per-workload
        // rows are informational; the gate fires on the suite
        // geomean below, so single-workload timing noise cannot
        // breach on its own.
        if thresholds.max_host_throughput_drop_pct.is_some() {
            if b.sim_cycles_per_host_sec > 0.0 && n.sim_cycles_per_host_sec > 0.0 {
                gate_row(
                    &mut report,
                    &b.name,
                    "host_mcps",
                    b.sim_cycles_per_host_sec / 1.0e6,
                    n.sim_cycles_per_host_sec / 1.0e6,
                    thresholds,
                );
            } else {
                report.notes.push(format!(
                    "workload {}: host throughput unavailable on one side; not gated",
                    b.name
                ));
            }
        }
    }
    // The gated host figure: suite-level geomean, recomputed from the
    // per-workload figures so pre-aggregate snapshots (which lack the
    // stored `agg_sim_cycles_per_host_sec` field) still compare.
    if thresholds.max_host_throughput_drop_pct.is_some() {
        let base_agg = crate::bench::geomean_host_throughput(&base.workloads);
        let new_agg = crate::bench::geomean_host_throughput(&new.workloads);
        if base_agg > 0.0 && new_agg > 0.0 {
            gate_row(
                &mut report,
                "(geomean)",
                "host_mcps_geomean",
                base_agg / 1.0e6,
                new_agg / 1.0e6,
                thresholds,
            );
        } else {
            report
                .notes
                .push("suite host-throughput geomean unavailable on one side; not gated".into());
        }
    }
    for w in &new.workloads {
        if !base.workloads.iter().any(|b| b.name == w.name) {
            report.notes.push(format!("workload {} is new", w.name));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::BenchWorkload;

    fn snap() -> RunSnapshot {
        RunSnapshot {
            workload: "w".into(),
            config_hash: Some("aa".into()),
            base_cycles: 1000,
            ccr_cycles: 800,
            speedup: 1.25,
            hit_rate: 0.7,
            lookups: 10,
            regions: [(0, (10, 0.7, 130))].into_iter().collect(),
        }
    }

    #[test]
    fn identical_runs_have_zero_deltas_and_pass() {
        let report = diff_analyses(&snap(), &snap(), &Thresholds::default_gate(), false).unwrap();
        assert!(!report.breached());
        assert!(report.rows.iter().all(|r| !r.breach));
        // Per-region rows appear only on change.
        assert!(report.rows.iter().all(|r| r.scope == "total"));
        assert!(report.render().contains("OK: all deltas within thresholds"));
    }

    #[test]
    fn cycle_regression_breaches_the_gate() {
        let mut new = snap();
        new.ccr_cycles = 900; // +12.5%
        let report = diff_analyses(&snap(), &new, &Thresholds::default_gate(), false).unwrap();
        assert!(report.breached());
        assert!(
            report.breaches[0].contains("ccr_cycles"),
            "{:?}",
            report.breaches
        );
        assert!(report.render().contains("** BREACH"));
        // Improvements never breach.
        let mut better = snap();
        better.ccr_cycles = 700;
        better.hit_rate = 0.9;
        let report = diff_analyses(&snap(), &better, &Thresholds::default_gate(), false).unwrap();
        assert!(!report.breached());
    }

    #[test]
    fn hit_rate_and_speedup_gates_fire_on_drops() {
        let mut new = snap();
        new.hit_rate = 0.6; // −10pp
        let report = diff_analyses(&snap(), &new, &Thresholds::default_gate(), false).unwrap();
        assert!(report.breached());
        let mut new = snap();
        new.speedup = 1.1; // −12%
        let report = diff_analyses(&snap(), &new, &Thresholds::default_gate(), false).unwrap();
        assert!(report.breached());
        // Thresholds::none never gates.
        let report = diff_analyses(&snap(), &new, &Thresholds::none(), false).unwrap();
        assert!(!report.breached());
    }

    #[test]
    fn incomparable_runs_are_refused_unless_forced() {
        let mut new = snap();
        new.config_hash = Some("bb".into());
        let err = diff_analyses(&snap(), &new, &Thresholds::none(), false).unwrap_err();
        assert!(err.contains("config hash mismatch"), "{err}");
        let report = diff_analyses(&snap(), &new, &Thresholds::none(), true).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("forced")));

        let mut new = snap();
        new.workload = "other".into();
        assert!(diff_analyses(&snap(), &new, &Thresholds::none(), false).is_err());

        // v1 artifacts (no hash): allowed, with a note.
        let mut new = snap();
        new.config_hash = None;
        let report = diff_analyses(&snap(), &new, &Thresholds::none(), false).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("not verified")));
    }

    #[test]
    fn region_changes_are_reported_not_gated() {
        let mut new = snap();
        new.regions.insert(0, (12, 0.5, 100));
        new.regions.insert(7, (3, 1.0, 9));
        let report = diff_analyses(&snap(), &new, &Thresholds::default_gate(), false).unwrap();
        let region_rows: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.scope == "region 0")
            .collect();
        assert_eq!(region_rows.len(), 3, "lookups, hit_rate, skipped");
        assert!(region_rows.iter().all(|r| !r.breach));
        assert!(report.notes.iter().any(|n| n.contains("region 7 is new")));
        assert!(!report.breached(), "region drift alone must not gate");
    }

    #[test]
    fn snapshot_round_trips_through_analysis_json() {
        let mut a = Analysis {
            workload: "w".into(),
            config_hash: Some("aa".into()),
            base_cycles: 1000,
            ccr_cycles: 800,
            speedup: 1.25,
            hit_rate: 0.7,
            lookups: 10,
            ..Analysis::default()
        };
        a.regions.push(crate::analysis::RegionProfile {
            region: 0,
            lookups: 10,
            hits: 7,
            misses: 3,
            hit_rate: 0.7,
            skipped: 130,
            ..crate::analysis::RegionProfile::default()
        });
        let text = a.to_json();
        let snap = RunSnapshot::from_analysis_json(&text).unwrap();
        assert_eq!(snap.workload, "w");
        assert_eq!(snap.ccr_cycles, 800);
        assert_eq!(snap.regions[&0], (10, 0.7, 130));
        // And diffing the round-trip against the original is clean.
        let report = diff_analyses(
            &RunSnapshot::from(&a),
            &snap,
            &Thresholds::default_gate(),
            false,
        )
        .unwrap();
        assert!(!report.breached());
        assert!(
            report.rows.iter().all(|r| r.delta.starts_with("+0.00")),
            "{report:?}"
        );
    }

    fn bench(cycles: u64) -> BenchReport {
        BenchReport {
            suite: "ccr".into(),
            input: "train".into(),
            scale: 1,
            config_hash: "aa".into(),
            crate_version: "0.1.0".into(),
            git_commit: "unknown".into(),
            host_reps: 1,
            agg_sim_cycles_per_host_sec: 2.0e6,
            serve_clients: 0,
            serve_points_per_sec: 0.0,
            workloads: vec![BenchWorkload {
                name: "130.li".into(),
                base_cycles: 1000,
                ccr_cycles: cycles,
                speedup: 1000.0 / cycles as f64,
                hit_rate: 0.8,
                regions: 4,
                wall_ms: 12,
                sim_cycles_per_host_sec: 2.0e6,
            }],
        }
    }

    #[test]
    fn bench_diff_gates_per_workload_and_ignores_wall_time() {
        let report =
            diff_bench(&bench(800), &bench(800), &Thresholds::default_gate(), false).unwrap();
        assert!(!report.breached());
        assert!(report.rows.iter().all(|r| r.metric != "wall_ms"));
        let report =
            diff_bench(&bench(800), &bench(900), &Thresholds::default_gate(), false).unwrap();
        assert!(report.breached());
        assert!(report.breaches.iter().any(|b| b.contains("130.li")));
    }

    #[test]
    fn host_throughput_gates_only_when_requested() {
        let mut slow = bench(800);
        slow.workloads[0].sim_cycles_per_host_sec = 0.5e6; // −75%
                                                           // Default gate: host throughput is never compared.
        let report = diff_bench(&bench(800), &slow, &Thresholds::default_gate(), false).unwrap();
        assert!(!report.breached());
        assert!(report.rows.iter().all(|r| r.metric != "host_mcps"));
        // Explicit tolerance: a drop past it breaches.
        let gate = Thresholds {
            max_host_throughput_drop_pct: Some(50.0),
            ..Thresholds::none()
        };
        let report = diff_bench(&bench(800), &slow, &gate, false).unwrap();
        assert!(report.breached());
        // The breach is the suite geomean row, not the per-workload
        // row — per-workload host figures are informational only.
        assert!(
            report.breaches[0].contains("host_mcps_geomean"),
            "{:?}",
            report.breaches
        );
        assert!(
            report
                .rows
                .iter()
                .all(|r| r.metric != "host_mcps" || !r.breach),
            "{:?}",
            report.rows
        );
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.scope == "(geomean)" && r.breach),
            "{:?}",
            report.rows
        );
        // Within the tolerance: reported but clean.
        let mut ok = bench(800);
        ok.workloads[0].sim_cycles_per_host_sec = 1.5e6; // −25%
        let report = diff_bench(&bench(800), &ok, &gate, false).unwrap();
        assert!(!report.breached());
        assert!(report.rows.iter().any(|r| r.metric == "host_mcps"));
        // v1 side (no figure): a note, never a gate.
        let mut v1 = bench(800);
        v1.workloads[0].sim_cycles_per_host_sec = 0.0;
        let report = diff_bench(&bench(800), &v1, &gate, false).unwrap();
        assert!(!report.breached());
        assert!(
            report.notes.iter().any(|n| n.contains("not gated")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn bench_diff_checks_comparability() {
        let mut new = bench(800);
        new.config_hash = "bb".into();
        assert!(diff_bench(&bench(800), &new, &Thresholds::none(), false).is_err());
        let mut new = bench(800);
        new.scale = 2;
        assert!(diff_bench(&bench(800), &new, &Thresholds::none(), false).is_err());
        assert!(diff_bench(&bench(800), &new, &Thresholds::none(), true).is_ok());
    }
}

//! The analyzer: turns one run's raw telemetry into the structured
//! views the paper's evaluation reasons about.
//!
//! Output is [`Analysis`], serialized as a deterministic
//! `analysis.json` (identical input artifacts ⇒ byte-identical
//! output; CI relies on this) plus a human-readable summary. The
//! per-region numbers come from the event stream; the run totals come
//! from `report.json`, which the simulator wrote from the same
//! counters — so the two always agree, and the analyzer cross-checks
//! nothing it would then have to arbitrate.

use std::collections::BTreeMap;

use ccr_telemetry::{Histogram, JsonWriter};

use crate::ingest::{AttrRec, BucketSet, CrbKind, Phase, RunData};
use crate::ANALYSIS_SCHEMA_VERSION;

/// The five miss-cause tags, in canonical order.
pub const MISS_CAUSES: [&str; 5] = ["cold", "mismatch", "capacity", "conflict", "invalidated"];

/// Number of equal-count windows in a region's hit-rate-over-time
/// profile (the "does it warm up / fade" view).
pub const HIT_RATE_WINDOWS: usize = 8;
/// Maximum time buckets in the CRB occupancy curve.
pub const OCCUPANCY_BUCKETS: u64 = 32;
/// IPC values are fixed-point scaled by this factor before entering
/// the log₂ histogram that provides the percentile estimates.
pub const IPC_SCALE: f64 = 1000.0;

/// Distribution statistics of one phase's interval-IPC samples.
/// Percentiles are log₂-bucket interpolations from
/// [`ccr_telemetry::Histogram`]; mean/min/max are exact.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IpcStats {
    /// Number of windows sampled.
    pub windows: u64,
    /// Exact mean IPC across windows.
    pub mean: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl IpcStats {
    fn from_samples(samples: impl Iterator<Item = f64>) -> IpcStats {
        let mut h = Histogram::default();
        let (mut n, mut sum) = (0u64, 0.0f64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for ipc in samples {
            h.record((ipc * IPC_SCALE).round() as u64);
            n += 1;
            sum += ipc;
            min = min.min(ipc);
            max = max.max(ipc);
        }
        if n == 0 {
            return IpcStats::default();
        }
        IpcStats {
            windows: n,
            mean: sum / n as f64,
            min,
            max,
            p50: h.p50() / IPC_SCALE,
            p90: h.p90() / IPC_SCALE,
            p99: h.p99() / IPC_SCALE,
        }
    }
}

/// One region's dynamic reuse profile (CCR phase).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionProfile {
    /// Region id.
    pub region: u64,
    /// Reuse lookups.
    pub lookups: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Hits / lookups.
    pub hit_rate: f64,
    /// Instructions eliminated by the region's hits.
    pub skipped: u64,
    /// Pipeline cycle of the first lookup.
    pub first_cycle: u64,
    /// Pipeline cycle of the last lookup.
    pub last_cycle: u64,
    /// Hit rate over [`HIT_RATE_WINDOWS`] equal-count windows of the
    /// region's own lookups, in time order (fewer when the region has
    /// fewer lookups than windows).
    pub hit_rate_windows: Vec<f64>,
    /// Largest post-event instance occupancy observed for the
    /// region's entry (0 when the buffer logged no event for it) — a
    /// lower bound on the region's instance working-set size.
    pub peak_occupancy: u64,
    /// Capacity evictions charged to the region.
    pub evictions: u64,
    /// Direct-mapped conflicts charged to the region.
    pub conflicts: u64,
    /// Memory invalidations charged to the region.
    pub invalidations: u64,
    /// Miss cost in cycles: `misses × reuse_miss_penalty`.
    pub miss_cycles: u64,
    /// Miss-cause mix, indexed like [`MISS_CAUSES`]. All zero for
    /// unprofiled streams (misses carry no `cause` tag there).
    pub miss_causes: [u64; 5],
}

/// One bucket of the CRB occupancy curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OccupancyPoint {
    /// Bucket start, in buffer clock units.
    pub clock: u64,
    /// Structural events in the bucket.
    pub events: u64,
    /// Mean post-event occupancy across those events.
    pub mean_occupancy: f64,
}

/// Per-entry structural-event totals (set pressure).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntryPressure {
    /// Direct-mapped entry index.
    pub entry: u64,
    /// Evictions at the entry.
    pub evictions: u64,
    /// Conflicts at the entry.
    pub conflicts: u64,
    /// Invalidations at the entry.
    pub invalidations: u64,
}

/// The full analysis of one run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Workload name.
    pub workload: String,
    /// Input set.
    pub input: String,
    /// Scale factor.
    pub scale: u64,
    /// Report schema version of the source.
    pub report_schema: u64,
    /// Machine/CRB configuration hash (None for v1 sources).
    pub config_hash: Option<String>,
    /// CLI argv of the producing run (empty for v1 sources).
    pub argv: Vec<String>,
    /// Parsed event count.
    pub events: u64,
    /// Unparseable event lines skipped.
    pub skipped_lines: u64,

    /// Baseline cycles.
    pub base_cycles: u64,
    /// CCR cycles.
    pub ccr_cycles: u64,
    /// Reported speedup.
    pub speedup: f64,
    /// Fraction of baseline instructions eliminated.
    pub eliminated_fraction: f64,
    /// CRB lookups.
    pub lookups: u64,
    /// CRB hits.
    pub hits: u64,
    /// CRB misses.
    pub misses: u64,
    /// Run-wide miss-cause mix, indexed like [`MISS_CAUSES`] (from
    /// the report; all zero for pre-v3 sources).
    pub miss_causes: [u64; 5],
    /// hits / lookups.
    pub hit_rate: f64,
    /// Instructions eliminated by reuse.
    pub skipped_instrs: u64,
    /// Total capacity evictions.
    pub evictions: u64,
    /// Total direct-mapped conflicts.
    pub conflicts: u64,
    /// Total invalidations.
    pub invalidations: u64,
    /// Formed regions (from the report).
    pub regions_formed: u64,
    /// Regions that saw at least one lookup.
    pub regions_active: u64,

    /// Total optimizer wall time (µs).
    pub compile_wall_us: u64,
    /// Optimizer passes (name, wall µs, changes).
    pub passes: Vec<(String, u64, u64)>,
    /// Region-formation rejections (reason, count).
    pub formation_rejects: Vec<(String, u64)>,

    /// Interval-IPC statistics of the baseline simulation.
    pub ipc_base: IpcStats,
    /// Interval-IPC statistics of the CCR simulation.
    pub ipc_ccr: IpcStats,

    /// Per-region profiles, ascending region id.
    pub regions: Vec<RegionProfile>,
    /// CRB occupancy curve over buffer clock.
    pub occupancy_curve: Vec<OccupancyPoint>,
    /// Per-entry pressure, descending (evictions + conflicts), top 16.
    pub entry_pressure: Vec<EntryPressure>,
    /// Region ids ranked by instructions saved, descending, top N.
    pub hottest_by_skipped: Vec<(u64, u64)>,
    /// Region ids ranked by miss cycles wasted, descending, top N.
    pub hottest_by_miss_cycles: Vec<(u64, u64)>,

    /// Baseline-phase cycle attribution (profiled v3 runs only).
    pub attribution_base: Option<AttrRec>,
    /// CCR-phase cycle attribution (profiled v3 runs only).
    pub attribution_ccr: Option<AttrRec>,
}

/// Analyzes one loaded run. `top_n` bounds the hottest-region tables.
pub fn analyze(data: &RunData, top_n: usize) -> Analysis {
    let report = &data.report;
    let mut a = Analysis {
        workload: report.workload.clone(),
        input: report.input.clone(),
        scale: report.scale,
        report_schema: report.schema_version,
        config_hash: report.config_hash.clone(),
        argv: report.argv.clone(),
        events: data.events,
        skipped_lines: data.skipped_lines,
        base_cycles: report.base_cycles,
        ccr_cycles: report.ccr_cycles,
        speedup: report.speedup,
        eliminated_fraction: report.eliminated_fraction,
        lookups: report.crb_lookups,
        hits: report.crb_hits,
        misses: report.crb_misses,
        miss_causes: [
            report.crb_miss_cold,
            report.crb_miss_mismatch,
            report.crb_miss_capacity,
            report.crb_miss_conflict,
            report.crb_miss_invalidated,
        ],
        hit_rate: ratio(report.crb_hits, report.crb_lookups),
        skipped_instrs: data.ccr_summary.skipped,
        invalidations: report.crb_invalidations,
        conflicts: report.crb_entry_conflicts,
        regions_formed: report.regions,
        compile_wall_us: data.passes.iter().map(|p| p.wall_us).sum(),
        passes: data
            .passes
            .iter()
            .map(|p| (p.pass.clone(), p.wall_us, p.changes))
            .collect(),
        formation_rejects: data.formation_rejects.clone(),
        ipc_base: IpcStats::from_samples(
            data.ipc_windows
                .iter()
                .filter(|w| w.phase == Phase::Base)
                .map(|w| w.ipc),
        ),
        ipc_ccr: IpcStats::from_samples(
            data.ipc_windows
                .iter()
                .filter(|w| w.phase == Phase::Ccr)
                .map(|w| w.ipc),
        ),
        ..Analysis::default()
    };

    // Per-region profiles from the CCR-phase reuse timeline.
    let mut by_region: BTreeMap<u64, Vec<(bool, u64, u64)>> = BTreeMap::new();
    let mut causes_by_region: BTreeMap<u64, [u64; 5]> = BTreeMap::new();
    for r in data.reuse.iter().filter(|r| r.phase == Phase::Ccr) {
        by_region
            .entry(r.region)
            .or_default()
            .push((r.hit, r.skipped, r.cycle));
        if let Some(slot) = r
            .cause
            .as_deref()
            .and_then(|c| MISS_CAUSES.iter().position(|m| *m == c))
        {
            causes_by_region.entry(r.region).or_default()[slot] += 1;
        }
    }
    let mut profiles: BTreeMap<u64, RegionProfile> = BTreeMap::new();
    for (&region, lookups) in &by_region {
        let hits = lookups.iter().filter(|(h, _, _)| *h).count() as u64;
        let n = lookups.len() as u64;
        let mut p = RegionProfile {
            region,
            lookups: n,
            hits,
            misses: n - hits,
            hit_rate: ratio(hits, n),
            skipped: lookups.iter().map(|(_, s, _)| s).sum(),
            first_cycle: lookups.first().map(|(_, _, c)| *c).unwrap_or(0),
            last_cycle: lookups.last().map(|(_, _, c)| *c).unwrap_or(0),
            miss_cycles: (n - hits) * report.reuse_miss_penalty,
            miss_causes: causes_by_region.get(&region).copied().unwrap_or_default(),
            ..RegionProfile::default()
        };
        // Equal-count hit-rate windows in time order.
        let chunk = lookups.len().div_ceil(HIT_RATE_WINDOWS);
        p.hit_rate_windows = lookups
            .chunks(chunk.max(1))
            .map(|c| {
                ratio(
                    c.iter().filter(|(h, _, _)| *h).count() as u64,
                    c.len() as u64,
                )
            })
            .collect();
        profiles.insert(region, p);
    }

    // CRB structural events: per-region charges, per-entry pressure,
    // and the run-wide occupancy curve.
    let mut pressure: BTreeMap<u64, EntryPressure> = BTreeMap::new();
    for ev in &data.crb_events {
        let p = profiles.entry(ev.region).or_insert_with(|| RegionProfile {
            region: ev.region,
            ..RegionProfile::default()
        });
        match ev.kind {
            CrbKind::Evict => p.evictions += 1,
            CrbKind::Conflict => p.conflicts += 1,
            CrbKind::Invalidate => p.invalidations += 1,
        }
        p.peak_occupancy = p.peak_occupancy.max(ev.occupancy);
        let e = pressure.entry(ev.entry).or_insert(EntryPressure {
            entry: ev.entry,
            ..EntryPressure::default()
        });
        match ev.kind {
            CrbKind::Evict => e.evictions += 1,
            CrbKind::Conflict => e.conflicts += 1,
            CrbKind::Invalidate => e.invalidations += 1,
        }
    }
    a.evictions = data
        .crb_events
        .iter()
        .filter(|e| e.kind == CrbKind::Evict)
        .count() as u64;

    if let (Some(first), Some(last)) = (data.crb_events.first(), data.crb_events.last()) {
        let span = last.clock.saturating_sub(first.clock).max(1);
        let bucket = (span / OCCUPANCY_BUCKETS).max(1);
        let mut curve: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for ev in &data.crb_events {
            let slot = first.clock + (ev.clock - first.clock) / bucket * bucket;
            let c = curve.entry(slot).or_insert((0, 0));
            c.0 += 1;
            c.1 += ev.occupancy;
        }
        a.occupancy_curve = curve
            .into_iter()
            .map(|(clock, (events, occ))| OccupancyPoint {
                clock,
                events,
                mean_occupancy: occ as f64 / events as f64,
            })
            .collect();
    }

    let mut pressure: Vec<EntryPressure> = pressure.into_values().collect();
    pressure.sort_by(|x, y| {
        (y.evictions + y.conflicts, x.entry).cmp(&(x.evictions + x.conflicts, y.entry))
    });
    pressure.truncate(16);
    a.entry_pressure = pressure;

    a.regions_active = by_region.len() as u64;
    a.regions = profiles.into_values().collect();

    let mut by_skipped: Vec<(u64, u64)> = a
        .regions
        .iter()
        .filter(|p| p.skipped > 0)
        .map(|p| (p.region, p.skipped))
        .collect();
    by_skipped.sort_by(|x, y| (y.1, x.0).cmp(&(x.1, y.0)));
    by_skipped.truncate(top_n);
    a.hottest_by_skipped = by_skipped;

    let mut by_miss: Vec<(u64, u64)> = a
        .regions
        .iter()
        .filter(|p| p.miss_cycles > 0)
        .map(|p| (p.region, p.miss_cycles))
        .collect();
    by_miss.sort_by(|x, y| (y.1, x.0).cmp(&(x.1, y.0)));
    by_miss.truncate(top_n);
    a.hottest_by_miss_cycles = by_miss;

    a.attribution_base = report.base_attribution.clone();
    a.attribution_ccr = report.ccr_attribution.clone();

    a
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn miss_causes_json(w: &mut JsonWriter, causes: &[u64; 5]) {
    for (name, count) in MISS_CAUSES.iter().zip(causes) {
        w.key(&format!("miss_{name}")).u64_val(*count);
    }
}

fn bucket_set_json(w: &mut JsonWriter, b: &BucketSet) {
    w.obj_begin();
    w.key("issue").u64_val(b.issue);
    w.key("fetch").u64_val(b.fetch);
    w.key("memory").u64_val(b.memory);
    w.key("reuse_hit").u64_val(b.reuse_hit);
    w.key("drain").u64_val(b.drain);
    w.obj_end();
}

fn attribution_json(w: &mut JsonWriter, attr: Option<&AttrRec>) {
    let Some(attr) = attr else {
        w.null_val();
        return;
    };
    w.obj_begin();
    w.key("total");
    bucket_set_json(w, &attr.total);
    w.key("cycles").u64_val(attr.total.total());
    w.key("functions").arr_begin();
    for f in &attr.functions {
        w.obj_begin();
        w.key("name").str_val(&f.name);
        w.key("cycles").u64_val(f.cycles);
        w.key("buckets");
        bucket_set_json(w, &f.buckets);
        w.obj_end();
    }
    w.arr_end();
    w.key("regions").arr_begin();
    for (region, cycles) in &attr.regions {
        w.obj_begin();
        w.key("region").u64_val(*region);
        w.key("cycles").u64_val(*cycles);
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
}

fn ipc_stats_json(w: &mut JsonWriter, s: &IpcStats) {
    w.obj_begin();
    w.key("windows").u64_val(s.windows);
    w.key("mean").f64_val(s.mean);
    w.key("min").f64_val(s.min);
    w.key("max").f64_val(s.max);
    w.key("p50").f64_val(s.p50);
    w.key("p90").f64_val(s.p90);
    w.key("p99").f64_val(s.p99);
    w.obj_end();
}

impl Analysis {
    /// Serializes the analysis as deterministic JSON (`analysis.json`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("analysis_schema_version")
            .u64_val(u64::from(ANALYSIS_SCHEMA_VERSION));
        w.key("source").obj_begin();
        w.key("workload").str_val(&self.workload);
        w.key("input").str_val(&self.input);
        w.key("scale").u64_val(self.scale);
        w.key("report_schema").u64_val(self.report_schema);
        match &self.config_hash {
            Some(h) => w.key("config_hash").str_val(h),
            None => w.key("config_hash").null_val(),
        };
        w.key("argv").arr_begin();
        for arg in &self.argv {
            w.str_val(arg);
        }
        w.arr_end();
        w.key("events").u64_val(self.events);
        w.key("skipped_lines").u64_val(self.skipped_lines);
        w.obj_end();

        w.key("totals").obj_begin();
        w.key("base_cycles").u64_val(self.base_cycles);
        w.key("ccr_cycles").u64_val(self.ccr_cycles);
        w.key("speedup").f64_val(self.speedup);
        w.key("eliminated_fraction")
            .f64_val(self.eliminated_fraction);
        w.key("lookups").u64_val(self.lookups);
        w.key("hits").u64_val(self.hits);
        w.key("misses").u64_val(self.misses);
        miss_causes_json(&mut w, &self.miss_causes);
        w.key("hit_rate").f64_val(self.hit_rate);
        w.key("skipped_instrs").u64_val(self.skipped_instrs);
        w.key("evictions").u64_val(self.evictions);
        w.key("conflicts").u64_val(self.conflicts);
        w.key("invalidations").u64_val(self.invalidations);
        w.key("regions_formed").u64_val(self.regions_formed);
        w.key("regions_active").u64_val(self.regions_active);
        w.obj_end();

        w.key("compile").obj_begin();
        w.key("wall_us").u64_val(self.compile_wall_us);
        w.key("passes").arr_begin();
        for (name, wall_us, changes) in &self.passes {
            w.obj_begin();
            w.key("pass").str_val(name);
            w.key("wall_us").u64_val(*wall_us);
            w.key("changes").u64_val(*changes);
            w.obj_end();
        }
        w.arr_end();
        w.key("formation_rejects").obj_begin();
        for (reason, count) in &self.formation_rejects {
            w.key(reason).u64_val(*count);
        }
        w.obj_end();
        w.obj_end();

        w.key("ipc").obj_begin();
        w.key("base");
        ipc_stats_json(&mut w, &self.ipc_base);
        w.key("ccr");
        ipc_stats_json(&mut w, &self.ipc_ccr);
        w.obj_end();

        w.key("regions").arr_begin();
        for p in &self.regions {
            w.obj_begin();
            w.key("region").u64_val(p.region);
            w.key("lookups").u64_val(p.lookups);
            w.key("hits").u64_val(p.hits);
            w.key("misses").u64_val(p.misses);
            w.key("hit_rate").f64_val(p.hit_rate);
            w.key("skipped").u64_val(p.skipped);
            w.key("first_cycle").u64_val(p.first_cycle);
            w.key("last_cycle").u64_val(p.last_cycle);
            w.key("hit_rate_windows").arr_begin();
            for hr in &p.hit_rate_windows {
                w.f64_val(*hr);
            }
            w.arr_end();
            w.key("peak_occupancy").u64_val(p.peak_occupancy);
            w.key("evictions").u64_val(p.evictions);
            w.key("conflicts").u64_val(p.conflicts);
            w.key("invalidations").u64_val(p.invalidations);
            w.key("miss_cycles").u64_val(p.miss_cycles);
            miss_causes_json(&mut w, &p.miss_causes);
            w.obj_end();
        }
        w.arr_end();

        w.key("crb").obj_begin();
        w.key("occupancy_curve").arr_begin();
        for pt in &self.occupancy_curve {
            w.obj_begin();
            w.key("clock").u64_val(pt.clock);
            w.key("events").u64_val(pt.events);
            w.key("mean_occupancy").f64_val(pt.mean_occupancy);
            w.obj_end();
        }
        w.arr_end();
        w.key("entry_pressure").arr_begin();
        for e in &self.entry_pressure {
            w.obj_begin();
            w.key("entry").u64_val(e.entry);
            w.key("evictions").u64_val(e.evictions);
            w.key("conflicts").u64_val(e.conflicts);
            w.key("invalidations").u64_val(e.invalidations);
            w.obj_end();
        }
        w.arr_end();
        w.obj_end();

        w.key("attribution").obj_begin();
        w.key("base");
        attribution_json(&mut w, self.attribution_base.as_ref());
        w.key("ccr");
        attribution_json(&mut w, self.attribution_ccr.as_ref());
        w.obj_end();

        w.key("hottest_by_skipped").arr_begin();
        for (region, skipped) in &self.hottest_by_skipped {
            w.obj_begin();
            w.key("region").u64_val(*region);
            w.key("skipped").u64_val(*skipped);
            w.obj_end();
        }
        w.arr_end();
        w.key("hottest_by_miss_cycles").arr_begin();
        for (region, cycles) in &self.hottest_by_miss_cycles {
            w.obj_begin();
            w.key("region").u64_val(*region);
            w.key("miss_cycles").u64_val(*cycles);
            w.obj_end();
        }
        w.arr_end();
        w.obj_end();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Renders the human-readable run summary `ccr analyze` prints.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run        : {} ({}, scale {}) — report v{}{}",
            self.workload,
            self.input,
            self.scale,
            self.report_schema,
            self.config_hash
                .as_deref()
                .map(|h| format!(", config {h}"))
                .unwrap_or_default(),
        );
        let _ = writeln!(
            out,
            "events     : {} parsed, {} corrupt line(s) skipped",
            self.events, self.skipped_lines
        );
        let _ = writeln!(
            out,
            "cycles     : base {} → ccr {}  (speedup {:.3}x, eliminated {:.1}%)",
            self.base_cycles,
            self.ccr_cycles,
            self.speedup,
            self.eliminated_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "crb        : {} lookups, {} hits ({:.1}%), {} evictions, {} conflicts, {} invalidations",
            self.lookups,
            self.hits,
            self.hit_rate * 100.0,
            self.evictions,
            self.conflicts,
            self.invalidations
        );
        if self.miss_causes.iter().any(|&c| c > 0) {
            let [cold, mismatch, capacity, conflict, invalidated] = self.miss_causes;
            let _ = writeln!(
                out,
                "misses     : {cold} cold, {mismatch} mismatch, {capacity} capacity, {conflict} conflict, {invalidated} invalidated",
            );
        }
        for (name, attr) in [
            ("attr (base)", &self.attribution_base),
            ("attr (ccr)", &self.attribution_ccr),
        ] {
            if let Some(a) = attr {
                let b = &a.total;
                let _ = writeln!(
                    out,
                    "{name:<11}: {} cycles = issue {} + fetch {} + memory {} + reuse_hit {} + drain {}",
                    b.total(),
                    b.issue,
                    b.fetch,
                    b.memory,
                    b.reuse_hit,
                    b.drain
                );
            }
        }
        for (name, s) in [("ipc (base)", &self.ipc_base), ("ipc (ccr)", &self.ipc_ccr)] {
            if s.windows > 0 {
                let _ = writeln!(
                    out,
                    "{name} : mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  ({} windows)",
                    s.mean, s.p50, s.p90, s.p99, s.windows
                );
            }
        }
        let _ = writeln!(
            out,
            "compile    : {} passes, {} µs",
            self.passes.len(),
            self.compile_wall_us
        );
        let _ = writeln!(
            out,
            "regions    : {} formed, {} active",
            self.regions_formed, self.regions_active
        );
        if !self.hottest_by_skipped.is_empty() {
            let _ = writeln!(out, "hottest by instructions saved:");
            for (region, skipped) in &self.hottest_by_skipped {
                let p = self.regions.iter().find(|p| p.region == *region);
                let _ = writeln!(
                    out,
                    "  region {:>4}: {:>10} skipped, hit rate {:>5.1}%",
                    region,
                    skipped,
                    p.map(|p| p.hit_rate * 100.0).unwrap_or(0.0)
                );
            }
        }
        if !self.hottest_by_miss_cycles.is_empty() {
            let _ = writeln!(out, "hottest by miss cycles wasted:");
            for (region, cycles) in &self.hottest_by_miss_cycles {
                let _ = writeln!(out, "  region {region:>4}: {cycles:>10} cycles");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IpcWindowRec, ReportInfo, ReuseRec};

    fn sample_data() -> RunData {
        let mut data = RunData {
            report: ReportInfo {
                schema_version: 2,
                workload: "w".into(),
                input: "train".into(),
                scale: 1,
                config_hash: Some("00ff00ff00ff00ff".into()),
                base_cycles: 1000,
                ccr_cycles: 800,
                speedup: 1.25,
                eliminated_fraction: 0.2,
                reuse_miss_penalty: 2,
                crb_lookups: 12,
                crb_hits: 8,
                crb_misses: 4,
                crb_miss_cold: 1,
                crb_miss_mismatch: 3,
                regions: 3,
                ..ReportInfo::default()
            },
            events: 20,
            ..RunData::default()
        };
        // Region 0: warms up (4 misses then 4 hits); region 1: all hits.
        for i in 0..8u64 {
            data.reuse.push(ReuseRec {
                phase: Phase::Ccr,
                region: 0,
                hit: i >= 4,
                skipped: if i >= 4 { 10 } else { 0 },
                cycle: 100 + i * 50,
                cause: (i < 4).then(|| if i == 0 { "cold" } else { "mismatch" }.to_string()),
            });
        }
        for i in 0..4u64 {
            data.reuse.push(ReuseRec {
                phase: Phase::Ccr,
                region: 1,
                hit: true,
                skipped: 5,
                cycle: 120 + i * 50,
                cause: None,
            });
        }
        // A base-phase lookup must not leak into the CCR profiles.
        data.reuse.push(ReuseRec {
            phase: Phase::Base,
            region: 0,
            hit: false,
            skipped: 0,
            cycle: 10,
            cause: None,
        });
        for i in 0..4u64 {
            data.ipc_windows.push(IpcWindowRec {
                phase: Phase::Ccr,
                index: i,
                start_cycle: i * 100,
                cycles: 100,
                instrs: 100 + i * 20,
                skipped: 0,
                ipc: 1.0 + i as f64 * 0.2,
            });
        }
        data.ccr_summary.skipped = 60;
        data
    }

    #[test]
    fn per_region_profiles_and_rankings() {
        let a = analyze(&sample_data(), 10);
        assert_eq!(a.regions.len(), 2);
        let r0 = &a.regions[0];
        assert_eq!((r0.region, r0.lookups, r0.hits, r0.misses), (0, 8, 4, 4));
        assert_eq!(r0.hit_rate, 0.5);
        assert_eq!(r0.skipped, 40);
        assert_eq!(r0.first_cycle, 100);
        assert_eq!(r0.last_cycle, 450);
        assert_eq!(r0.miss_cycles, 8);
        // 8 lookups over 8 windows: the warm-up is visible.
        assert_eq!(r0.hit_rate_windows.len(), 8);
        assert_eq!(&r0.hit_rate_windows[..4], &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&r0.hit_rate_windows[4..], &[1.0, 1.0, 1.0, 1.0]);
        let r1 = &a.regions[1];
        assert_eq!(r1.hit_rate, 1.0);
        assert_eq!(r1.miss_cycles, 0);
        // Rankings: region 0 saved more; only region 0 wasted misses.
        assert_eq!(a.hottest_by_skipped, vec![(0, 40), (1, 20)]);
        assert_eq!(a.hottest_by_miss_cycles, vec![(0, 8)]);
        assert_eq!(a.regions_active, 2);
        assert_eq!(a.regions_formed, 3);
    }

    #[test]
    fn ipc_stats_use_percentiles() {
        let a = analyze(&sample_data(), 10);
        assert_eq!(a.ipc_ccr.windows, 4);
        assert!((a.ipc_ccr.mean - 1.3).abs() < 1e-9);
        assert_eq!(a.ipc_ccr.min, 1.0);
        assert_eq!(a.ipc_ccr.max, 1.6);
        assert!(a.ipc_ccr.p50 >= a.ipc_ccr.min && a.ipc_ccr.p50 <= a.ipc_ccr.max);
        assert!(a.ipc_ccr.p99 >= a.ipc_ccr.p50);
        assert_eq!(a.ipc_base, IpcStats::default());
    }

    #[test]
    fn json_is_deterministic_and_versioned() {
        let data = sample_data();
        let a = analyze(&data, 10);
        let j1 = analyze(&data, 10).to_json();
        let j2 = a.to_json();
        assert_eq!(j1, j2, "same input must give identical bytes");
        assert!(j1.starts_with("{\"analysis_schema_version\":2,"));
        assert!(j1.ends_with("}\n"));
        let parsed = crate::value::parse(j1.trim_end()).expect("output must be valid JSON");
        assert_eq!(parsed.get("totals").unwrap().u64_field("hits"), 8);
        assert_eq!(parsed.get("regions").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn region_miss_causes_come_from_the_event_stream() {
        let a = analyze(&sample_data(), 10);
        let r0 = &a.regions[0];
        // 4 misses: 1 cold + 3 mismatch (see sample_data), summing to
        // the region's miss count.
        assert_eq!(r0.miss_causes, [1, 3, 0, 0, 0]);
        assert_eq!(r0.miss_causes.iter().sum::<u64>(), r0.misses);
        let r1 = &a.regions[1];
        assert_eq!(r1.miss_causes, [0; 5]);
        let json = a.to_json();
        assert!(
            json.contains("\"miss_cold\":1,\"miss_mismatch\":3"),
            "{json}"
        );
    }

    #[test]
    fn attribution_section_serializes_when_present() {
        use crate::ingest::{AttrRec, BucketSet, FuncAttrRec};
        let mut data = sample_data();
        let a = analyze(&data, 10);
        // Unprofiled source: explicit nulls keep the key present.
        assert!(a
            .to_json()
            .contains("\"attribution\":{\"base\":null,\"ccr\":null}"));
        data.report.ccr_attribution = Some(AttrRec {
            total: BucketSet {
                issue: 500,
                fetch: 100,
                memory: 150,
                reuse_hit: 30,
                drain: 20,
            },
            functions: vec![FuncAttrRec {
                name: "main".into(),
                cycles: 800,
                buckets: BucketSet {
                    issue: 500,
                    fetch: 100,
                    memory: 150,
                    reuse_hit: 30,
                    drain: 20,
                },
            }],
            regions: vec![(0, 90)],
        });
        let a = analyze(&data, 10);
        let json = a.to_json();
        assert!(
            json.contains("\"attribution\":{\"base\":null,\"ccr\":{\"total\":{\"issue\":500,"),
            "{json}"
        );
        assert!(json.contains("\"cycles\":800"), "{json}");
        let parsed = crate::value::parse(json.trim_end()).unwrap();
        let ccr = parsed.get("attribution").unwrap().get("ccr").unwrap();
        assert_eq!(ccr.u64_field("cycles"), 800);
        let s = a.summary();
        assert!(s.contains("attr (ccr) : 800 cycles = issue 500"), "{s}");
        assert!(s.contains("1 cold, 3 mismatch"), "{s}");
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let a = analyze(&sample_data(), 10);
        let s = a.summary();
        assert!(s.contains("speedup 1.250x"), "{s}");
        assert!(s.contains("12 lookups"), "{s}");
        assert!(s.contains("hottest by instructions saved"), "{s}");
        assert!(s.contains("config 00ff00ff00ff00ff"), "{s}");
    }
}

//! Collapsed-stack ("folded") output of a profiled run's
//! `cycle_sample` events — the `profile.folded` artifact.
//!
//! The format is the one every flamegraph tool consumes: one line per
//! distinct stack, `frame;frame;...;frame <count>`, here with cycles
//! as the count. Each line is prefixed with the simulation phase
//! (`base` or `ccr`) as the root frame, so one file holds both runs
//! side by side and the renderer shows them as two top-level towers.
//! Lines are sorted lexicographically, making the output
//! deterministic for identical inputs.

use std::collections::BTreeMap;

use crate::ingest::{Phase, RunData};

/// Folds a run's `cycle_sample` events into collapsed-stack lines.
///
/// Returns the empty string when the run carried no samples (i.e. it
/// was not profiled).
pub fn fold_samples(data: &RunData) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in &data.cycle_samples {
        let phase = match s.phase {
            Phase::Base => "base",
            Phase::Ccr => "ccr",
            Phase::Compile => continue,
        };
        let stack = if s.stack.is_empty() { "?" } else { &s.stack };
        *folded.entry(format!("{phase};{stack}")).or_insert(0) += s.cycles;
    }
    let mut out = String::new();
    for (stack, cycles) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&cycles.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::CycleSampleRec;

    fn sample(phase: Phase, stack: &str, cycles: u64) -> CycleSampleRec {
        CycleSampleRec {
            phase,
            stack: stack.to_string(),
            cycles,
        }
    }

    #[test]
    fn folds_merge_sort_and_prefix_by_phase() {
        let mut data = RunData::default();
        data.cycle_samples.push(sample(Phase::Ccr, "main;f", 10));
        data.cycle_samples.push(sample(Phase::Base, "main", 5));
        data.cycle_samples.push(sample(Phase::Ccr, "main;f", 7));
        data.cycle_samples.push(sample(Phase::Ccr, "main", 3));
        // Compile-phase samples cannot occur, but must not crash.
        data.cycle_samples.push(sample(Phase::Compile, "x", 1));
        let folded = fold_samples(&data);
        assert_eq!(folded, "base;main 5\nccr;main 3\nccr;main;f 17\n");
    }

    #[test]
    fn unprofiled_runs_fold_to_nothing() {
        assert_eq!(fold_samples(&RunData::default()), "");
    }

    #[test]
    fn empty_stacks_get_a_placeholder_frame() {
        let mut data = RunData::default();
        data.cycle_samples.push(sample(Phase::Base, "", 2));
        assert_eq!(fold_samples(&data), "base;? 2\n");
    }
}

//! The `ccr report` engine: cross-run trend tables and
//! first-regression flagging over a loaded [`RunStore`].
//!
//! Records are grouped into series — `(workload, input, scale,
//! config_hash)`, so only like-for-like measurements ever sit in the
//! same trend — and each series is walked in timestamp order. Four
//! deterministic tables come out:
//!
//! * **trend** — cycles / speedup / hit-rate per record,
//! * **miss_mix** — the five-cause miss breakdown per record (all
//!   zero for cause-lossy BENCH imports),
//! * **host** — wall time and `sim_cycles_per_host_sec` trajectory,
//!   plus one `(geomean)` row per bench run: the suite-level host
//!   aggregate `ccr diff` gates, tracked cross-run,
//! * **regressions** — the flagged first-regressions (below).
//!
//! **First-regression flagging**: for every series and every gated
//! metric, adjacent record pairs are compared with the same
//! [`Thresholds`] semantics `ccr diff` gates on (cycle *growth*
//! percent, hit-rate *drop* points, speedup and host-throughput
//! *drop* percent). The earliest breaching pair is flagged — that
//! record is the first-bad run, the regression's introduction point —
//! and later breaches of the same (series, metric) are suppressed, so
//! a regression that persists for twenty runs is one finding, not
//! twenty. Any flag makes `ccr report` exit 2, like `ccr diff`.
//!
//! **Fingerprint-drift flagging**: records can carry the final
//! determinism-fingerprint chain hash of the run that produced them
//! (see `ccr_sim::FingerprintStream`; `""` = unmeasured). A series
//! key includes the config hash, so when two measured records in the
//! same series disagree on the fingerprint, the simulated trajectory
//! changed *without* a configuration change — a behaviour change some
//! commit introduced, whether or not any gated metric moved. The
//! first changed record per series is flagged as metric
//! `fingerprint`, alongside the numeric regressions.
//!
//! Determinism is load-bearing, as everywhere in this crate: a report
//! over a given store file is byte-identical across invocations and
//! hosts (timestamps render through the hand-rolled
//! [`store::format_utc`]), which is what lets a golden test pin the
//! output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ccr_telemetry::Table;

use crate::bench::short_commit;
use crate::diff::Thresholds;
use crate::store::{self, RunRecord, RunStore, SeriesKey};

/// One flagged first-regression.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The series the regression happened in.
    pub series: SeriesKey,
    /// Which metric breached (`ccr_cycles`, `hit_rate`, `speedup`,
    /// `host_mcps`, `host_mcps_geomean` for the suite-level host
    /// aggregate, or `fingerprint` for trajectory drift).
    pub metric: String,
    /// Timestamp of the first-bad record.
    pub timestamp: u64,
    /// Commit of the first-bad record.
    pub commit: String,
    /// Metric value at the predecessor (last-good) record.
    pub prev: f64,
    /// Metric value at the first-bad record.
    pub new: f64,
    /// Rendered delta (`+4.20%`, `-2.10pp`, …).
    pub delta: String,
}

/// Everything `ccr report` renders: the tables (name → [`Table`], in
/// display order) and the flagged regressions behind the last one.
#[derive(Clone, Debug, Default)]
pub struct ReportOutput {
    /// `(name, table)` pairs: `trend`, `miss_mix`, `host`,
    /// `regressions`.
    pub tables: Vec<(&'static str, Table)>,
    /// Flagged first-regressions, in series order then time order.
    pub regressions: Vec<Regression>,
    /// Records the report covered.
    pub records: usize,
    /// Trend series the records grouped into.
    pub series: usize,
    /// Unreadable store lines skipped during loading.
    pub skipped_lines: u64,
}

impl ReportOutput {
    /// True when at least one regression was flagged (`ccr report`
    /// exits 2).
    pub fn flagged(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the full plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run store: {} record(s), {} series",
            self.records, self.series
        );
        if self.skipped_lines > 0 {
            let _ = writeln!(
                out,
                "note: {} unreadable line(s) skipped",
                self.skipped_lines
            );
        }
        for (name, table) in &self.tables {
            let _ = writeln!(out);
            let _ = writeln!(out, "== {name} ==");
            if table.is_empty() {
                let _ = writeln!(out, "(no rows)");
            } else {
                let _ = write!(out, "{table}");
            }
        }
        let _ = writeln!(out);
        if self.flagged() {
            let _ = writeln!(
                out,
                "FAIL: {} first-regression(s) flagged",
                self.regressions.len()
            );
        } else {
            let _ = writeln!(out, "OK: no regressions against thresholds");
        }
        out
    }
}

/// The metrics the regression scan gates, in fixed display order.
const GATED_METRICS: &[&str] = &["ccr_cycles", "hit_rate", "speedup", "host_mcps"];

/// Extracts one gated metric from a record; `None` means the record
/// carries no figure for it (host throughput on imports) and the pair
/// is not compared.
fn metric_value(rec: &RunRecord, metric: &str) -> Option<f64> {
    match metric {
        "ccr_cycles" => Some(rec.ccr_cycles as f64),
        "hit_rate" => Some(rec.hit_rate),
        "speedup" => Some(rec.speedup),
        "host_mcps" => {
            (rec.sim_cycles_per_host_sec > 0.0).then(|| rec.sim_cycles_per_host_sec / 1.0e6)
        }
        _ => None,
    }
}

/// Applies the `ccr diff` gating semantics to one adjacent pair.
/// Returns the rendered delta when the pair breaches.
fn pair_breach(metric: &str, prev: f64, new: f64, thresholds: &Thresholds) -> Option<String> {
    let pct = if prev == 0.0 {
        0.0
    } else {
        (new - prev) / prev * 100.0
    };
    match metric {
        "ccr_cycles" => thresholds
            .max_cycle_regress_pct
            .filter(|max| pct > *max)
            .map(|_| format!("{pct:+.2}%")),
        "hit_rate" => {
            let pp = (new - prev) * 100.0;
            thresholds
                .max_hit_rate_drop_pp
                .filter(|max| -pp > *max)
                .map(|_| format!("{pp:+.2}pp"))
        }
        "speedup" => thresholds
            .max_speedup_drop_pct
            .filter(|max| -pct > *max)
            .map(|_| format!("{pct:+.2}%")),
        "host_mcps" | "host_mcps_geomean" => thresholds
            .max_host_throughput_drop_pct
            .filter(|max| -pct > *max)
            .map(|_| format!("{pct:+.2}%")),
        _ => None,
    }
}

fn series_label(key: &SeriesKey) -> String {
    let (workload, input, scale, config) = key;
    format!("{workload} ({input}@{scale}, {config})")
}

/// Abbreviates a 16-digit fingerprint hash for table cells, the way
/// [`short_commit`] abbreviates commits.
fn short_fp(fp: &str) -> &str {
    if fp.len() > 8 {
        &fp[..8]
    } else {
        fp
    }
}

/// Builds the full report over a loaded store.
pub fn report_over(store: &RunStore, thresholds: &Thresholds) -> ReportOutput {
    let series = store.series();
    let mut out = ReportOutput {
        records: store.records.len(),
        series: series.len(),
        skipped_lines: store.skipped_lines,
        ..ReportOutput::default()
    };

    let mut trend = Table::new([
        "workload",
        "input",
        "scale",
        "config",
        "when",
        "commit",
        "source",
        "base_cycles",
        "ccr_cycles",
        "speedup",
        "hit%",
        "regions",
        "fingerprint",
    ]);
    let mut miss_mix = Table::new([
        "workload",
        "config",
        "when",
        "commit",
        "cold",
        "mismatch",
        "capacity",
        "conflict",
        "invalidated",
        "misses",
    ]);
    let mut host = Table::new([
        "workload", "config", "when", "commit", "wall_ms", "Mcyc/s", "util%", "pts/s",
    ]);
    for (key, records) in &series {
        let (workload, input, scale, config) = key;
        for rec in records {
            let when = store::format_utc(rec.timestamp);
            let commit = short_commit(&rec.commit).to_string();
            trend.row([
                workload.clone(),
                input.clone(),
                scale.to_string(),
                config.clone(),
                when.clone(),
                commit.clone(),
                rec.source.clone(),
                rec.base_cycles.to_string(),
                rec.ccr_cycles.to_string(),
                format!("{:.3}", rec.speedup),
                format!("{:.1}", rec.hit_rate * 100.0),
                rec.regions.to_string(),
                if rec.fingerprint.is_empty() {
                    "-".to_string()
                } else {
                    short_fp(&rec.fingerprint).to_string()
                },
            ]);
            let misses: u64 = rec.miss_causes.iter().sum();
            let mut mix_row = vec![
                workload.clone(),
                config.clone(),
                when.clone(),
                commit.clone(),
            ];
            mix_row.extend(rec.miss_causes.iter().map(u64::to_string));
            mix_row.push(misses.to_string());
            miss_mix.row(mix_row);
            host.row([
                workload.clone(),
                config.clone(),
                when,
                commit,
                rec.wall_ms.to_string(),
                if rec.sim_cycles_per_host_sec > 0.0 {
                    format!("{:.1}", rec.sim_cycles_per_host_sec / 1.0e6)
                } else {
                    "-".to_string()
                },
                if rec.host_util_pct > 0.0 {
                    format!("{:.0}", rec.host_util_pct)
                } else {
                    "-".to_string()
                },
                if rec.points_per_sec > 0.0 {
                    format!("{:.2}", rec.points_per_sec)
                } else {
                    "-".to_string()
                },
            ]);
        }
    }

    // Suite-level host aggregate: one "(geomean)" row per bench run
    // (records sharing input/scale/config/source/timestamp/commit),
    // the geometric mean of that run's measured per-workload host
    // figures — the same aggregate `ccr diff` gates. wall_ms is the
    // run's total wall time across workloads.
    type RunKey = (String, u64, String, String, u64, String);
    type AggPoint = (u64, String, f64);
    let mut runs: BTreeMap<RunKey, (f64, usize, u64)> = BTreeMap::new();
    for rec in &store.records {
        if rec.sim_cycles_per_host_sec <= 0.0 {
            continue;
        }
        let key = (
            rec.input.clone(),
            rec.scale,
            rec.config_hash.clone(),
            rec.source.clone(),
            rec.timestamp,
            rec.commit.clone(),
        );
        let e = runs.entry(key).or_insert((0.0, 0, 0));
        e.0 += rec.sim_cycles_per_host_sec.ln();
        e.1 += 1;
        e.2 += rec.wall_ms;
    }
    let mut agg_series: BTreeMap<(String, u64, String), Vec<AggPoint>> = BTreeMap::new();
    for ((input, scale, config, _source, ts, commit), (ln_sum, n, wall)) in &runs {
        let geomean = (ln_sum / *n as f64).exp();
        host.row([
            "(geomean)".to_string(),
            config.clone(),
            store::format_utc(*ts),
            short_commit(commit).to_string(),
            wall.to_string(),
            format!("{:.1}", geomean / 1.0e6),
            "-".to_string(),
        ]);
        agg_series
            .entry((input.clone(), *scale, config.clone()))
            .or_default()
            .push((*ts, commit.clone(), geomean));
    }

    // First-regression scan: earliest breaching adjacent pair per
    // (series, metric); later breaches of the same pair suppressed.
    for (key, records) in &series {
        for metric in GATED_METRICS {
            for pair in records.windows(2) {
                let (Some(prev), Some(new)) =
                    (metric_value(pair[0], metric), metric_value(pair[1], metric))
                else {
                    continue;
                };
                if let Some(delta) = pair_breach(metric, prev, new, thresholds) {
                    out.regressions.push(Regression {
                        series: key.clone(),
                        metric: metric.to_string(),
                        timestamp: pair[1].timestamp,
                        commit: pair[1].commit.clone(),
                        prev,
                        new,
                        delta,
                    });
                    break; // first-bad only, for this (series, metric)
                }
            }
        }
    }

    // Aggregate host-throughput scan: the same first-bad walk over
    // the per-run "(geomean)" series, so a suite-wide host slowdown
    // is flagged cross-run even when no single workload's drop is
    // eye-catching on its own.
    for ((input, scale, config), mut points) in agg_series {
        points.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for pair in points.windows(2) {
            let (prev, new) = (pair[0].2 / 1.0e6, pair[1].2 / 1.0e6);
            if let Some(delta) = pair_breach("host_mcps_geomean", prev, new, thresholds) {
                out.regressions.push(Regression {
                    series: (
                        "(geomean)".to_string(),
                        input.clone(),
                        scale,
                        config.clone(),
                    ),
                    metric: "host_mcps_geomean".to_string(),
                    timestamp: pair[1].0,
                    commit: pair[1].1.clone(),
                    prev,
                    new,
                    delta,
                });
                break; // first-bad only
            }
        }
    }

    // Fingerprint-drift scan: a series key includes the config hash,
    // so consecutive *measured* records (unmeasured `""` ones are
    // skipped, not chain-breaking) disagreeing on the fingerprint
    // means the trajectory changed under an unchanged configuration.
    // First changed record per series only, like the metric scan.
    for (key, records) in &series {
        let measured: Vec<&&RunRecord> = records
            .iter()
            .filter(|r| !r.fingerprint.is_empty())
            .collect();
        if let Some(pair) = measured
            .windows(2)
            .find(|p| p[0].fingerprint != p[1].fingerprint)
        {
            out.regressions.push(Regression {
                series: key.clone(),
                metric: "fingerprint".to_string(),
                timestamp: pair[1].timestamp,
                commit: pair[1].commit.clone(),
                prev: 0.0,
                new: 0.0,
                delta: format!(
                    "{}\u{2192}{}",
                    short_fp(&pair[0].fingerprint),
                    short_fp(&pair[1].fingerprint)
                ),
            });
        }
    }

    let mut regressions = Table::new([
        "series",
        "metric",
        "first-bad when",
        "first-bad commit",
        "prev",
        "new",
        "delta",
    ]);
    for r in &out.regressions {
        // Fingerprint drift has no numeric before/after; the delta
        // cell carries the hash change instead.
        let (prev, new) = if r.metric == "fingerprint" {
            ("-".to_string(), "-".to_string())
        } else {
            (format!("{:.4}", r.prev), format!("{:.4}", r.new))
        };
        regressions.row([
            series_label(&r.series),
            r.metric.clone(),
            store::format_utc(r.timestamp),
            short_commit(&r.commit).to_string(),
            prev,
            new,
            r.delta.clone(),
        ]);
    }

    out.tables = vec![
        ("trend", trend),
        ("miss_mix", miss_mix),
        ("host", host),
        ("regressions", regressions),
    ];
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, ccr_cycles: u64, hit_rate: f64) -> RunRecord {
        RunRecord {
            timestamp: ts,
            commit: format!("{ts:040}"),
            config_hash: "00ff00ff00ff00ff".into(),
            source: "bench".into(),
            workload: "w".into(),
            input: "train".into(),
            scale: 1,
            base_cycles: 1000,
            ccr_cycles,
            speedup: 1000.0 / ccr_cycles as f64,
            hit_rate,
            miss_causes: [1, 1, 0, 0, 0],
            regions: 4,
            wall_ms: 10,
            sim_cycles_per_host_sec: 2.0e6,
            host_util_pct: 0.0,
            fingerprint: String::new(),
            points_per_sec: 0.0,
        }
    }

    fn store_of(records: Vec<RunRecord>) -> RunStore {
        RunStore {
            records,
            skipped_lines: 0,
        }
    }

    #[test]
    fn clean_history_reports_ok() {
        let store = store_of(vec![rec(100, 800, 0.8), rec(200, 800, 0.8)]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert!(!out.flagged());
        assert_eq!(out.records, 2);
        assert_eq!(out.series, 1);
        let text = out.render();
        assert!(text.contains("OK: no regressions"), "{text}");
        assert!(text.contains("== trend =="), "{text}");
        // All four tables render even when regressions is empty.
        assert!(text.contains("== regressions =="), "{text}");
        assert!(text.contains("(no rows)"), "{text}");
    }

    #[test]
    fn first_bad_record_is_flagged_not_later_ones() {
        // Regression lands at ts=300 (+10% cycles) and persists at 400.
        let store = store_of(vec![
            rec(100, 800, 0.8),
            rec(200, 800, 0.8),
            rec(300, 880, 0.8),
            rec(400, 882, 0.8),
        ]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert!(out.flagged());
        let cycles: Vec<_> = out
            .regressions
            .iter()
            .filter(|r| r.metric == "ccr_cycles")
            .collect();
        assert_eq!(cycles.len(), 1, "one finding per (series, metric)");
        assert_eq!(cycles[0].timestamp, 300, "the FIRST bad record");
        // speedup drops with the cycle growth, so it flags too — also
        // at the introduction point.
        assert!(
            out.regressions.iter().all(|r| r.timestamp == 300),
            "{:?}",
            out.regressions
        );
        assert!(out.render().contains("FAIL: "), "{}", out.render());
    }

    #[test]
    fn unordered_appends_are_scanned_in_time_order() {
        // Appended out of order; in time order the metric is flat.
        let store = store_of(vec![
            rec(300, 802, 0.8),
            rec(100, 800, 0.8),
            rec(200, 801, 0.8),
        ]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert!(!out.flagged(), "{:?}", out.regressions);
    }

    #[test]
    fn series_isolate_configs_from_each_other() {
        // A config change makes a new series; the big cycle jump
        // between configs must not flag.
        let mut other = rec(200, 1600, 0.8);
        other.config_hash = "1111111111111111".into();
        let store = store_of(vec![rec(100, 800, 0.8), other]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert_eq!(out.series, 2);
        assert!(!out.flagged());
    }

    #[test]
    fn hit_rate_and_host_gates_fire() {
        let store = store_of(vec![rec(100, 800, 0.8), rec(200, 800, 0.75)]); // −5pp
        let out = report_over(&store, &Thresholds::default_gate());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "hit_rate");
        assert!(out.regressions[0].delta.ends_with("pp"));

        let mut slow = rec(200, 800, 0.8);
        slow.sim_cycles_per_host_sec = 0.4e6; // −80%
        let store = store_of(vec![rec(100, 800, 0.8), slow]);
        // Default gate ignores host throughput...
        assert!(!report_over(&store, &Thresholds::default_gate()).flagged());
        // ...an explicit tolerance gates it.
        let gate = Thresholds {
            max_host_throughput_drop_pct: Some(50.0),
            ..Thresholds::none()
        };
        let out = report_over(&store, &gate);
        // Both the per-workload figure and the (one-workload) suite
        // geomean flag the drop.
        assert_eq!(out.regressions.len(), 2, "{:?}", out.regressions);
        assert!(out.regressions.iter().any(|r| r.metric == "host_mcps"));
        assert!(out
            .regressions
            .iter()
            .any(|r| r.metric == "host_mcps_geomean"));
    }

    #[test]
    fn geomean_series_rows_and_aggregate_regressions() {
        // Two workloads per run, two runs; the second run's host
        // throughput halves across the whole suite (−50% geomean)
        // while each workload alone also drops — only the aggregate
        // series must carry the `host_mcps_geomean` finding.
        let wl = |ts, name: &str, mcps: f64| {
            let mut r = rec(ts, 800, 0.8);
            r.workload = name.into();
            r.sim_cycles_per_host_sec = mcps;
            r
        };
        let store = store_of(vec![
            wl(100, "a", 2.0e6),
            wl(100, "b", 8.0e6),
            wl(200, "a", 1.0e6),
            wl(200, "b", 4.0e6),
        ]);
        let gate = Thresholds {
            max_host_throughput_drop_pct: Some(30.0),
            ..Thresholds::none()
        };
        let out = report_over(&store, &gate);
        // Host table: one "(geomean)" row per run, geomean(2,8)=4.
        let host = &out.tables.iter().find(|(n, _)| *n == "host").unwrap().1;
        let csv = host.to_csv();
        assert!(csv.contains("(geomean)"), "{csv}");
        assert!(csv.contains("4.0"), "geomean(2,8) Mcyc/s: {csv}");
        assert!(csv.contains("2.0"), "geomean(1,4) Mcyc/s: {csv}");
        // The aggregate regression is flagged at the second run.
        let agg: Vec<_> = out
            .regressions
            .iter()
            .filter(|r| r.metric == "host_mcps_geomean")
            .collect();
        assert_eq!(agg.len(), 1, "{:?}", out.regressions);
        assert_eq!(agg[0].timestamp, 200);
        assert_eq!(agg[0].series.0, "(geomean)");
        assert!(out.flagged());
    }

    #[test]
    fn missing_host_figures_never_compare() {
        let gate = Thresholds {
            max_host_throughput_drop_pct: Some(1.0),
            ..Thresholds::none()
        };
        let mut import = rec(200, 800, 0.8);
        import.sim_cycles_per_host_sec = 0.0; // an import, no figure
        let store = store_of(vec![rec(100, 800, 0.8), import, rec(300, 800, 0.8)]);
        // 2.0 → (absent) → 2.0: no pair compares, nothing flags.
        assert!(!report_over(&store, &gate).flagged());
    }

    #[test]
    fn fingerprint_drift_flags_the_first_changed_record() {
        let fp = |ts, hash: &str| {
            let mut r = rec(ts, 800, 0.8);
            r.fingerprint = hash.into();
            r
        };
        // Same config throughout; trajectory changes at ts=300 and the
        // change persists — one finding, at the introduction point.
        let store = store_of(vec![
            fp(100, "aaaaaaaaaaaaaaaa"),
            fp(200, "aaaaaaaaaaaaaaaa"),
            fp(300, "bbbbbbbbbbbbbbbb"),
            fp(400, "bbbbbbbbbbbbbbbb"),
        ]);
        let out = report_over(&store, &Thresholds::default_gate());
        let drifts: Vec<_> = out
            .regressions
            .iter()
            .filter(|r| r.metric == "fingerprint")
            .collect();
        assert_eq!(drifts.len(), 1, "{:?}", out.regressions);
        assert_eq!(drifts[0].timestamp, 300, "the FIRST changed record");
        assert_eq!(drifts[0].delta, "aaaaaaaa\u{2192}bbbbbbbb");
        assert!(out.flagged(), "drift gates like a regression");
        let text = out.render();
        assert!(text.contains("aaaaaaaa\u{2192}bbbbbbbb"), "{text}");
    }

    #[test]
    fn unmeasured_fingerprints_never_compare_or_break_the_chain() {
        let fp = |ts, hash: &str| {
            let mut r = rec(ts, 800, 0.8);
            r.fingerprint = hash.into();
            r
        };
        // "" gaps (imports, old records) are skipped, not treated as
        // a change — a flat measured chain around them stays quiet...
        let store = store_of(vec![
            fp(100, "aaaaaaaaaaaaaaaa"),
            rec(200, 800, 0.8),
            fp(300, "aaaaaaaaaaaaaaaa"),
        ]);
        assert!(!report_over(&store, &Thresholds::default_gate()).flagged());
        // ...and a change across a gap still flags on the record that
        // introduced it.
        let store = store_of(vec![
            fp(100, "aaaaaaaaaaaaaaaa"),
            rec(200, 800, 0.8),
            fp(300, "cccccccccccccccc"),
        ]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].metric, "fingerprint");
        assert_eq!(out.regressions[0].timestamp, 300);
    }

    #[test]
    fn fingerprint_change_with_config_change_is_a_new_series_not_drift() {
        let mut a = rec(100, 800, 0.8);
        a.fingerprint = "aaaaaaaaaaaaaaaa".into();
        let mut b = rec(200, 800, 0.8);
        b.fingerprint = "bbbbbbbbbbbbbbbb".into();
        b.config_hash = "1111111111111111".into();
        let store = store_of(vec![a, b]);
        let out = report_over(&store, &Thresholds::default_gate());
        assert_eq!(out.series, 2);
        assert!(!out.flagged(), "{:?}", out.regressions);
    }

    #[test]
    fn report_is_deterministic() {
        let store = store_of(vec![rec(100, 800, 0.8), rec(200, 900, 0.7)]);
        let a = report_over(&store, &Thresholds::default_gate());
        let b = report_over(&store, &Thresholds::default_gate());
        assert_eq!(a.render(), b.render());
        for ((na, ta), (nb, tb)) in a.tables.iter().zip(&b.tables) {
            assert_eq!(na, nb);
            assert_eq!(ta.to_csv(), tb.to_csv());
        }
    }
}

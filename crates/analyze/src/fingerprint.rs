//! Determinism-fingerprint digest files and divergence bisection.
//!
//! `ccr fingerprint` runs a workload under the simulator's streaming
//! state fingerprint and writes one **digest file** per run: the
//! per-window chain values plus the final chain hash, as versioned
//! line-tolerant JSONL (the run-store conventions). This module is the
//! consumer side — parse, serialize, and compare digest files — and,
//! like the rest of `ccr-analyze`, operates on plain data with no
//! simulator dependency.
//!
//! Because the underlying hash *chains* (window `i` folds on top of
//! every window before it), two digests agree on a window only if they
//! agreed on the whole prefix; [`compare_digests`] therefore bisects a
//! divergence to the exact first bad window in one linear scan.
//!
//! # File format
//!
//! ```text
//! {"fp_v":1,"kind":"meta","workload":"lex","config_hash":"…","window":65536}
//! {"kind":"window","index":0,"cycle":65536,"hash":"9c3dd8b929e12a05"}
//! …
//! {"kind":"final","cycles":180034,"windows":2,"hash":"1af0c582b7d9e644"}
//! ```
//!
//! The `final` record doubles as the end trailer: a digest without one
//! is truncated. Hashes are zero-padded 16-digit lowercase hex
//! ([`format_hash`]); unknown `kind` lines are skipped (additive
//! extensions), an unknown `fp_v` is a hard one-line error.

use ccr_telemetry::value::{self, Value};
use ccr_telemetry::JsonWriter;

/// Digest file format version.
pub const FP_VERSION: u64 = 1;

/// One sealed fingerprint window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigestWindow {
    /// Zero-based window index.
    pub index: u64,
    /// Cycle boundary the window was sealed at.
    pub cycle: u64,
    /// Chain hash after folding the state at this boundary.
    pub hash: u64,
}

/// A parsed fingerprint digest file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestFile {
    /// Workload the digest was taken from.
    pub workload: String,
    /// Config hash of the producing run (`""` = unknown).
    pub config_hash: String,
    /// Window size in cycles.
    pub window: u64,
    /// Sealed windows, index order.
    pub windows: Vec<DigestWindow>,
    /// Total simulated cycles of the run.
    pub cycles: u64,
    /// Final chain hash (the run's trajectory fingerprint).
    pub final_hash: u64,
}

/// How two digests relate, from [`compare_digests`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FingerprintDiff {
    /// Same chain, same final hash: the trajectories are identical.
    Identical,
    /// The chains diverge; this is the **first** divergent window.
    Window {
        /// Index of the first divergent window.
        index: u64,
        /// Cycle boundary of that window.
        cycle: u64,
        /// Chain hash in the first digest.
        a_hash: u64,
        /// Chain hash in the second digest.
        b_hash: u64,
    },
    /// One chain is a strict prefix of the other (the runs took
    /// different cycle counts without a window-level divergence —
    /// e.g. different workload scales).
    LengthMismatch {
        /// Window count of the first digest.
        a_windows: u64,
        /// Window count of the second digest.
        b_windows: u64,
    },
    /// Every window matches but the final fold differs: the divergence
    /// happened after the last sealed boundary.
    FinalOnly {
        /// Final hash of the first digest.
        a_hash: u64,
        /// Final hash of the second digest.
        b_hash: u64,
    },
}

/// Formats a chain hash the way digest files and the run store carry
/// it: zero-padded 16-digit lowercase hex.
pub fn format_hash(h: u64) -> String {
    format!("{h:016x}")
}

fn parse_hash(v: &Value, ctx: &str) -> Result<u64, String> {
    let s = v
        .get("hash")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing `hash`"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("{ctx}: `hash` is not a hex hash: `{s}`"))
}

fn req_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

/// Serializes a digest file (inverse of [`parse_digest_file`]).
pub fn write_digest_file(d: &DigestFile) -> String {
    let mut out = String::new();
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("fp_v").u64_val(FP_VERSION);
    w.key("kind").str_val("meta");
    w.key("workload").str_val(&d.workload);
    w.key("config_hash").str_val(&d.config_hash);
    w.key("window").u64_val(d.window);
    w.obj_end();
    out.push_str(&w.finish());
    out.push('\n');
    for win in &d.windows {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("kind").str_val("window");
        w.key("index").u64_val(win.index);
        w.key("cycle").u64_val(win.cycle);
        w.key("hash").str_val(&format_hash(win.hash));
        w.obj_end();
        out.push_str(&w.finish());
        out.push('\n');
    }
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("final");
    w.key("cycles").u64_val(d.cycles);
    w.key("windows").u64_val(d.windows.len() as u64);
    w.key("hash").str_val(&format_hash(d.final_hash));
    w.obj_end();
    out.push_str(&w.finish());
    out.push('\n');
    out
}

/// Parses a digest file. `path` labels error messages only.
///
/// # Errors
///
/// Returns a one-line `{path}[:{line}]: ...` description for an
/// unknown `fp_v`, a malformed line, an out-of-order window, a window
/// count that disagrees with the `final` record, or a truncated file
/// (no `final` record).
pub fn parse_digest_file(path: &str, text: &str) -> Result<DigestFile, String> {
    let mut meta: Option<(String, String, u64)> = None;
    let mut windows: Vec<DigestWindow> = Vec::new();
    let mut fin: Option<(u64, u64)> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let ctx = format!("{path}:{lineno}");
        if fin.is_some() {
            return Err(format!("{ctx}: data after the final record"));
        }
        let v = value::parse(line).map_err(|e| format!("{ctx}: {}", e.message))?;
        if meta.is_none() {
            let ver = v
                .get("fp_v")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ctx}: missing fp_v header"))?;
            if ver != FP_VERSION {
                return Err(format!("{ctx}: unknown fp_v {ver} (known: [{FP_VERSION}])"));
            }
            let window = req_u64(&v, "window", &ctx)?;
            if window == 0 {
                return Err(format!("{ctx}: window must be nonzero"));
            }
            meta = Some((
                v.str_field("workload").to_string(),
                v.str_field("config_hash").to_string(),
                window,
            ));
            continue;
        }
        match v.str_field("kind") {
            "window" => {
                let index = req_u64(&v, "index", &ctx)?;
                if index != windows.len() as u64 {
                    return Err(format!(
                        "{ctx}: window index {index} out of order (expected {})",
                        windows.len()
                    ));
                }
                windows.push(DigestWindow {
                    index,
                    cycle: req_u64(&v, "cycle", &ctx)?,
                    hash: parse_hash(&v, &ctx)?,
                });
            }
            "final" => {
                let count = req_u64(&v, "windows", &ctx)?;
                if count != windows.len() as u64 {
                    return Err(format!(
                        "{ctx}: final record says {count} windows, found {}",
                        windows.len()
                    ));
                }
                fin = Some((req_u64(&v, "cycles", &ctx)?, parse_hash(&v, &ctx)?));
            }
            // Unknown kinds are additive extensions: skip.
            _ => {}
        }
    }
    let (workload, config_hash, window) =
        meta.ok_or_else(|| format!("{path}: empty digest file"))?;
    let (cycles, final_hash) =
        fin.ok_or_else(|| format!("{path}: truncated digest (missing final record)"))?;
    Ok(DigestFile {
        workload,
        config_hash,
        window,
        windows,
        cycles,
        final_hash,
    })
}

/// Compares two digests, bisecting any divergence to the first bad
/// window (chained hashes make the first mismatch the exact first
/// divergent window).
///
/// # Errors
///
/// Returns a one-line description when the digests were taken with
/// different window sizes — their boundaries don't line up, so no
/// window-level comparison is meaningful.
pub fn compare_digests(a: &DigestFile, b: &DigestFile) -> Result<FingerprintDiff, String> {
    if a.window != b.window {
        return Err(format!(
            "fingerprint window mismatch: {} vs {} cycles — regenerate with a common --window",
            a.window, b.window
        ));
    }
    for (wa, wb) in a.windows.iter().zip(&b.windows) {
        if wa.hash != wb.hash {
            return Ok(FingerprintDiff::Window {
                index: wa.index,
                cycle: wa.cycle,
                a_hash: wa.hash,
                b_hash: wb.hash,
            });
        }
    }
    if a.windows.len() != b.windows.len() {
        return Ok(FingerprintDiff::LengthMismatch {
            a_windows: a.windows.len() as u64,
            b_windows: b.windows.len() as u64,
        });
    }
    if a.final_hash != b.final_hash {
        return Ok(FingerprintDiff::FinalOnly {
            a_hash: a.final_hash,
            b_hash: b.final_hash,
        });
    }
    Ok(FingerprintDiff::Identical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DigestFile {
        DigestFile {
            workload: "lex".to_string(),
            config_hash: "abc".to_string(),
            window: 65536,
            windows: vec![
                DigestWindow {
                    index: 0,
                    cycle: 65536,
                    hash: 0x9c3d_d8b9_29e1_2a05,
                },
                DigestWindow {
                    index: 1,
                    cycle: 131072,
                    hash: 0x0000_0000_0000_002a,
                },
            ],
            cycles: 180034,
            final_hash: 0x1af0_c582_b7d9_e644,
        }
    }

    #[test]
    fn digest_round_trips() {
        let d = sample();
        let text = write_digest_file(&d);
        assert!(text.starts_with(r#"{"fp_v":1,"kind":"meta""#));
        assert!(text.contains(r#""hash":"000000000000002a""#), "{text}");
        assert_eq!(parse_digest_file("mem", &text).unwrap(), d);
    }

    #[test]
    fn truncated_digest_is_an_error() {
        let text = write_digest_file(&sample());
        let cut: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        let err = parse_digest_file("d.jsonl", &cut).unwrap_err();
        assert_eq!(err, "d.jsonl: truncated digest (missing final record)");
    }

    #[test]
    fn unknown_version_is_an_error() {
        let err =
            parse_digest_file("d", "{\"fp_v\":7,\"kind\":\"meta\",\"window\":1}\n").unwrap_err();
        assert_eq!(err, "d:1: unknown fp_v 7 (known: [1])");
    }

    #[test]
    fn window_count_mismatch_is_an_error() {
        let text = write_digest_file(&sample()).replace("\"windows\":2", "\"windows\":3");
        let err = parse_digest_file("d", &text).unwrap_err();
        assert!(
            err.contains("final record says 3 windows, found 2"),
            "{err}"
        );
    }

    #[test]
    fn out_of_order_window_is_an_error() {
        let text = write_digest_file(&sample()).replacen("\"index\":1", "\"index\":5", 1);
        let err = parse_digest_file("d", &text).unwrap_err();
        assert!(err.contains("window index 5 out of order"), "{err}");
    }

    #[test]
    fn unknown_kind_lines_are_skipped() {
        let text = write_digest_file(&sample());
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(1, r#"{"kind":"note","text":"future"}"#);
        assert_eq!(
            parse_digest_file("mem", &lines.join("\n")).unwrap(),
            sample()
        );
    }

    #[test]
    fn identical_digests_compare_identical() {
        assert_eq!(
            compare_digests(&sample(), &sample()).unwrap(),
            FingerprintDiff::Identical
        );
    }

    #[test]
    fn first_divergent_window_is_bisected() {
        let a = sample();
        let mut b = sample();
        b.windows[1].hash = 0xdead;
        b.final_hash = 0xbeef;
        assert_eq!(
            compare_digests(&a, &b).unwrap(),
            FingerprintDiff::Window {
                index: 1,
                cycle: 131072,
                a_hash: a.windows[1].hash,
                b_hash: 0xdead,
            }
        );
    }

    #[test]
    fn prefix_chains_report_length_mismatch() {
        let a = sample();
        let mut b = sample();
        b.windows.pop();
        assert_eq!(
            compare_digests(&a, &b).unwrap(),
            FingerprintDiff::LengthMismatch {
                a_windows: 2,
                b_windows: 1,
            }
        );
    }

    #[test]
    fn tail_divergence_reports_final_only() {
        let a = sample();
        let mut b = sample();
        b.final_hash = 0x1;
        assert_eq!(
            compare_digests(&a, &b).unwrap(),
            FingerprintDiff::FinalOnly {
                a_hash: a.final_hash,
                b_hash: 0x1,
            }
        );
    }

    #[test]
    fn window_size_mismatch_is_an_error() {
        let a = sample();
        let mut b = sample();
        b.window = 1024;
        let err = compare_digests(&a, &b).unwrap_err();
        assert!(err.contains("window mismatch: 65536 vs 1024"), "{err}");
    }

    #[test]
    fn hash_formatting_is_fixed_width() {
        assert_eq!(format_hash(0x2a), "000000000000002a");
        assert_eq!(format_hash(u64::MAX), "ffffffffffffffff");
    }
}

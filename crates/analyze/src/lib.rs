#![warn(missing_docs)]

//! # ccr-analyze — offline analysis of CCR telemetry artifacts
//!
//! PR 1 made every layer of the stack a telemetry *producer*
//! (`events.jsonl` + `report.json`); this crate is the *consumer*
//! side. It reads those artifacts back and turns them into the views
//! the paper's evaluation reasons about — per-region reuse behaviour
//! (Figures 8–11), CRB set pressure, interval-IPC phase structure —
//! plus the regression-gating machinery the perf trajectory needs:
//!
//! * [`value`] — a minimal recursive-descent JSON parser (the build
//!   environment is offline, so no serde), shared by every reader —
//!   it lives in `ccr-telemetry` next to its producer (`JsonWriter`)
//!   and is re-exported here so readers keep one import path,
//! * [`ingest`] — a streaming, line-tolerant `events.jsonl` reader
//!   with schema-version checks, and the `report.json` reader with
//!   both v1 (no provenance) and v2 read paths,
//! * [`analysis`] — the analyzer: per-region profiles with hit-rate
//!   windows, CRB occupancy/pressure curves, interval-IPC percentile
//!   statistics (via `ccr-telemetry`'s log₂-bucket histograms), and
//!   hottest-region rankings, serialized as a deterministic
//!   `analysis.json`,
//! * [`chrome`] — Chrome Trace Event Format (`chrome://tracing` /
//!   Perfetto) export of the compile passes and the reuse timeline,
//! * [`folded`] — collapsed-stack folding of a profiled run's
//!   `cycle_sample` events (the `profile.folded` artifact),
//! * [`flamegraph`] — a self-contained, deterministic flamegraph SVG
//!   renderer over the folded stacks (no external tooling),
//! * [`diff`] — run-to-run comparison with configurable regression
//!   thresholds and a provenance-based comparability gate,
//! * [`bench`] — the `BENCH_ccr.json` schema: a versioned,
//!   per-workload performance snapshot forming the repo's committed
//!   perf trajectory,
//! * [`store`] — the append-only cross-run store: one versioned JSONL
//!   record per (workload, config) measurement, keyed by git commit
//!   and timestamp, with line-tolerant loading and builders from
//!   BENCH / analysis.json artifacts,
//! * [`report`] — the `ccr report` engine: per-series speedup /
//!   hit-rate / miss-mix / host-throughput trend tables over a store,
//!   plus first-regression flagging against configurable thresholds.
//!
//! The crate has no dependencies beyond `ccr-telemetry` (for the
//! shared `JsonWriter` and `Histogram`); in particular it does not
//! depend on the simulator or compiler crates, so analysis can never
//! perturb — or be perturbed by — the run that produced its input.
//!
//! Determinism is load-bearing: identical input artifacts must
//! produce byte-identical `analysis.json` / `trace.json`, which is
//! what lets CI diff analyzer output against committed goldens.

pub mod analysis;
pub mod bench;
pub mod chrome;
pub mod diff;
pub mod fingerprint;
pub mod flamegraph;
pub mod folded;
pub mod ingest;
pub mod report;
pub mod store;
pub use ccr_telemetry::value;

pub use analysis::{analyze, Analysis, RegionProfile, MISS_CAUSES};
pub use bench::{
    geomean_host_throughput, short_commit, BenchReport, BenchWorkload, BENCH_SCHEMA_VERSION,
};
pub use chrome::chrome_trace;
pub use diff::{diff_analyses, diff_bench, DiffReport, Thresholds};
pub use fingerprint::{
    compare_digests, format_hash, parse_digest_file, write_digest_file, DigestFile, DigestWindow,
    FingerprintDiff, FP_VERSION,
};
pub use flamegraph::flamegraph_svg;
pub use folded::fold_samples;
pub use ingest::{load_run, EventRecord, RunData};
pub use report::{report_over, ReportOutput};
pub use store::{RunRecord, RunStore, STORE_SCHEMA_VERSION};
pub use value::Value;

/// Version of the `analysis.json` schema this crate writes. Version 2
/// adds miss-cause counters (totals and per region) and the
/// `attribution` section.
pub const ANALYSIS_SCHEMA_VERSION: u32 = 2;

//! Chrome Trace Event Format export (`trace.json`).
//!
//! The output loads in `chrome://tracing` and Perfetto: a JSON object
//! with a `traceEvents` array of metadata (`"M"`), duration (`"X"`),
//! instant (`"i"`) and counter (`"C"`) events. Tracks:
//!
//! * **pid 1 — compile**: one duration event per optimizer pass, laid
//!   end to end from the recorded wall times (µs, the format's native
//!   unit).
//! * **pid 2 / pid 3 — base / ccr simulation**: the reuse timeline as
//!   instant events (one per lookup; hits and misses are separate
//!   names so the viewer colors them apart) plus an `ipc` counter
//!   track from the interval-IPC windows. Timestamps are *pipeline
//!   cycles* interpreted as µs — relative spacing is what matters.
//! * **pid 4 — crb**: buffer structural events (evict / conflict /
//!   invalidate) and an `occupancy` counter, on the *buffer clock*
//!   timebase.
//!
//! Instant events are capped at [`MAX_INSTANT_EVENTS`] per
//! simulation phase (deterministically: the first N in stream order);
//! a `truncated` counter in the trailing metadata records how many
//! were dropped, so a capped trace never silently reads as complete.

use ccr_telemetry::JsonWriter;

use crate::ingest::{CrbKind, Phase, RunData};

/// Cap on reuse instant events per simulation phase.
pub const MAX_INSTANT_EVENTS: usize = 20_000;

fn meta_process(w: &mut JsonWriter, pid: u64, name: &str) {
    w.obj_begin();
    w.key("name").str_val("process_name");
    w.key("ph").str_val("M");
    w.key("pid").u64_val(pid);
    w.key("tid").u64_val(0);
    w.key("args").obj_begin();
    w.key("name").str_val(name);
    w.obj_end();
    w.obj_end();
}

/// Renders one run as a Chrome-trace JSON document.
pub fn chrome_trace(data: &RunData) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("displayTimeUnit").str_val("ms");
    w.key("traceEvents").arr_begin();

    meta_process(&mut w, 1, "compile");
    meta_process(&mut w, 2, "sim: base (cycles)");
    meta_process(&mut w, 3, "sim: ccr (cycles)");
    meta_process(&mut w, 4, "crb (buffer clock)");

    // Compile passes, end to end on the wall-time axis.
    let mut ts = 0u64;
    for pass in &data.passes {
        w.obj_begin();
        w.key("name").str_val(&pass.pass);
        w.key("cat").str_val("compile");
        w.key("ph").str_val("X");
        w.key("ts").u64_val(ts);
        w.key("dur").u64_val(pass.wall_us.max(1));
        w.key("pid").u64_val(1);
        w.key("tid").u64_val(1);
        w.key("args").obj_begin();
        w.key("changes").u64_val(pass.changes);
        w.key("instrs_before").u64_val(pass.instrs_before);
        w.key("instrs_after").u64_val(pass.instrs_after);
        w.obj_end();
        w.obj_end();
        ts += pass.wall_us.max(1);
    }

    // Reuse timeline per phase, capped deterministically.
    let mut emitted = [0usize; 2];
    let mut dropped = [0u64; 2];
    for r in &data.reuse {
        let (slot, pid) = match r.phase {
            Phase::Base => (0, 2),
            Phase::Ccr => (1, 3),
            Phase::Compile => continue,
        };
        if emitted[slot] >= MAX_INSTANT_EVENTS {
            dropped[slot] += 1;
            continue;
        }
        emitted[slot] += 1;
        w.obj_begin();
        w.key("name").str_val(if r.hit { "hit" } else { "miss" });
        w.key("cat").str_val("reuse");
        w.key("ph").str_val("i");
        w.key("s").str_val("t");
        w.key("ts").u64_val(r.cycle);
        w.key("pid").u64_val(pid);
        w.key("tid").u64_val(1);
        w.key("args").obj_begin();
        w.key("region").u64_val(r.region);
        w.key("skipped").u64_val(r.skipped);
        w.obj_end();
        w.obj_end();
    }

    // Interval-IPC counter tracks.
    for win in &data.ipc_windows {
        let pid = match win.phase {
            Phase::Base => 2,
            Phase::Ccr => 3,
            Phase::Compile => continue,
        };
        w.obj_begin();
        w.key("name").str_val("ipc");
        w.key("ph").str_val("C");
        w.key("ts").u64_val(win.start_cycle);
        w.key("pid").u64_val(pid);
        w.key("args").obj_begin();
        w.key("ipc").f64_val(win.ipc);
        w.obj_end();
        w.obj_end();
    }

    // CRB structural events + occupancy counter (buffer clock axis).
    for ev in &data.crb_events {
        w.obj_begin();
        w.key("name").str_val(match ev.kind {
            CrbKind::Evict => "evict",
            CrbKind::Conflict => "conflict",
            CrbKind::Invalidate => "invalidate",
        });
        w.key("cat").str_val("crb");
        w.key("ph").str_val("i");
        w.key("s").str_val("t");
        w.key("ts").u64_val(ev.clock);
        w.key("pid").u64_val(4);
        w.key("tid").u64_val(1);
        w.key("args").obj_begin();
        w.key("region").u64_val(ev.region);
        w.key("entry").u64_val(ev.entry);
        w.key("lost").u64_val(ev.lost);
        w.obj_end();
        w.obj_end();
        w.obj_begin();
        w.key("name").str_val("occupancy");
        w.key("ph").str_val("C");
        w.key("ts").u64_val(ev.clock);
        w.key("pid").u64_val(4);
        w.key("args").obj_begin();
        w.key("occupancy").u64_val(ev.occupancy);
        w.obj_end();
        w.obj_end();
    }

    w.arr_end();
    w.key("otherData").obj_begin();
    w.key("workload").str_val(&data.report.workload);
    w.key("truncated_base").u64_val(dropped[0]);
    w.key("truncated_ccr").u64_val(dropped[1]);
    w.obj_end();
    w.obj_end();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{CrbRec, IpcWindowRec, PassRec, ReuseRec};
    use crate::value::{parse, Value};

    fn sample() -> RunData {
        let mut data = RunData::default();
        data.report.workload = "w".into();
        data.passes.push(PassRec {
            pass: "dce".into(),
            wall_us: 12,
            changes: 3,
            instrs_before: 10,
            instrs_after: 7,
        });
        data.passes.push(PassRec {
            pass: "cse".into(),
            wall_us: 0, // zero-length spans still render
            changes: 0,
            instrs_before: 7,
            instrs_after: 7,
        });
        data.reuse.push(ReuseRec {
            phase: Phase::Base,
            region: 0,
            hit: false,
            skipped: 0,
            cycle: 40,
            cause: None,
        });
        data.reuse.push(ReuseRec {
            phase: Phase::Ccr,
            region: 0,
            hit: true,
            skipped: 13,
            cycle: 55,
            cause: None,
        });
        data.ipc_windows.push(IpcWindowRec {
            phase: Phase::Ccr,
            index: 0,
            start_cycle: 0,
            cycles: 100,
            instrs: 250,
            skipped: 13,
            ipc: 2.63,
        });
        data.crb_events.push(CrbRec {
            kind: CrbKind::Evict,
            clock: 9,
            region: 0,
            entry: 0,
            occupancy: 8,
            lost: 1,
        });
        data
    }

    #[test]
    fn trace_is_valid_trace_event_format() {
        let trace = chrome_trace(&sample());
        let v = parse(trace.trim_end()).expect("trace.json must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 process metadata + 2 passes + 2 reuse + 1 ipc + 1 crb + 1 occupancy.
        assert_eq!(events.len(), 11);
        for ev in events {
            let ph = ev.str_field("ph");
            assert!(
                matches!(ph, "M" | "X" | "i" | "C"),
                "unexpected phase {ph:?}"
            );
            assert!(ev.get("name").is_some());
            assert!(ev.get("pid").is_some());
            if ph == "X" {
                assert!(ev.u64_field("dur") >= 1);
            }
            if ph == "i" {
                assert_eq!(ev.str_field("s"), "t", "instant events need a scope");
            }
        }
        // Passes are laid end to end.
        let xs: Vec<&Value> = events.iter().filter(|e| e.str_field("ph") == "X").collect();
        assert_eq!(
            xs[0].u64_field("ts") + xs[0].u64_field("dur"),
            xs[1].u64_field("ts")
        );
        // Hit and miss are distinct names on distinct sim pids.
        let names: Vec<(&str, u64)> = events
            .iter()
            .filter(|e| e.str_field("cat") == "reuse")
            .map(|e| (e.str_field("name"), e.u64_field("pid")))
            .collect();
        assert_eq!(names, vec![("miss", 2), ("hit", 3)]);
        assert_eq!(v.get("otherData").unwrap().u64_field("truncated_ccr"), 0);
    }

    #[test]
    fn trace_caps_instant_events_and_reports_truncation() {
        let mut data = sample();
        data.reuse.clear();
        for i in 0..(MAX_INSTANT_EVENTS as u64 + 10) {
            data.reuse.push(ReuseRec {
                phase: Phase::Ccr,
                region: 0,
                hit: true,
                skipped: 1,
                cycle: i,
                cause: None,
            });
        }
        let trace = chrome_trace(&data);
        let v = parse(trace.trim_end()).unwrap();
        let reuse_events = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.str_field("cat") == "reuse")
            .count();
        assert_eq!(reuse_events, MAX_INSTANT_EVENTS);
        assert_eq!(v.get("otherData").unwrap().u64_field("truncated_ccr"), 10);
    }

    #[test]
    fn trace_is_deterministic() {
        let data = sample();
        assert_eq!(chrome_trace(&data), chrome_trace(&data));
    }
}

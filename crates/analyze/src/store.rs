//! The append-only cross-run store.
//!
//! Every per-run artifact in the repo is a *point sample*: one
//! `BENCH_ccr.json`, one `analysis.json`, one pass/fail bit from the
//! CI gate. The store turns those samples into a *history* — a
//! versioned JSONL database (`runs/store.jsonl` by default) with one
//! [`RunRecord`] per (workload, configuration) measurement, keyed by
//! git commit, FNV-1a config hash, and timestamp. `ccr bench`,
//! `ccr exp`, and `ccr profile` append records as they run (opt out
//! with `--no-store`); `ccr report import` backfills from existing
//! BENCH / analysis artifacts; `ccr report` reads the whole file back
//! and renders trends (see [`crate::report`]).
//!
//! Append-only JSONL is the point: appends are atomic enough for a
//! single writer, the file diffs cleanly in git, and a run killed
//! mid-append tears at most the final line. Loading is therefore
//! line-tolerant in exactly the [`crate::ingest`] sense — an
//! unparseable line (the classic torn final line) is counted in
//! [`RunStore::skipped_lines`] and skipped, while a line that *parses*
//! but carries an unknown `store_v` is a hard error, because silently
//! misreading a future schema is worse than failing.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use ccr_telemetry::JsonWriter;

use crate::value::{self, Value};

/// Version of the run-store line schema (`store_v` on every line).
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// Line schema versions [`RunStore::load`] understands.
pub const KNOWN_STORE_VERSIONS: &[u64] = &[1];

/// Default store location, relative to the repo root.
pub const DEFAULT_STORE_PATH: &str = "runs/store.jsonl";

/// One measured (workload, configuration) point at one moment in the
/// repo's history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRecord {
    /// Unix timestamp (seconds) of the run.
    pub timestamp: u64,
    /// Git commit of the producing checkout (`"unknown"` outside one).
    pub commit: String,
    /// Machine/CRB configuration hash (comparability key).
    pub config_hash: String,
    /// What appended the record: `bench`, `exp`, `profile`, or
    /// `import`.
    pub source: String,
    /// Workload name.
    pub workload: String,
    /// Input set (`train` / `ref`).
    pub input: String,
    /// Scale factor.
    pub scale: u64,
    /// Baseline simulation cycles.
    pub base_cycles: u64,
    /// CCR simulation cycles.
    pub ccr_cycles: u64,
    /// base_cycles / ccr_cycles.
    pub speedup: f64,
    /// Aggregate CRB hit rate.
    pub hit_rate: f64,
    /// Miss-cause mix, indexed like [`crate::MISS_CAUSES`]. All zero
    /// when the producer had no cause breakdown (bench snapshots,
    /// BENCH imports).
    pub miss_causes: [u64; 5],
    /// Reuse regions formed.
    pub regions: u64,
    /// Host wall time, ms (0 when unmeasured).
    pub wall_ms: u64,
    /// Simulated cycles per host second (0.0 when unmeasured).
    pub sim_cycles_per_host_sec: f64,
    /// Job-pool worker utilization of the producing harness run, in
    /// percent (0.0 when unmeasured — harness off, imports, and every
    /// record written before the field existed; readers default
    /// missing numeric fields to zero, so no `store_v` bump).
    pub host_util_pct: f64,
    /// Final determinism-fingerprint chain hash of the CCR run
    /// (16-digit lowercase hex; `""` when unmeasured — fingerprinting
    /// off, imports, and every record written before the field
    /// existed; readers default missing string fields to empty, so no
    /// `store_v` bump). Equal config hash + different fingerprint
    /// across commits means the simulated trajectory changed.
    pub fingerprint: String,
    /// Completed request points per host second of the producing
    /// `ccr serve` session (0.0 when unmeasured — one-shot producers,
    /// imports, and every record written before the field existed;
    /// readers default missing numeric fields to zero, so no
    /// `store_v` bump).
    pub points_per_sec: f64,
}

impl RunRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("store_v").u64_val(u64::from(STORE_SCHEMA_VERSION));
        w.key("ts").u64_val(self.timestamp);
        w.key("commit").str_val(&self.commit);
        w.key("config_hash").str_val(&self.config_hash);
        w.key("source").str_val(&self.source);
        w.key("workload").str_val(&self.workload);
        w.key("input").str_val(&self.input);
        w.key("scale").u64_val(self.scale);
        w.key("base_cycles").u64_val(self.base_cycles);
        w.key("ccr_cycles").u64_val(self.ccr_cycles);
        w.key("speedup").f64_val(self.speedup);
        w.key("hit_rate").f64_val(self.hit_rate);
        for (name, count) in crate::MISS_CAUSES.iter().zip(self.miss_causes) {
            w.key(&format!("miss_{name}")).u64_val(count);
        }
        w.key("regions").u64_val(self.regions);
        w.key("wall_ms").u64_val(self.wall_ms);
        w.key("sim_cycles_per_host_sec")
            .f64_val(self.sim_cycles_per_host_sec);
        w.key("host_util_pct").f64_val(self.host_util_pct);
        w.key("fingerprint").str_val(&self.fingerprint);
        w.key("points_per_sec").f64_val(self.points_per_sec);
        w.obj_end();
        w.finish()
    }

    fn from_value(v: &Value) -> RunRecord {
        let mut miss_causes = [0u64; 5];
        for (slot, name) in miss_causes.iter_mut().zip(crate::MISS_CAUSES) {
            *slot = v.u64_field(&format!("miss_{name}"));
        }
        RunRecord {
            timestamp: v.u64_field("ts"),
            commit: v.str_field("commit").to_string(),
            config_hash: v.str_field("config_hash").to_string(),
            source: v.str_field("source").to_string(),
            workload: v.str_field("workload").to_string(),
            input: v.str_field("input").to_string(),
            scale: v.u64_field("scale"),
            base_cycles: v.u64_field("base_cycles"),
            ccr_cycles: v.u64_field("ccr_cycles"),
            speedup: v.f64_field("speedup"),
            hit_rate: v.f64_field("hit_rate"),
            miss_causes,
            regions: v.u64_field("regions"),
            wall_ms: v.u64_field("wall_ms"),
            sim_cycles_per_host_sec: v.f64_field("sim_cycles_per_host_sec"),
            host_util_pct: v.f64_field("host_util_pct"),
            fingerprint: v.str_field("fingerprint").to_string(),
            points_per_sec: v.f64_field("points_per_sec"),
        }
    }

    /// The series this record belongs to: records with equal keys
    /// measured the same thing over time and are trend-comparable.
    pub fn series_key(&self) -> SeriesKey {
        (
            self.workload.clone(),
            self.input.clone(),
            self.scale,
            self.config_hash.clone(),
        )
    }
}

/// A trend series identity: `(workload, input, scale, config_hash)`.
pub type SeriesKey = (String, String, u64, String);

/// A loaded run store.
#[derive(Clone, Debug, Default)]
pub struct RunStore {
    /// All parsed records, in file (≈ append) order.
    pub records: Vec<RunRecord>,
    /// Lines skipped as unparseable (torn final lines, corruption).
    pub skipped_lines: u64,
}

impl RunStore {
    /// Loads a store file.
    ///
    /// # Errors
    ///
    /// One-line messages, CLI-ready: a missing file, an unreadable
    /// file, a line with an unknown `store_v`, or a file where *no*
    /// line parsed (indistinguishable from a non-store file).
    /// Individually unparseable lines among parseable ones are
    /// tolerated and counted in [`RunStore::skipped_lines`].
    pub fn load(path: &Path) -> Result<RunStore, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(format!(
                    "{}: no run store here (runs append one via `ccr bench`; \
                     backfill with `ccr report import`; or pass --store)",
                    path.display()
                ));
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let mut store = RunStore::default();
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let Ok(v) = value::parse(trimmed) else {
                store.skipped_lines += 1;
                continue;
            };
            let version = v.u64_field("store_v");
            if !KNOWN_STORE_VERSIONS.contains(&version) {
                return Err(format!(
                    "{}:{}: unknown store_v {version} (known: {KNOWN_STORE_VERSIONS:?})",
                    path.display(),
                    idx + 1
                ));
            }
            store.records.push(RunRecord::from_value(&v));
        }
        if store.records.is_empty() && store.skipped_lines > 0 {
            return Err(format!(
                "{}: corrupt run store (0 records parsed, {} line(s) unreadable)",
                path.display(),
                store.skipped_lines
            ));
        }
        Ok(store)
    }

    /// Appends records to a store file, creating it (and its parent
    /// directory) on first use. One JSONL line per record.
    ///
    /// Appends are single-writer: a process-wide mutex serializes
    /// threads (a `ccr serve` session and its store hooks share one
    /// process), and a sidecar `<path>.lock` file — created with
    /// `O_CREAT|O_EXCL`, which is atomic on every platform we build
    /// for — serializes processes (a CLI run racing a serve session).
    /// The whole batch lands as one `write_all` on a descriptor in
    /// append mode, so concurrent writers never interleave mid-line
    /// and a loaded store sees `skipped_lines == 0`.
    ///
    /// # Errors
    ///
    /// Filesystem failures, as one-line messages — including a lock
    /// file another writer held for over 10 seconds (crashed holder;
    /// the message names the stale path to remove).
    pub fn append(path: &Path, records: &[RunRecord]) -> Result<(), String> {
        if records.is_empty() {
            return Ok(());
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let mut text = String::new();
        for rec in records {
            text.push_str(&rec.to_json_line());
            text.push('\n');
        }
        static IN_PROCESS: Mutex<()> = Mutex::new(());
        let _thread_guard = IN_PROCESS.lock().expect("store append lock");
        let _file_guard = AppendLock::acquire(path)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.write_all(text.as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(())
    }

    /// Groups the records into trend series, each sorted by timestamp
    /// (stable, so file order breaks ties — later appends stay later).
    pub fn series(&self) -> BTreeMap<SeriesKey, Vec<&RunRecord>> {
        let mut out: BTreeMap<SeriesKey, Vec<&RunRecord>> = BTreeMap::new();
        for rec in &self.records {
            out.entry(rec.series_key()).or_default().push(rec);
        }
        for series in out.values_mut() {
            series.sort_by_key(|r| r.timestamp);
        }
        out
    }
}

/// A held cross-process append lock: the sidecar `<store>.lock` file,
/// removed on drop. `create_new` (`O_CREAT|O_EXCL`) is the only
/// advisory locking std offers portably; acquisition polls with a
/// bounded backoff and gives up after ~10 s so a crashed holder
/// surfaces as one actionable error instead of a hang.
struct AppendLock {
    path: std::path::PathBuf,
}

impl AppendLock {
    fn acquire(store: &Path) -> Result<AppendLock, String> {
        let mut lock_path = store.as_os_str().to_os_string();
        lock_path.push(".lock");
        let path = std::path::PathBuf::from(lock_path);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(AppendLock { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if std::time::Instant::now() >= deadline {
                        return Err(format!(
                            "{}: held by another writer for over 10s \
                             (remove it if that writer crashed)",
                            path.display()
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => return Err(format!("{}: {e}", path.display())),
            }
        }
    }
}

impl Drop for AppendLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Builds one record per workload from a bench snapshot. BENCH files
/// carry no miss-cause breakdown, so the mix is all-zero (lossy by
/// design; records appended live by `ccr bench` itself get the real
/// mix from the simulator).
pub fn records_from_bench(
    report: &crate::BenchReport,
    timestamp: u64,
    source: &str,
) -> Vec<RunRecord> {
    report
        .workloads
        .iter()
        .map(|wl| RunRecord {
            timestamp,
            commit: report.git_commit.clone(),
            config_hash: report.config_hash.clone(),
            source: source.to_string(),
            workload: wl.name.clone(),
            input: report.input.clone(),
            scale: report.scale,
            base_cycles: wl.base_cycles,
            ccr_cycles: wl.ccr_cycles,
            speedup: wl.speedup,
            hit_rate: wl.hit_rate,
            miss_causes: [0; 5],
            regions: wl.regions,
            wall_ms: wl.wall_ms,
            sim_cycles_per_host_sec: wl.sim_cycles_per_host_sec,
            host_util_pct: 0.0,
            fingerprint: String::new(),
            points_per_sec: report.serve_points_per_sec,
        })
        .collect()
}

/// Builds one record from a saved `analysis.json`.
///
/// # Errors
///
/// Malformed JSON or an unknown `analysis_schema_version`.
pub fn record_from_analysis_json(
    text: &str,
    timestamp: u64,
    commit_override: Option<&str>,
) -> Result<RunRecord, String> {
    let v = value::parse(text.trim()).map_err(|e| e.to_string())?;
    let version = v.u64_field("analysis_schema_version");
    if version != u64::from(crate::ANALYSIS_SCHEMA_VERSION) {
        return Err(format!("unknown analysis_schema_version {version}"));
    }
    let source = v.get("source").ok_or("analysis.json missing `source`")?;
    let totals = v.get("totals").ok_or("analysis.json missing `totals`")?;
    let mut miss_causes = [0u64; 5];
    for (slot, name) in miss_causes.iter_mut().zip(crate::MISS_CAUSES) {
        *slot = totals.u64_field(&format!("miss_{name}"));
    }
    Ok(RunRecord {
        timestamp,
        commit: commit_override.unwrap_or("unknown").to_string(),
        config_hash: source
            .get("config_hash")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        source: "import".to_string(),
        workload: source.str_field("workload").to_string(),
        input: source.str_field("input").to_string(),
        scale: source.u64_field("scale"),
        base_cycles: totals.u64_field("base_cycles"),
        ccr_cycles: totals.u64_field("ccr_cycles"),
        speedup: totals.f64_field("speedup"),
        hit_rate: totals.f64_field("hit_rate"),
        miss_causes,
        regions: totals.u64_field("regions_formed"),
        wall_ms: 0,
        sim_cycles_per_host_sec: 0.0,
        host_util_pct: 0.0,
        fingerprint: String::new(),
        points_per_sec: 0.0,
    })
}

/// Renders a Unix timestamp as `YYYY-MM-DDTHH:MM:SSZ` — hand-rolled
/// (no chrono offline) with the standard civil-from-days conversion,
/// so store timestamps render identically on every host.
pub fn format_utc(timestamp: u64) -> String {
    let days = (timestamp / 86_400) as i64;
    let secs = timestamp % 86_400;
    // Howard Hinnant's civil_from_days, shifted to the 0000-03-01
    // era so leap days land at era boundaries.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, workload: &str, ccr_cycles: u64) -> RunRecord {
        RunRecord {
            timestamp: ts,
            commit: "a".repeat(40),
            config_hash: "00ff00ff00ff00ff".into(),
            source: "bench".into(),
            workload: workload.into(),
            input: "train".into(),
            scale: 1,
            base_cycles: 1000,
            ccr_cycles,
            speedup: 1000.0 / ccr_cycles as f64,
            hit_rate: 0.75,
            miss_causes: [3, 2, 1, 0, 0],
            regions: 4,
            wall_ms: 20,
            sim_cycles_per_host_sec: 1.5e6,
            host_util_pct: 62.5,
            fingerprint: "00c0ffee00c0ffee".into(),
            points_per_sec: 2.25,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccr-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_round_trips_through_a_store_file() {
        let path = tmp("round_trip.jsonl");
        let _ = std::fs::remove_file(&path);
        let records = vec![rec(100, "w", 800), rec(200, "w", 810)];
        RunStore::append(&path, &records).unwrap();
        RunStore::append(&path, &[rec(300, "x", 500)]).unwrap();
        let store = RunStore::load(&path).unwrap();
        assert_eq!(store.skipped_lines, 0);
        assert_eq!(store.records.len(), 3);
        assert_eq!(store.records[0], records[0]);
        assert_eq!(store.records[1], records[1]);
        assert_eq!(store.records[2].workload, "x");
        // Every line carries the version tag.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().all(|l| l.starts_with("{\"store_v\":1,")),
            "{text}"
        );
    }

    #[test]
    fn concurrent_appends_never_tear_lines() {
        let path = tmp("concurrent_appends.jsonl");
        let _ = std::fs::remove_file(&path);
        // Many writers hammering one store file: the append guard
        // must serialize them so every line lands whole — no torn,
        // interleaved, or lost records.
        const WRITERS: u64 = 8;
        const BATCH: u64 = 25;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = &path;
                scope.spawn(move || {
                    for i in 0..BATCH {
                        RunStore::append(path, &[rec(w * BATCH + i, "w", 800 + i)]).unwrap();
                    }
                });
            }
        });
        let store = RunStore::load(&path).unwrap();
        assert_eq!(store.skipped_lines, 0, "a torn line would be skipped");
        assert_eq!(store.records.len(), (WRITERS * BATCH) as usize);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().all(|l| l.starts_with("{\"store_v\":1,")),
            "every line starts a fresh record"
        );
        // Every writer's every record arrived exactly once.
        let mut stamps: Vec<u64> = store.records.iter().map(|r| r.timestamp).collect();
        stamps.sort_unstable();
        assert_eq!(stamps, (0..WRITERS * BATCH).collect::<Vec<_>>());
        // The sidecar lock was released.
        assert!(!path.with_extension("jsonl.lock").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_creates_the_parent_directory() {
        let path = tmp("nested").join("deeper/store.jsonl");
        let _ = std::fs::remove_dir_all(tmp("nested"));
        RunStore::append(&path, &[rec(1, "w", 900)]).unwrap();
        assert_eq!(RunStore::load(&path).unwrap().records.len(), 1);
        // Appending nothing is a no-op that creates nothing.
        let ghost = tmp("nested").join("ghost/store.jsonl");
        RunStore::append(&ghost, &[]).unwrap();
        assert!(!ghost.exists());
    }

    #[test]
    fn missing_store_is_a_one_line_error() {
        let path = tmp("definitely-missing.jsonl");
        let _ = std::fs::remove_file(&path);
        let err = RunStore::load(&path).unwrap_err();
        assert!(err.contains("no run store here"), "{err}");
        assert!(!err.contains('\n'), "one line, CLI-ready: {err}");
    }

    #[test]
    fn torn_final_line_is_recovered_and_counted() {
        let path = tmp("torn.jsonl");
        let mut text = rec(100, "w", 800).to_json_line();
        text.push('\n');
        text.push_str("{\"store_v\":1,\"ts\":200,\"commit\":\"tor"); // killed mid-append
        std::fs::write(&path, text).unwrap();
        let store = RunStore::load(&path).unwrap();
        assert_eq!(store.records.len(), 1);
        assert_eq!(store.skipped_lines, 1);
    }

    #[test]
    fn fully_unparseable_store_is_an_error() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "not json at all\nstill not\n").unwrap();
        let err = RunStore::load(&path).unwrap_err();
        assert!(err.contains("corrupt run store"), "{err}");
        // An empty file, by contrast, is a valid empty store.
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let store = RunStore::load(&path).unwrap();
        assert!(store.records.is_empty());
        assert_eq!(store.skipped_lines, 0);
    }

    #[test]
    fn unknown_store_version_is_a_hard_error() {
        let path = tmp("future.jsonl");
        let mut text = rec(100, "w", 800).to_json_line();
        text.push('\n');
        text.push_str("{\"store_v\":99,\"ts\":200}\n");
        std::fs::write(&path, text).unwrap();
        let err = RunStore::load(&path).unwrap_err();
        assert!(err.contains("unknown store_v 99"), "{err}");
        assert!(err.contains(":2:"), "names the line: {err}");
    }

    #[test]
    fn series_group_and_sort_by_timestamp() {
        let path = tmp("series.jsonl");
        let _ = std::fs::remove_file(&path);
        // Appended out of time order, two workloads interleaved.
        let mut other = rec(150, "w", 790);
        other.config_hash = "1111111111111111".into();
        RunStore::append(
            &path,
            &[
                rec(300, "w", 820),
                rec(100, "w", 800),
                other,
                rec(200, "w", 810),
            ],
        )
        .unwrap();
        let store = RunStore::load(&path).unwrap();
        let series = store.series();
        assert_eq!(
            series.len(),
            2,
            "same workload, different config ⇒ two series"
        );
        let key = (
            "w".to_string(),
            "train".to_string(),
            1,
            "00ff00ff00ff00ff".to_string(),
        );
        let ts: Vec<u64> = series[&key].iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn bench_records_inherit_snapshot_provenance() {
        let report = crate::BenchReport {
            suite: "ccr".into(),
            input: "train".into(),
            scale: 1,
            config_hash: "00ff00ff00ff00ff".into(),
            crate_version: "0.1.0".into(),
            git_commit: "b".repeat(40),
            host_reps: 1,
            agg_sim_cycles_per_host_sec: 9.0e4,
            serve_clients: 0,
            serve_points_per_sec: 0.0,
            workloads: vec![crate::BenchWorkload {
                name: "008.espresso".into(),
                base_cycles: 1000,
                ccr_cycles: 800,
                speedup: 1.25,
                hit_rate: 0.8,
                regions: 4,
                wall_ms: 20,
                sim_cycles_per_host_sec: 9.0e4,
            }],
        };
        let recs = records_from_bench(&report, 12_345, "import");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].commit, "b".repeat(40));
        assert_eq!(recs[0].source, "import");
        assert_eq!(recs[0].timestamp, 12_345);
        assert_eq!(recs[0].miss_causes, [0; 5], "BENCH imports are cause-lossy");
        assert_eq!(recs[0].sim_cycles_per_host_sec, 9.0e4);
    }

    #[test]
    fn analysis_import_carries_the_miss_mix() {
        let mut a = crate::Analysis {
            workload: "w".into(),
            input: "train".into(),
            scale: 1,
            config_hash: Some("00ff00ff00ff00ff".into()),
            base_cycles: 1000,
            ccr_cycles: 800,
            speedup: 1.25,
            hit_rate: 0.7,
            regions_formed: 3,
            ..crate::Analysis::default()
        };
        a.miss_causes = [5, 4, 3, 2, 1];
        let rec = record_from_analysis_json(&a.to_json(), 777, Some("deadbeef")).unwrap();
        assert_eq!(rec.workload, "w");
        assert_eq!(rec.miss_causes, [5, 4, 3, 2, 1]);
        assert_eq!(rec.commit, "deadbeef");
        assert_eq!(rec.regions, 3);
        assert_eq!(rec.source, "import");
        assert!(record_from_analysis_json("{}", 0, None)
            .unwrap_err()
            .contains("analysis_schema_version"));
    }

    #[test]
    fn utc_formatting_is_correct_on_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(86_399), "1970-01-01T23:59:59Z");
        // 2000-02-29 (leap day) 12:00:00 UTC.
        assert_eq!(format_utc(951_825_600), "2000-02-29T12:00:00Z");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(format_utc(1_786_233_600), "2026-08-09T00:00:00Z");
    }
}

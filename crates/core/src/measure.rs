//! The measure half of the pipeline: baseline vs CCR simulation.

use ccr_ir::Program;
use ccr_profile::{EmuConfig, EmuError, Emulator, NullCrb, PotentialStudy, ReusePotential};
use ccr_sim::{
    simulate, simulate_baseline, simulate_traced, simulate_traced_cfg, CrbConfig, MachineConfig,
    SimOutcome, TraceConfig,
};
use ccr_telemetry::{emit, RecordSink, TelemetrySink};

use crate::compile::CompiledWorkload;

/// Baseline-vs-CCR measurement of one compiled workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Baseline machine running the unannotated program.
    pub base: SimOutcome,
    /// CCR machine running the annotated program.
    pub ccr: SimOutcome,
}

impl Measurement {
    /// Cycle-time speedup (the paper's Figures 8 and 11 metric).
    pub fn speedup(&self) -> f64 {
        self.ccr.speedup_over(self.base.stats.cycles)
    }

    /// Fraction of the baseline's dynamic instructions the CCR run
    /// eliminated.
    pub fn eliminated_fraction(&self) -> f64 {
        if self.base.run.dyn_instrs == 0 {
            0.0
        } else {
            self.ccr.run.skipped_instrs as f64 / self.base.run.dyn_instrs as f64
        }
    }
}

/// Simulates a compiled workload on the baseline machine and on the
/// same machine extended with a CRB.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results —
/// reuse must never change program semantics.
pub fn measure(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
) -> Result<Measurement, EmuError> {
    let base = simulate_baseline(&compiled.base, machine, emu)?;
    let ccr = simulate(&compiled.annotated, machine, Some(crb), emu)?;
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// [`measure`] with the baseline and CCR simulations running on two
/// scoped threads when `jobs > 1` (serially otherwise). The two runs
/// are independent — separate programs, separate buffers — so the
/// resulting [`Measurement`] is identical to [`measure`]'s; only wall
/// clock changes.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results.
pub fn measure_par(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
) -> Result<Measurement, EmuError> {
    if jobs <= 1 {
        return measure(compiled, machine, crb, emu);
    }
    let (base, ccr) = std::thread::scope(|scope| {
        let base = scope.spawn(|| simulate_baseline(&compiled.base, machine, emu));
        let ccr = simulate(&compiled.annotated, machine, Some(crb), emu);
        (base.join().expect("baseline simulation panicked"), ccr)
    });
    let (base, ccr) = (base?, ccr?);
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// Like [`measure`], narrating both simulations to `sink`: a
/// `sim_begin` marker per phase (`base`, then `ccr`), followed by each
/// run's reuse timeline, interval IPC windows, CRB events, and
/// summaries (see [`ccr_sim::simulate_traced`]).
///
/// The reported statistics are identical to [`measure`]'s for the same
/// inputs — telemetry observes the simulation, it never steers it.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results.
pub fn measure_traced(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    window: u64,
    sink: &mut dyn TelemetrySink,
) -> Result<Measurement, EmuError> {
    emit!(sink, "sim_begin", phase: "base");
    let base = simulate_traced(&compiled.base, machine, None, emu, window, sink)?;
    emit!(sink, "sim_begin", phase: "ccr");
    let ccr = simulate_traced(&compiled.annotated, machine, Some(crb), emu, window, sink)?;
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// [`measure_traced`] with the two phases running on scoped threads
/// when `jobs > 1`. Each phase narrates into its own
/// [`RecordSink`] (including its `sim_begin` marker); the recordings
/// are replayed into `sink` in serial order (`base`, then `ccr`)
/// afterwards, so the delivered event stream is byte-identical to
/// [`measure_traced`]'s — and so are the statistics.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results.
pub fn measure_traced_par(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    window: u64,
    jobs: usize,
    sink: &mut dyn TelemetrySink,
) -> Result<Measurement, EmuError> {
    if jobs <= 1 || !sink.enabled() {
        return measure_traced(compiled, machine, crb, emu, window, sink);
    }
    let mut base_rec = RecordSink::new();
    let mut ccr_rec = RecordSink::new();
    let (base, ccr) = std::thread::scope(|scope| {
        let base = scope.spawn(move || {
            emit!(base_rec, "sim_begin", phase: "base");
            let out = simulate_traced(&compiled.base, machine, None, emu, window, &mut base_rec);
            (out, base_rec)
        });
        emit!(ccr_rec, "sim_begin", phase: "ccr");
        let ccr = simulate_traced(
            &compiled.annotated,
            machine,
            Some(crb),
            emu,
            window,
            &mut ccr_rec,
        );
        (base.join().expect("baseline simulation panicked"), ccr)
    });
    let (base, base_rec) = base;
    let (base, ccr) = (base?, ccr?);
    base_rec.replay_into(sink);
    ccr_rec.replay_into(sink);
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// [`measure_traced`] with full [`TraceConfig`] control. With
/// `cfg.profile` on, both phases run under cycle attribution: the
/// returned stats carry [`ccr_sim::Attribution`] blocks and the
/// stream gains `cycle_sample` and per-miss `cause` events. Cycle
/// counts are identical to [`measure`] either way.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results.
pub fn measure_profiled(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    cfg: &TraceConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<Measurement, EmuError> {
    emit!(sink, "sim_begin", phase: "base");
    let base = simulate_traced_cfg(&compiled.base, machine, None, emu, cfg, sink)?;
    emit!(sink, "sim_begin", phase: "ccr");
    let ccr = simulate_traced_cfg(&compiled.annotated, machine, Some(crb), emu, cfg, sink)?;
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// Runs the Figure 4 limit study on a program.
///
/// # Errors
///
/// Returns [`EmuError`] if emulation exceeds limits.
pub fn reuse_potential(program: &Program, emu: EmuConfig) -> Result<ReusePotential, EmuError> {
    let mut study = PotentialStudy::for_program(program);
    Emulator::with_config(program, emu).run(&mut NullCrb, &mut study)?;
    Ok(study.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_ccr, CompileConfig};
    use ccr_workloads::{build, InputSet};

    fn measured(name: &str) -> Measurement {
        let p = build(name, InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        measure(
            &cw,
            &MachineConfig::paper(),
            CrbConfig::paper(),
            EmuConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn m88ksim_shows_substantial_speedup() {
        let m = measured("124.m88ksim");
        assert!(
            m.speedup() > 1.2,
            "m88ksim is the paper's best case: {:.3}",
            m.speedup()
        );
        assert!(m.ccr.stats.reuse_hits > 0);
        assert!(m.eliminated_fraction() > 0.1);
    }

    #[test]
    fn go_shows_little_speedup_but_no_slowdown_catastrophe() {
        let m = measured("099.go");
        assert!(
            m.speedup() < 1.25,
            "go is the paper's worst case: {:.3}",
            m.speedup()
        );
        assert!(
            m.speedup() > 0.9,
            "reuse must not wreck go: {:.3}",
            m.speedup()
        );
    }

    #[test]
    fn espresso_benefits_from_block_level_reuse() {
        let m = measured("008.espresso");
        assert!(m.speedup() > 1.05, "espresso: {:.3}", m.speedup());
    }

    #[test]
    fn traced_measurement_is_identical_to_untraced() {
        let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let machine = MachineConfig::paper();
        let plain = measure(&cw, &machine, CrbConfig::paper(), EmuConfig::default()).unwrap();
        let mut null = ccr_telemetry::NullSink;
        let a = measure_traced(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            4096,
            &mut null,
        )
        .unwrap();
        let mut jsonl = ccr_telemetry::JsonlSink::new(Vec::new());
        let b = measure_traced(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            4096,
            &mut jsonl,
        )
        .unwrap();
        // Profiling (cycle attribution + stack sampling), with the
        // sink disabled or fully materialized, must be just as inert.
        let cfg = TraceConfig {
            profile: true,
            ..TraceConfig::default()
        };
        let mut null2 = ccr_telemetry::NullSink;
        let c = measure_profiled(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            &cfg,
            &mut null2,
        )
        .unwrap();
        let mut profiled_jsonl = ccr_telemetry::JsonlSink::new(Vec::new());
        let d = measure_profiled(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            &cfg,
            &mut profiled_jsonl,
        )
        .unwrap();
        // Telemetry — disabled or fully materialized — must not move a
        // single counter.
        for m in [&a, &b, &c, &d] {
            assert_eq!(plain.base.stats.cycles, m.base.stats.cycles);
            assert_eq!(plain.base.stats.dyn_instrs, m.base.stats.dyn_instrs);
            assert_eq!(plain.ccr.stats.cycles, m.ccr.stats.cycles);
            assert_eq!(plain.ccr.stats.dyn_instrs, m.ccr.stats.dyn_instrs);
            assert_eq!(plain.ccr.stats.skipped_instrs, m.ccr.stats.skipped_instrs);
            assert_eq!(plain.ccr.stats.reuse_hits, m.ccr.stats.reuse_hits);
            assert_eq!(plain.ccr.stats.reuse_misses, m.ccr.stats.reuse_misses);
            assert_eq!(plain.ccr.stats.crb, m.ccr.stats.crb);
            assert_eq!(plain.ccr.stats.regions, m.ccr.stats.regions);
            assert_eq!(plain.ccr.run.returned, m.ccr.run.returned);
        }
        // The JSONL stream is well-formed: one versioned event per line.
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(text.lines().count() > 4, "expected a real event stream");
        assert!(
            text.lines().all(|l| l.starts_with("{\"v\":1,\"ev\":\"")),
            "every event carries the schema version"
        );
        assert!(text.contains("\"ev\":\"sim_begin\""));
        assert!(text.contains("\"ev\":\"reuse\""));
        assert!(text.contains("\"ev\":\"ipc_window\""));
        assert!(text.contains("\"ev\":\"sim_summary\""));
        // The profiled stream stays at event schema v1 (additive) and
        // carries the attribution extras.
        let ptext = String::from_utf8(profiled_jsonl.into_inner()).unwrap();
        assert!(
            ptext.lines().all(|l| l.starts_with("{\"v\":1,\"ev\":\"")),
            "profiled events stay at v1"
        );
        assert!(ptext.contains("\"ev\":\"cycle_sample\""));
        assert!(ptext.contains("\"cause\":\""));
        // And the profiled measurement carries conserved attributions.
        for outcome in [&d.base, &d.ccr] {
            let attr = outcome.stats.attribution.as_ref().expect("profiled");
            assert_eq!(attr.total.total(), outcome.stats.cycles);
        }
        assert!(
            a.base.stats.attribution.is_none(),
            "tracing alone does not attribute"
        );
    }

    #[test]
    fn parallel_measure_matches_serial_stats_and_stream() {
        let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let machine = MachineConfig::paper();
        let serial = measure(&cw, &machine, CrbConfig::paper(), EmuConfig::default()).unwrap();
        let par = measure_par(&cw, &machine, CrbConfig::paper(), EmuConfig::default(), 2).unwrap();
        for (s, p) in [(&serial.base, &par.base), (&serial.ccr, &par.ccr)] {
            assert_eq!(s.stats.cycles, p.stats.cycles);
            assert_eq!(s.stats.dyn_instrs, p.stats.dyn_instrs);
            assert_eq!(s.stats.skipped_instrs, p.stats.skipped_instrs);
            assert_eq!(s.stats.reuse_hits, p.stats.reuse_hits);
            assert_eq!(s.stats.reuse_misses, p.stats.reuse_misses);
            assert_eq!(s.stats.crb, p.stats.crb);
            assert_eq!(s.stats.regions, p.stats.regions);
            assert_eq!(s.run.returned, p.run.returned);
        }
        // The traced variant must deliver a byte-identical JSONL
        // stream: per-phase recordings replayed in serial order.
        let mut serial_sink = ccr_telemetry::JsonlSink::new(Vec::new());
        measure_traced(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            4096,
            &mut serial_sink,
        )
        .unwrap();
        let mut par_sink = ccr_telemetry::JsonlSink::new(Vec::new());
        measure_traced_par(
            &cw,
            &machine,
            CrbConfig::paper(),
            EmuConfig::default(),
            4096,
            2,
            &mut par_sink,
        )
        .unwrap();
        assert_eq!(serial_sink.into_inner(), par_sink.into_inner());
    }

    #[test]
    fn potential_study_runs_on_workloads() {
        let p = build("132.ijpeg", InputSet::Train, 1).unwrap();
        let pot = reuse_potential(&p, EmuConfig::default()).unwrap();
        assert!(pot.total_instrs > 10_000);
        assert!(pot.region_ratio() >= pot.block_ratio() * 0.5);
    }
}

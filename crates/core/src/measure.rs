//! The measure half of the pipeline: baseline vs CCR simulation.

use ccr_ir::Program;
use ccr_profile::{EmuConfig, EmuError, Emulator, NullCrb, PotentialStudy, ReusePotential};
use ccr_sim::{simulate, simulate_baseline, CrbConfig, MachineConfig, SimOutcome};

use crate::compile::CompiledWorkload;

/// Baseline-vs-CCR measurement of one compiled workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Baseline machine running the unannotated program.
    pub base: SimOutcome,
    /// CCR machine running the annotated program.
    pub ccr: SimOutcome,
}

impl Measurement {
    /// Cycle-time speedup (the paper's Figures 8 and 11 metric).
    pub fn speedup(&self) -> f64 {
        self.ccr.speedup_over(self.base.stats.cycles)
    }

    /// Fraction of the baseline's dynamic instructions the CCR run
    /// eliminated.
    pub fn eliminated_fraction(&self) -> f64 {
        if self.base.run.dyn_instrs == 0 {
            0.0
        } else {
            self.ccr.run.skipped_instrs as f64 / self.base.run.dyn_instrs as f64
        }
    }
}

/// Simulates a compiled workload on the baseline machine and on the
/// same machine extended with a CRB.
///
/// # Errors
///
/// Returns [`EmuError`] if either simulation exceeds emulator limits.
///
/// # Panics
///
/// Panics if the two runs return different architectural results —
/// reuse must never change program semantics.
pub fn measure(
    compiled: &CompiledWorkload,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
) -> Result<Measurement, EmuError> {
    let base = simulate_baseline(&compiled.base, machine, emu)?;
    let ccr = simulate(&compiled.annotated, machine, Some(crb), emu)?;
    assert_eq!(
        base.run.returned, ccr.run.returned,
        "computation reuse changed architectural results"
    );
    Ok(Measurement { base, ccr })
}

/// Runs the Figure 4 limit study on a program.
///
/// # Errors
///
/// Returns [`EmuError`] if emulation exceeds limits.
pub fn reuse_potential(program: &Program, emu: EmuConfig) -> Result<ReusePotential, EmuError> {
    let mut study = PotentialStudy::for_program(program);
    Emulator::with_config(program, emu).run(&mut NullCrb, &mut study)?;
    Ok(study.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_ccr, CompileConfig};
    use ccr_workloads::{build, InputSet};

    fn measured(name: &str) -> Measurement {
        let p = build(name, InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        measure(
            &cw,
            &MachineConfig::paper(),
            CrbConfig::paper(),
            EmuConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn m88ksim_shows_substantial_speedup() {
        let m = measured("124.m88ksim");
        assert!(
            m.speedup() > 1.2,
            "m88ksim is the paper's best case: {:.3}",
            m.speedup()
        );
        assert!(m.ccr.stats.reuse_hits > 0);
        assert!(m.eliminated_fraction() > 0.1);
    }

    #[test]
    fn go_shows_little_speedup_but_no_slowdown_catastrophe() {
        let m = measured("099.go");
        assert!(
            m.speedup() < 1.25,
            "go is the paper's worst case: {:.3}",
            m.speedup()
        );
        assert!(
            m.speedup() > 0.9,
            "reuse must not wreck go: {:.3}",
            m.speedup()
        );
    }

    #[test]
    fn espresso_benefits_from_block_level_reuse() {
        let m = measured("008.espresso");
        assert!(
            m.speedup() > 1.05,
            "espresso: {:.3}",
            m.speedup()
        );
    }

    #[test]
    fn potential_study_runs_on_workloads() {
        let p = build("132.ijpeg", InputSet::Train, 1).unwrap();
        let pot = reuse_potential(&p, EmuConfig::default()).unwrap();
        assert!(pot.total_instrs > 10_000);
        assert!(pot.region_ratio() >= pot.block_ratio() * 0.5);
    }
}

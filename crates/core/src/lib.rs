#![warn(missing_docs)]

//! # ccr-core — the end-to-end CCR pipeline
//!
//! Ties the whole framework together the way the paper's evaluation
//! does:
//!
//! 1. **Compile** ([`compile`]): run the baseline optimizer over the
//!    program (the paper's "best code ... employing function inlining,
//!    superblock formation, and loop unrolling"), value-profile it on
//!    a *training* input, form reusable computation regions with the
//!    published heuristics, and annotate a *target* program (training
//!    or reference input) with the CCR ISA extensions.
//! 2. **Measure** ([`measure()`](measure())): cycle-level simulation of the
//!    unannotated baseline and the annotated program with a
//!    Computation Reuse Buffer, yielding the speedups of Figures 8
//!    and 11.
//! 3. **Report** ([`report`]): plain-text table rendering used by the
//!    experiment regenerators in `ccr-bench`.

pub mod compile;
pub mod harness;
pub mod jobs;
pub mod measure;
pub mod report;
pub mod runreport;

pub use compile::{compile_ccr, CompileConfig, CompileTelemetry, CompiledWorkload};
pub use harness::{Harness, HarnessOptions, HarnessSummary, ProgressMode, HARNESS_SCHEMA_VERSION};
pub use jobs::{
    parallel_map, parallel_map_observed, resolve_jobs, PoolObserver, PoolStats, TaskStats,
    WorkerStats,
};
pub use measure::{
    measure, measure_par, measure_profiled, measure_traced, measure_traced_par, reuse_potential,
    Measurement,
};
pub use report::Table;
pub use runreport::{
    config_hash, emit_compile_events, fnv1a_hex, git_commit_id, Provenance, RunReport,
    REPORT_SCHEMA_VERSION,
};

// Re-export the crates a downstream user needs to drive everything.
pub use ccr_analysis as analysis;
pub use ccr_ir as ir;
pub use ccr_opt as opt;
pub use ccr_profile as profile;
pub use ccr_regions as regions;
pub use ccr_sim as sim;
pub use ccr_telemetry as telemetry;
pub use ccr_workloads as workloads;

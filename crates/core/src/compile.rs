//! The compile half of the pipeline: optimize → profile → form →
//! annotate.

use ccr_ir::Program;
use ccr_opt::{OptConfig, PassRecord, RecordingObserver};
use ccr_profile::{EmuConfig, EmuError, Emulator, NullCrb, ReuseProfile, ValueProfiler};
use ccr_regions::{FormationStats, RegionConfig, RegionInfo};

/// Configuration of the compile pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileConfig {
    /// Baseline optimizer settings.
    pub opt: OptConfig,
    /// Region-formation heuristics.
    pub region: RegionConfig,
    /// Emulator limits for the profiling run.
    pub emu: EmuConfig,
}

impl CompileConfig {
    /// The paper's configuration everywhere.
    pub fn paper() -> CompileConfig {
        CompileConfig::default()
    }
}

/// Compile-time observability collected alongside a
/// [`CompiledWorkload`]: what the optimizer and region formation did,
/// and what it cost.
#[derive(Clone, Debug, Default)]
pub struct CompileTelemetry {
    /// Per-pass optimizer records for the target build, in execution
    /// order: wall time and IR size before/after each pass.
    pub passes: Vec<PassRecord>,
    /// Region-formation accounting: candidates examined, regions
    /// accepted, and per-reason rejections — including regions the
    /// reiteration trial discarded (reason `"reiteration"`).
    pub formation: FormationStats,
}

/// A benchmark compiled for CCR evaluation.
#[derive(Clone, Debug)]
pub struct CompiledWorkload {
    /// The optimized, unannotated program (the measurement baseline).
    pub base: Program,
    /// The optimized program with regions annotated.
    pub annotated: Program,
    /// Metadata for every formed region.
    pub regions: Vec<RegionInfo>,
    /// The training-run profile the regions were selected from.
    pub profile: ReuseProfile,
    /// Compile-time observability (pass timings, formation stats).
    pub telemetry: CompileTelemetry,
}

/// Compiles `target` for CCR execution, selecting regions from a
/// profile of `train`.
///
/// `train` and `target` must be two builds of the *same* program that
/// differ only in data-object initializers (the paper's training vs
/// reference inputs). When evaluating on the training input, pass the
/// same program for both.
///
/// # Errors
///
/// Returns [`EmuError`] if the profiling run exceeds emulator limits.
///
/// # Panics
///
/// Panics if `train` and `target` differ structurally (different
/// instruction counts), which would make profile data and region
/// coordinates meaningless for the target.
pub fn compile_ccr(
    train: &Program,
    target: &Program,
    config: &CompileConfig,
) -> Result<CompiledWorkload, EmuError> {
    assert_eq!(
        train.instr_count(),
        target.instr_count(),
        "train and target must be the same code (only data may differ)"
    );

    // Optimize both builds identically; the optimizer is
    // deterministic, so structure stays aligned. Pass records are
    // taken from the target build (the one we measure).
    let mut train_opt = train.clone();
    ccr_opt::optimize(&mut train_opt, config.opt);
    let mut base = target.clone();
    let mut observer = RecordingObserver::default();
    ccr_opt::optimize_observed(&mut base, config.opt, &mut observer);
    debug_assert_eq!(
        train_opt.instr_count(),
        base.instr_count(),
        "optimizer must transform both builds identically"
    );

    // Value-profile the optimized training build.
    let mut profiler = ValueProfiler::for_program(&train_opt);
    Emulator::with_config(&train_opt, config.emu).run(&mut NullCrb, &mut profiler)?;
    let profile = profiler.finish();

    // Select regions on the training build.
    let mut formation = FormationStats::new();
    let mut specs =
        ccr_regions::form_regions_observed(&train_opt, &profile, &config.region, &mut formation);

    // Reiteration (Section 4.4): trial-run the annotated training
    // build against an idealized buffer and discard regions whose
    // predicted hit ratio cannot pay for the reuse-failure flushes.
    if config.region.min_predicted_hit > 0.0 && !specs.is_empty() {
        let ratios = trial_hit_ratios(&train_opt, &specs, config)?;
        // Cost model: a hit saves roughly the region's serialized
        // execution (static instructions over a conservative IPC); a
        // miss costs a mispredict-like flush. Keep a region only if
        // the expected benefit is positive and its hit ratio clears
        // the configured floor.
        const ASSUMED_IPC: f64 = 1.5;
        const MISS_COST: f64 = 9.0;
        let before = specs.len();
        specs = specs
            .into_iter()
            .zip(&ratios)
            .filter_map(|(s, &h)| {
                let saved = s.static_instrs as f64 / ASSUMED_IPC;
                let worth = h * saved >= (1.0 - h) * MISS_COST;
                (h >= config.region.min_predicted_hit && worth).then_some(s)
            })
            .collect();
        formation.demote("reiteration", (before - specs.len()) as u64);
        formation.check();
    }

    let mut annotated_target = base.clone();
    let regions = ccr_regions::transform::annotate(&mut annotated_target, specs);

    Ok(CompiledWorkload {
        base,
        annotated: annotated_target,
        regions,
        profile,
        telemetry: CompileTelemetry {
            passes: observer.records,
            formation,
        },
    })
}

/// Runs the annotated training build against a conflict-free buffer
/// and returns each region's hit ratio, in spec order.
fn trial_hit_ratios(
    train_opt: &Program,
    specs: &[ccr_regions::RegionSpec],
    config: &CompileConfig,
) -> Result<Vec<f64>, EmuError> {
    use ccr_profile::{ExecEvent, TraceSink};
    use std::collections::HashMap;

    let mut trial = train_opt.clone();
    let infos = ccr_regions::transform::annotate(&mut trial, specs.to_vec());

    #[derive(Default)]
    struct HitCounter {
        counts: HashMap<ccr_ir::RegionId, (u64, u64)>,
    }
    impl TraceSink for HitCounter {
        fn on_exec(&mut self, e: &ExecEvent<'_>) {
            if let Some(r) = e.reuse {
                let slot = self.counts.entry(r.region).or_default();
                if r.hit {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
    }

    // One entry per region: the trial measures locality, not buffer
    // conflicts (entry-count effects are the hardware's business).
    let mut buffer = ccr_sim::ReuseBuffer::new(ccr_sim::CrbConfig {
        entries: specs.len().max(1),
        instances: config.region.trial_instances,
        input_bank: config.region.max_live_in,
        output_bank: config.region.max_live_out,
        replacement: ccr_sim::Replacement::Lru,
        nonuniform: None,
    });
    let mut counter = HitCounter::default();
    Emulator::with_config(&trial, config.emu).run(&mut buffer, &mut counter)?;
    Ok(infos
        .iter()
        .map(|info| {
            let (h, m) = counter.counts.get(&info.id).copied().unwrap_or((0, 0));
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_profile::NullSink;
    use ccr_workloads::{build, InputSet};

    #[test]
    fn compile_produces_regions_for_a_reuse_rich_benchmark() {
        let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        assert!(
            !cw.regions.is_empty(),
            "m88ksim must yield reusable regions"
        );
        ccr_ir::verify_program(&cw.base).unwrap();
        ccr_ir::verify_program(&cw.annotated).unwrap();
        // The annotated program carries reuse instructions.
        let reuses = cw
            .annotated
            .iter_instrs()
            .filter(|(_, i)| matches!(i.op, ccr_ir::Op::Reuse { .. }))
            .count();
        assert_eq!(reuses, cw.regions.len());
    }

    #[test]
    fn annotated_program_is_architecturally_equivalent() {
        let p = build("008.espresso", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let run = |p: &Program| {
            Emulator::new(p)
                .run(&mut NullCrb, &mut NullSink)
                .unwrap()
                .returned
        };
        assert_eq!(run(&cw.base), run(&cw.annotated));
    }

    #[test]
    fn cross_input_compilation_transfers_regions() {
        let train = build("130.li", InputSet::Train, 1).unwrap();
        let reference = build("130.li", InputSet::Ref, 1).unwrap();
        let cw = compile_ccr(&train, &reference, &CompileConfig::paper()).unwrap();
        ccr_ir::verify_program(&cw.annotated).unwrap();
        // Reference outputs must match the unannotated reference build.
        let run = |p: &Program| {
            Emulator::new(p)
                .run(&mut NullCrb, &mut NullSink)
                .unwrap()
                .returned
        };
        assert_eq!(run(&cw.base), run(&cw.annotated));
    }

    #[test]
    fn compile_telemetry_records_passes_and_formation() {
        let p = build("124.m88ksim", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let t = &cw.telemetry;
        assert!(!t.passes.is_empty(), "optimizer passes must be recorded");
        for required in ["constprop", "cse", "dce", "simplify"] {
            assert!(
                t.passes.iter().any(|r| r.pass == required),
                "missing pass record `{required}`"
            );
        }
        // Deltas chain: each record starts where the previous ended.
        for w in t.passes.windows(2) {
            assert_eq!(w[0].instrs_after, w[1].instrs_before);
        }
        // Formation accounting balances, and the accepted count is the
        // number of regions that survived every gate (including the
        // reiteration trial).
        t.formation.check();
        assert_eq!(t.formation.accepted, cw.regions.len() as u64);
        assert!(t.formation.candidates >= t.formation.accepted);
    }

    #[test]
    #[should_panic(expected = "same code")]
    fn structurally_different_programs_are_rejected() {
        let a = build("008.espresso", InputSet::Train, 1).unwrap();
        let b = build("124.m88ksim", InputSet::Train, 1).unwrap();
        let _ = compile_ccr(&a, &b, &CompileConfig::paper());
    }
}

//! Plain-text table rendering for the experiment regenerators.
//!
//! The [`Table`] type itself lives in `ccr-telemetry` (see
//! `ccr_telemetry::table`) so that `ccr-analyze` — which depends only
//! on the telemetry crate — can render the same deterministic tables;
//! it is re-exported here to keep the experiment engine's historical
//! `ccr_core::report::Table` path working.

pub use ccr_telemetry::Table;

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup with three decimals.
pub fn speedup(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.256), "25.6%");
        assert_eq!(speedup(1.2345), "1.234");
    }

    #[test]
    fn table_reexport_is_the_telemetry_table() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}

//! Host-side harness observability: a structured `harness.jsonl`
//! event log, live `--progress` rendering, and the monitor thread
//! that drives both.
//!
//! PRs 1–3 and 6 instrumented the *guest* — the compiler passes, the
//! simulated CRB, the cross-run store. This module instruments the
//! *host*: what the `ccr exp` planner decided, how long each compile
//! and simulation took, how busy the job-pool workers were, and which
//! points were the stragglers on the critical path. A 403-sim `--all`
//! run no longer runs dark.
//!
//! Three sinks, all optional and all off by default:
//!
//! * **`harness.jsonl`** (`--harness-out FILE`): one JSON object per
//!   line, every line tagged `{"harness_v":1,"ev":"<kind>",...}`.
//!   Consumers tolerate unknown fields and unknown event kinds, so
//!   new fields are additive (same contract as the PR-6 run store).
//! * **plain progress** (`--progress`): a human line to **stderr** on
//!   each monitor sample — completed points, points/sec, aggregate
//!   simulated Mcycles/sec, worker utilization, ETA.
//! * **json progress** (`--progress=json`): the event stream itself
//!   mirrored to stderr, for tooling that watches a live run.
//!
//! **Bit-identity contract** (extends PRs 1 and 4): the harness only
//! *observes* — it reads clocks, bumps atomics, and writes to stderr
//! and the side-channel file. Monitor on or off, every simulated
//! statistic and every committed artifact (stdout tables, CSVs,
//! `results/`) is byte/bit-identical; `tests/harness_observability.rs`
//! asserts this end to end.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccr_telemetry::{Counter, Gauge, JsonWriter, MetricsRegistry, Monitor, MonitorSample};

use crate::jobs::{PoolObserver, PoolStats};

/// Version tag carried by every `harness.jsonl` line. Bumped only on
/// incompatible changes; adding fields or event kinds is not one.
pub const HARNESS_SCHEMA_VERSION: u32 = 1;

/// How many straggler points the summary keeps.
const STRAGGLER_TOP_K: usize = 5;

/// What `--progress` renders to stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressMode {
    /// No stderr rendering (the default; `--harness-out` may still
    /// record events to a file).
    Off,
    /// One human-readable line per monitor sample.
    Plain,
    /// The raw event stream, one JSON object per line.
    Json,
}

impl ProgressMode {
    /// Parses a `--progress=` value (`plain` or `json`).
    pub fn parse(s: &str) -> Option<ProgressMode> {
        match s {
            "plain" => Some(ProgressMode::Plain),
            "json" => Some(ProgressMode::Json),
            _ => None,
        }
    }
}

/// Harness configuration, assembled by the CLI from `--progress`,
/// `--no-progress`, and `--harness-out`.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Stderr rendering mode.
    pub progress: ProgressMode,
    /// Event-log path (`--harness-out`); parent directories are
    /// created on [`Harness::start`].
    pub out: Option<PathBuf>,
    /// Monitor sample period in milliseconds.
    pub period_ms: u64,
}

impl Default for HarnessOptions {
    fn default() -> HarnessOptions {
        HarnessOptions {
            progress: ProgressMode::Off,
            out: None,
            period_ms: 250,
        }
    }
}

impl HarnessOptions {
    /// True when some sink is active (otherwise [`Harness::start`]
    /// degenerates to [`Harness::disabled`]).
    pub fn enabled(&self) -> bool {
        self.progress != ProgressMode::Off || self.out.is_some()
    }
}

/// End-of-run host-side accounting: what [`Harness::finish`] returns,
/// what the `harness_summary` event records, and (as
/// `host_util_pct`) what flows onto cross-run store records.
#[derive(Clone, Debug)]
pub struct HarnessSummary {
    /// Wall time from [`Harness::start`] to [`Harness::finish`].
    pub wall_ms: u64,
    /// Pool-worker utilization over every observed map, percent.
    pub utilization_pct: f64,
    /// Distinct pool workers observed.
    pub workers: usize,
    /// Compile / potential-study tasks finished.
    pub compiles: u64,
    /// Simulations finished.
    pub sims: u64,
    /// Total simulated cycles across every finished simulation.
    pub sim_cycles: u64,
    /// Compile-cache lookups that reused a prior compile.
    pub cache_hits: u64,
    /// Compile-cache lookups that had to compile.
    pub cache_misses: u64,
    /// The top-K longest tasks — the sweep's critical path — as
    /// `(label, wall_ms)`, longest first.
    pub stragglers: Vec<(String, u64)>,
}

impl HarnessSummary {
    /// Cache hit rate in percent (0 when no lookups ran).
    pub fn cache_hit_pct(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / lookups as f64
        }
    }

    /// The multi-line stderr rendering of the summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "harness: {:.1}s wall | {} worker(s), util {:.1}% | {} compile(s), {} sim(s), \
             {:.1} Mcycles | compile cache {} hit / {} miss ({:.1}%)\n",
            self.wall_ms as f64 / 1000.0,
            self.workers,
            self.utilization_pct,
            self.compiles,
            self.sims,
            self.sim_cycles as f64 / 1e6,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_pct(),
        );
        if !self.stragglers.is_empty() {
            out.push_str("harness: stragglers:");
            for (label, wall_ms) in &self.stragglers {
                out.push_str(&format!(" {label} {wall_ms}ms;"));
            }
            out.push('\n');
        }
        out
    }
}

/// Everything the emitting side shares with the monitor thread.
struct HarnessShared {
    start: Instant,
    progress: ProgressMode,
    registry: Arc<MetricsRegistry>,
    out: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
    compiles_total: Counter,
    compiles_done: Counter,
    sims_total: Counter,
    sims_done: Counter,
    sim_cycles: Counter,
    tasks_started: Counter,
    queue_depth: Gauge,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    pool: Mutex<PoolStats>,
}

impl HarnessShared {
    fn line_begin(&self, ev: &str) -> JsonWriter {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("harness_v").u64_val(HARNESS_SCHEMA_VERSION as u64);
        w.key("ev").str_val(ev);
        w.key("t_ms")
            .u64_val(self.start.elapsed().as_millis() as u64);
        w
    }

    /// Writes one finished event line to the active sinks. The file
    /// mutex serializes worker threads and the monitor; stderr writes
    /// are single `eprintln!` calls, so lines never interleave.
    fn emit_line(&self, mut w: JsonWriter) {
        w.obj_end();
        let line = w.finish();
        if let Some(file) = self.out.lock().expect("harness out").as_mut() {
            let _ = writeln!(file, "{line}");
        }
        if self.progress == ProgressMode::Json {
            eprintln!("{line}");
        }
    }

    fn on_sample(&self, sample: &MonitorSample) {
        if self.out.lock().expect("harness out").is_some() {
            let mut w = self.line_begin("monitor");
            w.key("seq").u64_val(sample.seq);
            w.key("last").bool_val(sample.last);
            w.key("counters").obj_begin();
            for (name, value) in &sample.snapshot.counters {
                w.key(name).u64_val(*value);
            }
            w.obj_end();
            w.key("gauges").obj_begin();
            for (name, value) in &sample.snapshot.gauges {
                w.key(name).f64_val(*value);
            }
            w.obj_end();
            // emit_line also mirrors to stderr under Json progress.
            self.emit_line(w);
        } else if self.progress == ProgressMode::Json {
            let mut w = self.line_begin("monitor");
            w.key("seq").u64_val(sample.seq);
            w.key("last").bool_val(sample.last);
            self.emit_line(w);
        }
        if self.progress == ProgressMode::Plain {
            eprintln!("{}", self.progress_line(sample));
        }
    }

    /// The plain `--progress` line: completed points, rates,
    /// utilization, ETA — all from the sampled counters.
    fn progress_line(&self, sample: &MonitorSample) -> String {
        let snap = &sample.snapshot;
        let elapsed_s = (sample.elapsed_ms as f64 / 1000.0).max(1e-3);
        let compiles_done = snap.counter("harness.compiles.done");
        let compiles_total = snap.counter("harness.compiles.total");
        let sims_done = snap.counter("harness.sims.done");
        let sims_total = snap.counter("harness.sims.total");
        let done = compiles_done + sims_done;
        let total = compiles_total + sims_total;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * done as f64 / total as f64
        };
        let cycles = snap.counter("harness.sim.cycles");
        let busy_ns: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool.worker") && k.ends_with(".busy_ns"))
            .map(|(_, v)| *v)
            .sum();
        let workers = snap
            .counters
            .keys()
            .filter(|k| k.starts_with("pool.worker") && k.ends_with(".busy_ns"))
            .count();
        let util = if workers == 0 {
            0.0
        } else {
            100.0 * (busy_ns as f64 / 1e9) / (workers as f64 * elapsed_s)
        };
        let eta = if done == 0 || total <= done {
            "-".to_string()
        } else {
            let rate = done as f64 / elapsed_s;
            format!("{:.0}s", (total - done) as f64 / rate)
        };
        format!(
            "progress: {compiles_done}/{compiles_total} compiles, {sims_done}/{sims_total} sims \
             ({pct:.0}%) | {:.1} pts/s | {:.1} Mcyc/s | util {util:.0}% | eta {eta}",
            done as f64 / elapsed_s,
            cycles as f64 / 1e6 / elapsed_s,
        )
    }

    fn summary(&self) -> HarnessSummary {
        let pool = self.pool.lock().expect("pool stats");
        HarnessSummary {
            wall_ms: self.start.elapsed().as_millis() as u64,
            utilization_pct: 100.0 * pool.utilization(),
            workers: pool.workers.len(),
            compiles: self.compiles_done.get(),
            sims: self.sims_done.get(),
            sim_cycles: self.sim_cycles.get(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            stragglers: pool
                .stragglers(STRAGGLER_TOP_K)
                .into_iter()
                .map(|t| (t.label.clone(), t.wall_ns / 1_000_000))
                .collect(),
        }
    }
}

/// The harness observability hub: hands out the [`PoolObserver`],
/// receives the per-task events from the executors, and owns the
/// monitor thread plus the `harness.jsonl` writer.
///
/// A disabled harness ([`Harness::disabled`]) is a guaranteed no-op:
/// every method early-returns, so instrumented code paths pay one
/// `Option` check when observability is off.
pub struct Harness {
    shared: Option<Arc<HarnessShared>>,
    monitor: Mutex<Option<Monitor>>,
}

impl Harness {
    /// A no-op harness: nothing is recorded, nothing is rendered.
    pub fn disabled() -> Harness {
        Harness {
            shared: None,
            monitor: Mutex::new(None),
        }
    }

    /// Opens the configured sinks and spawns the monitor thread. With
    /// no sink enabled this returns [`Harness::disabled`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if `--harness-out` (or its parent
    /// directory) cannot be created.
    pub fn start(opts: &HarnessOptions) -> std::io::Result<Harness> {
        if !opts.enabled() {
            return Ok(Harness::disabled());
        }
        let out = match &opts.out {
            None => None,
            Some(path) => {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)?;
                }
                Some(std::io::BufWriter::new(std::fs::File::create(path)?))
            }
        };
        let registry = Arc::new(MetricsRegistry::new());
        let shared = Arc::new(HarnessShared {
            start: Instant::now(),
            progress: opts.progress,
            registry: Arc::clone(&registry),
            out: Mutex::new(out),
            compiles_total: registry.counter("harness.compiles.total"),
            compiles_done: registry.counter("harness.compiles.done"),
            sims_total: registry.counter("harness.sims.total"),
            sims_done: registry.counter("harness.sims.done"),
            sim_cycles: registry.counter("harness.sim.cycles"),
            tasks_started: registry.counter("harness.tasks.started"),
            queue_depth: registry.gauge("harness.queue.depth"),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            pool: Mutex::new(PoolStats::default()),
        });
        let sampler = Arc::clone(&shared);
        let monitor = Monitor::spawn(
            registry,
            Duration::from_millis(opts.period_ms.max(1)),
            move |s| sampler.on_sample(s),
        );
        Ok(Harness {
            shared: Some(shared),
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// True when some sink is recording.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The pool observer to pass to
    /// [`crate::jobs::parallel_map_observed`] (`None` when disabled).
    pub fn observer(&self) -> Option<&dyn PoolObserver> {
        self.shared.as_ref().map(|_| self as &dyn PoolObserver)
    }

    /// Records what the planner decided and arms the progress totals:
    /// `compiles` prep tasks (compiles + potential studies) and `sims`
    /// simulations, plus free-form accounting fields for the `plan`
    /// event.
    pub fn plan(&self, compiles: u64, sims: u64, detail: &[(&str, u64)]) {
        let Some(shared) = &self.shared else { return };
        shared.compiles_total.add(compiles);
        shared.sims_total.add(sims);
        let mut w = shared.line_begin("plan");
        w.key("compiles").u64_val(compiles);
        w.key("sims").u64_val(sims);
        for (name, value) in detail {
            w.key(name).u64_val(*value);
        }
        shared.emit_line(w);
    }

    /// A labeled task began. `phase` is `compile`, `potential`, `sim`,
    /// or `profile`; the label carries the point identity
    /// (workload × config-hash × phase).
    pub fn task_start(&self, phase: &str, label: &str) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin(&format!("{phase}_start"));
        w.key("label").str_val(label);
        shared.emit_line(w);
    }

    /// A labeled task finished after `wall_ms`; simulations also
    /// report their simulated `cycles` (which feeds the aggregate
    /// Mcycles/sec rate in `--progress`).
    pub fn task_finish(&self, phase: &str, label: &str, wall_ms: u64, cycles: Option<u64>) {
        let Some(shared) = &self.shared else { return };
        if phase == "sim" {
            shared.sims_done.inc();
        } else {
            shared.compiles_done.inc();
        }
        if let Some(cycles) = cycles {
            shared.sim_cycles.add(cycles);
        }
        let mut w = shared.line_begin(&format!("{phase}_finish"));
        w.key("label").str_val(label);
        w.key("wall_ms").u64_val(wall_ms);
        if let Some(cycles) = cycles {
            w.key("cycles").u64_val(cycles);
        }
        shared.emit_line(w);
    }

    /// Records a simulation-state snapshot crossing the host boundary:
    /// `action` is `save` or `restore`, `cycle` the simulated cycle
    /// the snapshot captures, `path` where it lives. Additive under
    /// `harness_v: 1` like every event kind.
    pub fn snapshot(&self, action: &str, workload: &str, cycle: u64, path: &str) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("snapshot");
        w.key("action").str_val(action);
        w.key("workload").str_val(workload);
        w.key("cycle").u64_val(cycle);
        w.key("path").str_val(path);
        shared.emit_line(w);
    }

    /// Records a completed determinism fingerprint: the final chain
    /// `hash` (16-digit hex) over `cycles` simulated cycles, with
    /// `windows` sealed window digests behind it.
    pub fn fingerprint(&self, workload: &str, windows: u64, cycles: u64, hash: &str) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("fingerprint");
        w.key("workload").str_val(workload);
        w.key("windows").u64_val(windows);
        w.key("cycles").u64_val(cycles);
        w.key("hash").str_val(hash);
        shared.emit_line(w);
    }

    /// Records the compile-cache hit/miss counters (cumulative for the
    /// run) and emits a `compile_cache` event.
    pub fn compile_cache(&self, hits: u64, misses: u64) {
        let Some(shared) = &self.shared else { return };
        shared.cache_hits.store(hits, Ordering::Relaxed);
        shared.cache_misses.store(misses, Ordering::Relaxed);
        let mut w = shared.line_begin("compile_cache");
        w.key("hits").u64_val(hits);
        w.key("misses").u64_val(misses);
        shared.emit_line(w);
    }

    /// Records a service request entering execution: its session-local
    /// `id`, the protocol `op` (`submit`), and a free-form `detail`
    /// (experiment name or workload spec). Emit-only — requests are
    /// tracked per-session, not against the run's task totals.
    pub fn request_start(&self, id: u64, op: &str, detail: &str) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("request_start");
        w.key("id").u64_val(id);
        w.key("op").str_val(op);
        w.key("detail").str_val(detail);
        shared.emit_line(w);
    }

    /// Records a service request completing: `status` is `done` or
    /// `error`, `wall_ms` the host time from dequeue to completion,
    /// `points` the simulation points the request asked for (before
    /// cross-request dedup). Emit-only, like [`Harness::request_start`].
    pub fn request_finish(&self, id: u64, status: &str, wall_ms: u64, points: u64) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("request_finish");
        w.key("id").u64_val(id);
        w.key("status").str_val(status);
        w.key("wall_ms").u64_val(wall_ms);
        w.key("points").u64_val(points);
        shared.emit_line(w);
    }

    /// Records the engine's simulation-result-cache counters
    /// (cumulative for the engine's lifetime) as a `result_cache`
    /// event. Emit-only: unlike [`Harness::compile_cache`] these do
    /// not feed the run summary, since a long-lived engine outlives
    /// any one harness session.
    pub fn result_cache(&self, hits: u64, misses: u64, evictions: u64) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("result_cache");
        w.key("hits").u64_val(hits);
        w.key("misses").u64_val(misses);
        w.key("evictions").u64_val(evictions);
        shared.emit_line(w);
    }

    /// Folds one observed map's [`PoolStats`] into the run accounting
    /// and emits a `pool` event with the per-worker busy/idle split.
    pub fn pool(&self, phase: &str, stats: &PoolStats) {
        let Some(shared) = &self.shared else { return };
        let mut w = shared.line_begin("pool");
        w.key("phase").str_val(phase);
        w.key("jobs").u64_val(stats.jobs as u64);
        w.key("wall_ms").u64_val(stats.wall_ns / 1_000_000);
        w.key("utilization").f64_val(stats.utilization());
        w.key("workers").arr_begin();
        for worker in &stats.workers {
            w.obj_begin();
            w.key("worker").u64_val(worker.worker as u64);
            w.key("busy_ns").u64_val(worker.busy_ns);
            w.key("idle_ns").u64_val(worker.idle_ns);
            w.key("wall_ns").u64_val(worker.wall_ns);
            w.key("tasks").u64_val(worker.tasks);
            w.obj_end();
        }
        w.arr_end();
        shared.emit_line(w);
        shared.pool.lock().expect("pool stats").merge(stats);
    }

    /// Stops the monitor (delivering its final sample), emits the
    /// `harness_summary` event, flushes the file, and returns the
    /// summary — `None` when disabled.
    pub fn finish(&self) -> Option<HarnessSummary> {
        if let Some(monitor) = self.monitor.lock().expect("monitor").take() {
            monitor.stop();
        }
        let shared = self.shared.as_ref()?;
        let summary = shared.summary();
        let mut w = shared.line_begin("harness_summary");
        w.key("wall_ms").u64_val(summary.wall_ms);
        w.key("utilization_pct").f64_val(summary.utilization_pct);
        w.key("workers").u64_val(summary.workers as u64);
        w.key("compiles").u64_val(summary.compiles);
        w.key("sims").u64_val(summary.sims);
        w.key("sim_cycles").u64_val(summary.sim_cycles);
        w.key("cache_hits").u64_val(summary.cache_hits);
        w.key("cache_misses").u64_val(summary.cache_misses);
        w.key("stragglers").arr_begin();
        for (label, wall_ms) in &summary.stragglers {
            w.obj_begin();
            w.key("label").str_val(label);
            w.key("wall_ms").u64_val(*wall_ms);
            w.obj_end();
        }
        w.arr_end();
        shared.emit_line(w);
        if let Some(file) = shared.out.lock().expect("harness out").as_mut() {
            let _ = file.flush();
        }
        Some(summary)
    }
}

impl PoolObserver for Harness {
    fn task_started(&self, _worker: usize, _index: usize, _label: &str) {
        let Some(shared) = &self.shared else { return };
        shared.tasks_started.inc();
        let total = shared.compiles_total.get() + shared.sims_total.get();
        let pending = total.saturating_sub(shared.tasks_started.get());
        shared.queue_depth.set(pending as f64);
    }

    fn task_finished(&self, worker: usize, _index: usize, _label: &str, wall_ns: u64) {
        let Some(shared) = &self.shared else { return };
        shared
            .registry
            .counter(&format!("pool.worker{worker}.busy_ns"))
            .add(wall_ns);
        shared.registry.counter("pool.tasks.done").inc();
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        // A dropped-but-unfinished harness still stops its monitor
        // (Monitor's own Drop joins); the summary event is only
        // emitted by an explicit `finish`.
        if let Ok(mut monitor) = self.monitor.lock() {
            monitor.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_is_a_no_op() {
        let h = Harness::disabled();
        assert!(!h.enabled());
        assert!(h.observer().is_none());
        h.plan(3, 5, &[("specs", 1)]);
        h.task_start("sim", "sim:ccr:x");
        h.task_finish("sim", "sim:ccr:x", 12, Some(1000));
        h.snapshot("save", "x", 5000, "/tmp/x.snap.jsonl");
        h.fingerprint("x", 3, 200_000, "00c0ffee00c0ffee");
        h.compile_cache(1, 2);
        h.request_start(1, "submit", "fig4");
        h.request_finish(1, "done", 40, 7);
        h.result_cache(3, 4, 0);
        h.pool("sim", &PoolStats::default());
        assert!(h.finish().is_none());
    }

    #[test]
    fn options_enable_logic() {
        assert!(!HarnessOptions::default().enabled());
        assert!(HarnessOptions {
            progress: ProgressMode::Plain,
            ..HarnessOptions::default()
        }
        .enabled());
        assert!(HarnessOptions {
            out: Some(PathBuf::from("/tmp/x.jsonl")),
            ..HarnessOptions::default()
        }
        .enabled());
        assert_eq!(ProgressMode::parse("plain"), Some(ProgressMode::Plain));
        assert_eq!(ProgressMode::parse("json"), Some(ProgressMode::Json));
        assert_eq!(ProgressMode::parse("loud"), None);
    }

    #[test]
    fn file_sink_records_versioned_events_and_summary() {
        let dir = std::env::temp_dir().join(format!(
            "ccr-harness-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("harness.jsonl");
        let h = Harness::start(&HarnessOptions {
            progress: ProgressMode::Off,
            out: Some(path.clone()),
            period_ms: 10_000, // only the final monitor sample fires
        })
        .expect("start harness");
        assert!(h.enabled());
        h.plan(2, 4, &[("jobs", 8)]);
        h.task_start("compile", "compile:bitcount:train");
        h.task_finish("compile", "compile:bitcount:train", 3, None);
        h.task_finish("sim", "sim:ccr:bitcount:abc", 7, Some(12345));
        h.snapshot("save", "bitcount", 64_000, "runs/bitcount.snap.jsonl");
        h.fingerprint("bitcount", 2, 130_000, "0123456789abcdef");
        h.compile_cache(5, 2);
        h.request_start(1, "submit", "fig4");
        h.request_finish(1, "done", 11, 7);
        h.result_cache(3, 4, 1);
        let summary = h.finish().expect("enabled harness summarizes");
        assert_eq!(summary.compiles, 1);
        assert_eq!(summary.sims, 1);
        assert_eq!(summary.sim_cycles, 12345);
        assert_eq!(summary.cache_hits, 5);
        assert!((summary.cache_hit_pct() - 100.0 * 5.0 / 7.0).abs() < 1e-9);

        let text = std::fs::read_to_string(&path).expect("harness.jsonl written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.iter().all(|l| l.starts_with("{\"harness_v\":1,")),
            "every line is version-tagged: {lines:#?}"
        );
        for ev in [
            "\"ev\":\"plan\"",
            "\"ev\":\"compile_start\"",
            "\"ev\":\"compile_finish\"",
            "\"ev\":\"sim_finish\"",
            "\"ev\":\"snapshot\"",
            "\"ev\":\"fingerprint\"",
            "\"ev\":\"compile_cache\"",
            "\"ev\":\"request_start\"",
            "\"ev\":\"request_finish\"",
            "\"ev\":\"result_cache\"",
            "\"ev\":\"monitor\"",
            "\"ev\":\"harness_summary\"",
        ] {
            assert!(text.contains(ev), "missing {ev} in:\n{text}");
        }
        // The monitor's final sample observed the armed totals.
        assert!(text.contains("\"harness.sims.total\":4"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_accounting_feeds_utilization_and_stragglers() {
        let dir = std::env::temp_dir().join(format!(
            "ccr-harness-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("harness.jsonl");
        let h = Harness::start(&HarnessOptions {
            progress: ProgressMode::Off,
            out: Some(path.clone()),
            period_ms: 10_000,
        })
        .expect("start harness");
        let items: Vec<u64> = vec![30, 1, 2];
        let labels: Vec<String> = items.iter().map(|x| format!("sim:w{x}")).collect();
        let (_, stats) =
            crate::jobs::parallel_map_observed(&items, 2, Some(&labels), h.observer(), |_, x| {
                std::thread::sleep(Duration::from_millis(*x))
            });
        h.pool("sim", &stats);
        let summary = h.finish().expect("summary");
        assert_eq!(summary.workers, 2);
        assert!(summary.utilization_pct > 0.0);
        assert_eq!(summary.stragglers.len(), 3);
        assert_eq!(summary.stragglers[0].0, "sim:w30", "slowest point leads");
        let text = std::fs::read_to_string(&path).expect("written");
        assert!(text.contains("\"ev\":\"pool\""), "{text}");
        assert!(text.contains("\"busy_ns\":"), "{text}");
        // The observer fed per-worker counters into the registry, so
        // the monitor's final sample carries them too.
        assert!(text.contains("pool.worker0.busy_ns"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

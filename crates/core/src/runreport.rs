//! The run report: a versioned JSON serialization of one full
//! measurement — machine and CRB configuration, run provenance,
//! per-pass compile statistics, baseline and CCR [`SimStats`], and
//! per-region dynamics.
//!
//! The report schema is versioned by [`REPORT_SCHEMA_VERSION`]
//! (`schema_version` at the top level, independent of the per-event
//! `"v"` tag from [`ccr_telemetry::SCHEMA_VERSION`]); consumers
//! should reject versions they do not know. Version history:
//!
//! * **1** — initial report (PR 1), no provenance block.
//! * **2** — adds `provenance` (argv, machine/CRB config hash, crate
//!   version) so `ccr diff` can refuse incomparable runs. Readers
//!   (`ccr-analyze`) keep a v1 path: a v1 report simply has no
//!   provenance.
//! * **3** — adds CRB miss-cause counters (`miss_cold` … in the `crb`
//!   block and per-region entries) and an `attribution` key in each
//!   phase's stats (a cycle breakdown object for profiled runs, else
//!   `null`). Readers keep v1/v2 paths: the new keys simply read as
//!   absent.
//! * **4** — adds `git_commit` to the provenance block (best-effort
//!   `git rev-parse HEAD`, `"unknown"` outside a checkout) so the
//!   cross-run store can key records by commit. Readers keep the
//!   v1–v3 paths: an absent `git_commit` reads as unknown.
//!
//! All counters are serialized as the exact integers the simulator
//! reported, so a report agrees byte-for-byte with the plain-text
//! tables rendered from the same run.

use ccr_regions::RegionInfo;
use ccr_sim::{CrbConfig, MachineConfig, Replacement, SimStats};
use ccr_telemetry::{emit, JsonWriter, TelemetrySink};

use crate::compile::CompileTelemetry;
use crate::measure::Measurement;

/// Version of the run-report JSON schema (`schema_version`).
pub const REPORT_SCHEMA_VERSION: u32 = 4;

/// The current git commit id, resolved once per process via
/// `git rev-parse HEAD` in the working directory. Returns `"unknown"`
/// when git is unavailable, the directory is not a checkout, or the
/// output is not a well-formed hex id — provenance is best-effort and
/// must never fail a run.
pub fn git_commit_id() -> &'static str {
    static COMMIT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    COMMIT.get_or_init(|| {
        let out = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output();
        match out {
            Ok(out) if out.status.success() => {
                let id = String::from_utf8_lossy(&out.stdout).trim().to_string();
                if !id.is_empty() && id.bytes().all(|b| b.is_ascii_hexdigit()) {
                    id
                } else {
                    "unknown".to_string()
                }
            }
            _ => "unknown".to_string(),
        }
    })
}

/// Where a report came from: enough to decide whether two runs are
/// comparable (same code, same simulated hardware) before diffing
/// their numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// The CLI argument vector that produced the run (empty for
    /// library-driven runs).
    pub argv: Vec<String>,
    /// FNV-1a hash of the serialized machine + CRB configuration
    /// (see [`config_hash`]), as fixed-width hex.
    pub config_hash: String,
    /// `ccr-core` crate version that produced the report.
    pub crate_version: String,
    /// Git commit id of the checkout that produced the run
    /// ([`git_commit_id`]), `"unknown"` outside a checkout.
    pub git_commit: String,
}

impl Provenance {
    /// Builds provenance for a run of `machine` + `crb` launched with
    /// `argv` (pass the post-binary-name CLI words; empty is fine).
    pub fn new(argv: &[String], machine: &MachineConfig, crb: &CrbConfig) -> Provenance {
        Provenance {
            argv: argv.to_vec(),
            config_hash: config_hash(machine, crb),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            git_commit: git_commit_id().to_string(),
        }
    }
}

/// A stable fingerprint of the simulated configuration: FNV-1a (64)
/// over the canonical JSON of the machine and CRB blocks, rendered as
/// 16 hex digits. Two runs with equal hashes simulated identical
/// hardware; comparing runs with different hashes compares apples to
/// oranges.
pub fn config_hash(machine: &MachineConfig, crb: &CrbConfig) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("machine");
    machine_json(&mut w, machine);
    w.key("crb");
    crb_json(&mut w, crb);
    w.obj_end();
    fnv1a_hex(w.finish().as_bytes())
}

/// FNV-1a (64-bit) over `bytes`, rendered as 16 hex digits — the hash
/// behind [`config_hash`] and the experiment planner's point keys
/// (`ccr_bench::exp`).
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Emits compile-time telemetry as events: one `pass` event per
/// optimizer pass, one `formation_reject` event per rejection reason,
/// and a `formation` summary.
pub fn emit_compile_events(telemetry: &CompileTelemetry, sink: &mut dyn TelemetrySink) {
    for rec in &telemetry.passes {
        emit!(sink, "pass",
            pass: rec.pass,
            wall_us: rec.wall_us,
            changes: rec.changes,
            instrs_before: rec.instrs_before,
            instrs_after: rec.instrs_after,
            blocks_before: rec.blocks_before,
            blocks_after: rec.blocks_after,
        );
    }
    for (reason, count) in telemetry.formation.rejections() {
        emit!(sink, "formation_reject", reason: reason, count: count);
    }
    emit!(sink, "formation",
        candidates: telemetry.formation.candidates,
        accepted: telemetry.formation.accepted,
        rejected: telemetry.formation.rejected_total(),
    );
}

/// Everything one run produced, borrowed for serialization.
pub struct RunReport<'a> {
    /// Workload name (benchmark or file path).
    pub workload: &'a str,
    /// Input set the target was built with (`train` / `ref`).
    pub input: &'a str,
    /// Workload scale factor.
    pub scale: u32,
    /// The simulated machine.
    pub machine: &'a MachineConfig,
    /// The CRB geometry.
    pub crb: &'a CrbConfig,
    /// Compile-time telemetry (pass records, formation stats).
    pub compile: &'a CompileTelemetry,
    /// Metadata of the formed regions.
    pub regions: &'a [RegionInfo],
    /// The baseline-vs-CCR measurement.
    pub measurement: &'a Measurement,
    /// Run provenance (argv, config hash, crate version).
    pub provenance: &'a Provenance,
}

impl RunReport<'_> {
    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("schema_version")
            .u64_val(u64::from(REPORT_SCHEMA_VERSION));
        w.key("workload").str_val(self.workload);
        w.key("input").str_val(self.input);
        w.key("scale").u64_val(u64::from(self.scale));

        w.key("provenance").obj_begin();
        w.key("argv").arr_begin();
        for arg in &self.provenance.argv {
            w.str_val(arg);
        }
        w.arr_end();
        w.key("config_hash").str_val(&self.provenance.config_hash);
        w.key("crate_version")
            .str_val(&self.provenance.crate_version);
        w.key("git_commit").str_val(&self.provenance.git_commit);
        w.obj_end();

        w.key("machine");
        machine_json(&mut w, self.machine);
        w.key("crb");
        crb_json(&mut w, self.crb);

        w.key("compile").obj_begin();
        w.key("passes").arr_begin();
        for rec in &self.compile.passes {
            w.obj_begin();
            w.key("pass").str_val(rec.pass);
            w.key("wall_us").u64_val(rec.wall_us);
            w.key("changes").u64_val(rec.changes as u64);
            w.key("instrs_before").u64_val(rec.instrs_before as u64);
            w.key("instrs_after").u64_val(rec.instrs_after as u64);
            w.key("blocks_before").u64_val(rec.blocks_before as u64);
            w.key("blocks_after").u64_val(rec.blocks_after as u64);
            w.obj_end();
        }
        w.arr_end();
        w.key("formation").obj_begin();
        w.key("candidates")
            .u64_val(self.compile.formation.candidates);
        w.key("accepted").u64_val(self.compile.formation.accepted);
        w.key("rejected").obj_begin();
        for (reason, count) in self.compile.formation.rejections() {
            w.key(reason).u64_val(count);
        }
        w.obj_end();
        w.obj_end();
        w.obj_end();

        w.key("regions").u64_val(self.regions.len() as u64);
        w.key("base");
        sim_stats_json(&mut w, &self.measurement.base.stats);
        w.key("ccr");
        sim_stats_json(&mut w, &self.measurement.ccr.stats);
        w.key("speedup").f64_val(self.measurement.speedup());
        w.key("eliminated_fraction")
            .f64_val(self.measurement.eliminated_fraction());
        w.obj_end();
        w.finish()
    }
}

fn machine_json(w: &mut JsonWriter, m: &MachineConfig) {
    w.obj_begin();
    w.key("issue_width").u64_val(u64::from(m.issue_width));
    w.key("int_alus").u64_val(u64::from(m.int_alus));
    w.key("mem_ports").u64_val(u64::from(m.mem_ports));
    w.key("fp_alus").u64_val(u64::from(m.fp_alus));
    w.key("branch_units").u64_val(u64::from(m.branch_units));
    w.key("int_latency").u64_val(m.int_latency);
    w.key("mul_latency").u64_val(m.mul_latency);
    w.key("fp_latency").u64_val(m.fp_latency);
    w.key("load_latency").u64_val(m.load_latency);
    for (name, c) in [("icache", &m.icache), ("dcache", &m.dcache)] {
        w.key(name).obj_begin();
        w.key("size_bytes").u64_val(c.size_bytes);
        w.key("line_bytes").u64_val(c.line_bytes);
        w.key("miss_penalty").u64_val(c.miss_penalty);
        w.obj_end();
    }
    w.key("btb_entries").u64_val(m.btb_entries as u64);
    w.key("mispredict_penalty").u64_val(m.mispredict_penalty);
    w.key("reuse_hit_latency").u64_val(m.reuse_hit_latency);
    w.key("reuse_miss_penalty").u64_val(m.reuse_miss_penalty);
    w.key("speculative_validation")
        .bool_val(m.speculative_validation);
    w.obj_end();
}

fn crb_json(w: &mut JsonWriter, c: &CrbConfig) {
    w.obj_begin();
    w.key("entries").u64_val(c.entries as u64);
    w.key("instances").u64_val(c.instances as u64);
    w.key("input_bank").u64_val(c.input_bank as u64);
    w.key("output_bank").u64_val(c.output_bank as u64);
    w.key("replacement").str_val(match c.replacement {
        Replacement::Lru => "lru",
        Replacement::Fifo => "fifo",
        Replacement::Random => "random",
    });
    match c.nonuniform {
        None => {
            w.key("nonuniform").null_val();
        }
        Some(nu) => {
            w.key("nonuniform").obj_begin();
            w.key("boost_every").u64_val(nu.boost_every as u64);
            w.key("boosted_instances")
                .u64_val(nu.boosted_instances as u64);
            w.key("mem_capable_percent")
                .u64_val(u64::from(nu.mem_capable_percent));
            w.obj_end();
        }
    }
    w.obj_end();
}

fn sim_stats_json(w: &mut JsonWriter, s: &SimStats) {
    w.obj_begin();
    w.key("cycles").u64_val(s.cycles);
    w.key("dyn_instrs").u64_val(s.dyn_instrs);
    w.key("skipped_instrs").u64_val(s.skipped_instrs);
    w.key("icache_hits").u64_val(s.icache_hits);
    w.key("icache_misses").u64_val(s.icache_misses);
    w.key("dcache_hits").u64_val(s.dcache_hits);
    w.key("dcache_misses").u64_val(s.dcache_misses);
    w.key("branch_correct").u64_val(s.branch_correct);
    w.key("branch_mispredicts").u64_val(s.branch_mispredicts);
    w.key("reuse_hits").u64_val(s.reuse_hits);
    w.key("reuse_misses").u64_val(s.reuse_misses);
    w.key("crb").obj_begin();
    w.key("lookups").u64_val(s.crb.lookups);
    w.key("hits").u64_val(s.crb.hits);
    w.key("misses").u64_val(s.crb.misses);
    w.key("miss_cold").u64_val(s.crb.miss_cold);
    w.key("miss_mismatch").u64_val(s.crb.miss_mismatch);
    w.key("miss_capacity").u64_val(s.crb.miss_capacity);
    w.key("miss_conflict").u64_val(s.crb.miss_conflict);
    w.key("miss_invalidated").u64_val(s.crb.miss_invalidated);
    w.key("records").u64_val(s.crb.records);
    w.key("invalidations").u64_val(s.crb.invalidations);
    w.key("entry_conflicts").u64_val(s.crb.entry_conflicts);
    w.obj_end();
    let mut regions: Vec<_> = s.regions.iter().map(|(id, rs)| (*id, *rs)).collect();
    regions.sort_by_key(|(id, _)| id.index());
    w.key("regions").arr_begin();
    for (id, rs) in regions {
        w.obj_begin();
        w.key("region").u64_val(id.index() as u64);
        w.key("hits").u64_val(rs.hits);
        w.key("misses").u64_val(rs.misses);
        w.key("miss_cold").u64_val(rs.miss_cold);
        w.key("miss_mismatch").u64_val(rs.miss_mismatch);
        w.key("miss_capacity").u64_val(rs.miss_capacity);
        w.key("miss_conflict").u64_val(rs.miss_conflict);
        w.key("miss_invalidated").u64_val(rs.miss_invalidated);
        w.key("skipped_instrs").u64_val(rs.skipped_instrs);
        w.obj_end();
    }
    w.arr_end();
    w.key("effective_ipc").f64_val(s.effective_ipc());
    match &s.attribution {
        None => {
            w.key("attribution").null_val();
        }
        Some(attr) => {
            w.key("attribution");
            attribution_json(w, attr);
        }
    }
    w.obj_end();
}

fn buckets_json(w: &mut JsonWriter, b: &ccr_sim::CycleBuckets) {
    w.obj_begin();
    w.key("issue").u64_val(b.issue);
    w.key("fetch").u64_val(b.fetch);
    w.key("memory").u64_val(b.memory);
    w.key("reuse_hit").u64_val(b.reuse_hit);
    w.key("drain").u64_val(b.drain);
    w.obj_end();
}

fn attribution_json(w: &mut JsonWriter, attr: &ccr_sim::Attribution) {
    w.obj_begin();
    w.key("total");
    buckets_json(w, &attr.total);
    w.key("functions").arr_begin();
    for f in &attr.functions {
        w.obj_begin();
        w.key("name").str_val(&f.name);
        w.key("cycles").u64_val(f.buckets.total());
        w.key("buckets");
        buckets_json(w, &f.buckets);
        w.obj_end();
    }
    w.arr_end();
    w.key("regions").arr_begin();
    for (id, cycles) in &attr.regions {
        w.obj_begin();
        w.key("region").u64_val(id.index() as u64);
        w.key("cycles").u64_val(*cycles);
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_ccr, CompileConfig};
    use crate::measure::measure;
    use ccr_profile::EmuConfig;
    use ccr_telemetry::SummarySink;
    use ccr_workloads::{build, InputSet};

    #[test]
    fn run_report_serializes_the_whole_measurement() {
        let p = build("008.espresso", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let machine = MachineConfig::paper();
        let crb = CrbConfig::paper();
        let m = measure(&cw, &machine, crb, EmuConfig::default()).unwrap();
        let argv = vec!["run".to_string(), "008.espresso".to_string()];
        let provenance = Provenance::new(&argv, &machine, &crb);
        let report = RunReport {
            workload: "008.espresso",
            input: "train",
            scale: 1,
            machine: &machine,
            crb: &crb,
            compile: &cw.telemetry,
            regions: &cw.regions,
            measurement: &m,
            provenance: &provenance,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"schema_version\":4,"), "{json}");
        assert!(
            json.contains(&format!("\"git_commit\":\"{}\"", provenance.git_commit)),
            "{json}"
        );
        assert!(json.contains("\"miss_cold\":"), "{json}");
        assert!(
            json.contains("\"attribution\":null"),
            "unprofiled runs carry a null attribution"
        );
        assert!(
            json.contains(&format!(
                "\"provenance\":{{\"argv\":[\"run\",\"008.espresso\"],\"config_hash\":\"{}\"",
                provenance.config_hash
            )),
            "{json}"
        );
        // The serialized counters are the exact integers the simulator
        // reported — the same digits the text tables print.
        assert!(json.contains(&format!("\"cycles\":{}", m.base.stats.cycles)));
        assert!(json.contains(&format!("\"cycles\":{}", m.ccr.stats.cycles)));
        assert!(json.contains(&format!("\"reuse_hits\":{}", m.ccr.stats.reuse_hits)));
        assert!(json.contains("\"replacement\":\"lru\""));
        assert!(json.contains("\"issue_width\":6"));
        assert!(json.contains(&format!("\"regions\":{}", cw.regions.len())));
        // Balanced braces and brackets (cheap well-formedness check:
        // no strings in the report contain structural characters).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn config_hash_distinguishes_configurations() {
        let machine = MachineConfig::paper();
        let a = config_hash(&machine, &CrbConfig::paper());
        let b = config_hash(&machine, &CrbConfig::paper());
        assert_eq!(a, b, "hash must be deterministic");
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        let c = config_hash(&machine, &CrbConfig::with_entries(32));
        assert_ne!(a, c, "different CRB geometry must change the hash");
        let mut wide = machine;
        wide.issue_width += 1;
        let d = config_hash(&wide, &CrbConfig::paper());
        assert_ne!(a, d, "different machine must change the hash");
    }

    #[test]
    fn git_commit_id_is_hex_or_unknown() {
        let id = git_commit_id();
        assert!(
            id == "unknown" || (id.len() == 40 && id.bytes().all(|b| b.is_ascii_hexdigit())),
            "unexpected commit id {id:?}"
        );
        // Cached: a second call returns the same value.
        assert_eq!(git_commit_id(), id);
    }

    #[test]
    fn compile_events_mirror_the_telemetry() {
        let p = build("008.espresso", InputSet::Train, 1).unwrap();
        let cw = compile_ccr(&p, &p, &CompileConfig::paper()).unwrap();
        let mut sink = SummarySink::new();
        emit_compile_events(&cw.telemetry, &mut sink);
        assert_eq!(sink.count("pass"), cw.telemetry.passes.len() as u64);
        assert_eq!(sink.count("formation"), 1);
        assert_eq!(
            sink.sum("formation", "candidates") as u64,
            cw.telemetry.formation.candidates
        );
        assert_eq!(
            sink.sum("formation_reject", "count") as u64,
            cw.telemetry.formation.rejected_total()
        );
    }
}

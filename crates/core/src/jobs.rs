//! A dependency-free scoped-thread job pool for the evaluation
//! harness.
//!
//! The paper's evaluation sweeps 13 benchmarks × many CRB
//! configurations; every simulation is independent, so the suite
//! parallelizes embarrassingly well. This module provides the one
//! primitive the harness needs — an order-preserving parallel map —
//! built on `std::thread::scope`, so the workspace stays free of
//! external dependencies (matching the vendored-shim policy).
//!
//! Parallelism is strictly a *host* concern: each work item runs the
//! exact same deterministic simulation it would run serially, and
//! results are collected back in input order, so every simulated
//! statistic is bit-identical regardless of the job count. Only wall
//! clock changes.
//!
//! The pool is also the harness's *observability* boundary:
//! [`parallel_map_observed`] accounts every worker's busy/idle
//! nanoseconds and every task's wall time under a caller-supplied
//! stable label (workload × config-hash × phase), returning them as a
//! [`PoolStats`] summary, and streams start/finish callbacks to an
//! optional [`PoolObserver`] so a monitor thread can render live
//! progress. Observation is passive — it reads clocks and bumps
//! counters around `f`, never inside it — so observed and unobserved
//! maps produce identical results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Environment variable consulted by [`resolve_jobs`] when no
/// explicit `--jobs` value was given.
pub const JOBS_ENV: &str = "CCR_JOBS";

/// Resolves a worker count from an explicit request (a `--jobs` flag)
/// falling back to the `CCR_JOBS` environment variable, then to `1`
/// (serial). A value of `0` means "auto": one worker per available
/// hardware thread.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    let raw = requested.or_else(|| {
        std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
    });
    match raw {
        None => 1,
        Some(0) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n,
    }
}

/// Live callbacks from pool workers, invoked on the worker thread
/// around each task. Implementations must be cheap and lock-light —
/// they run between simulations, not inside them, but a slow observer
/// still serializes the pool.
pub trait PoolObserver: Sync {
    /// A worker picked up item `index` (label per the caller's
    /// labeling, `task<index>` when unlabeled).
    fn task_started(&self, worker: usize, index: usize, label: &str) {
        let _ = (worker, index, label);
    }

    /// A worker finished item `index` after `wall_ns` nanoseconds.
    fn task_finished(&self, worker: usize, index: usize, label: &str, wall_ns: u64) {
        let _ = (worker, index, label, wall_ns);
    }
}

/// One worker's accounting for one [`parallel_map_observed`] call.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// Nanoseconds spent inside `f`.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for work (including the tail wait
    /// after the queue drained). `busy_ns + idle_ns == wall_ns`.
    pub idle_ns: u64,
    /// Nanoseconds the worker existed.
    pub wall_ns: u64,
    /// Tasks this worker completed.
    pub tasks: u64,
}

/// One task's accounting: which worker ran it, for how long, under
/// what label.
#[derive(Clone, Debug)]
pub struct TaskStats {
    /// Item index in the input slice.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// The caller's stable label (`task<index>` when unlabeled).
    pub label: String,
    /// Wall time of the `f` call, nanoseconds.
    pub wall_ns: u64,
}

/// The per-pool summary [`parallel_map_observed`] returns: worker
/// utilization and the per-task critical path.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Workers the pool actually ran (≤ requested jobs).
    pub jobs: usize,
    /// Wall time of the whole map, nanoseconds.
    pub wall_ns: u64,
    /// Per-worker accounting, by worker index.
    pub workers: Vec<WorkerStats>,
    /// Per-task accounting, in item order.
    pub tasks: Vec<TaskStats>,
}

impl PoolStats {
    /// Total nanoseconds workers spent inside `f`.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Fraction of worker lifetime spent busy, `0.0..=1.0` (0.0 for an
    /// empty pool). This is the number a straggler drags down: one
    /// long task at the end of the queue idles every other worker.
    pub fn utilization(&self) -> f64 {
        let wall: u64 = self.workers.iter().map(|w| w.wall_ns).sum();
        if wall == 0 {
            0.0
        } else {
            self.total_busy_ns() as f64 / wall as f64
        }
    }

    /// The `k` longest tasks, descending by wall time (ties broken by
    /// item index, so the ranking is deterministic). These are the
    /// sweep's critical path: scheduling cannot beat the longest task.
    pub fn stragglers(&self, k: usize) -> Vec<&TaskStats> {
        let mut ranked: Vec<&TaskStats> = self.tasks.iter().collect();
        ranked.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.index.cmp(&b.index)));
        ranked.truncate(k);
        ranked
    }

    /// Folds another pool's accounting into this one (worker lists
    /// concatenate; task lists concatenate). Used by the harness to
    /// summarize a run that maps more than once (compiles, then sims).
    pub fn merge(&mut self, other: &PoolStats) {
        self.jobs = self.jobs.max(other.jobs);
        self.wall_ns += other.wall_ns;
        self.workers.extend(other.workers.iter().cloned());
        self.tasks.extend(other.tasks.iter().cloned());
    }
}

/// First panic captured while draining: item index plus rendered
/// payload. The *lowest* item index wins so the report is
/// deterministic under racing panics.
#[derive(Default)]
struct PanicSlot(Mutex<Option<(usize, String)>>);

impl PanicSlot {
    fn record(&self, index: usize, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut slot = self.0.lock().expect("panic slot");
        match &*slot {
            Some((prev, _)) if *prev <= index => {}
            _ => *slot = Some((index, msg)),
        }
    }

    fn take(&self) -> Option<(usize, String)> {
        self.0.lock().expect("panic slot").take()
    }
}

fn label_of(labels: Option<&[String]>, index: usize) -> String {
    match labels {
        Some(labels) => labels[index].clone(),
        None => format!("task{index}"),
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads,
/// returning results in input order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or one item) the
/// map runs serially on the calling thread — the parallel and serial
/// paths call `f` with identical arguments, so a deterministic `f`
/// yields identical results either way. Workers pull items from a
/// shared counter (work stealing), so uneven item costs balance
/// across threads.
///
/// # Panics
///
/// If `f` panics, the remaining items are still drained (every
/// worker finishes its queue), then the panic is re-raised tagged
/// with the failing item's label and index — one bad (workload,
/// config) point names itself instead of surfacing as a bare join
/// error.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_observed(items, jobs, None, None, f).0
}

/// [`parallel_map`] with accounting: `labels` names each item (for
/// task stats, panic reports, and observer callbacks; `task<index>`
/// when `None`), `observer` receives live start/finish callbacks, and
/// the returned [`PoolStats`] summarizes worker busy/idle time and
/// per-task wall time.
///
/// # Panics
///
/// As [`parallel_map`]: drains, then re-raises the first (lowest
/// item index) panic tagged with its label. Panics immediately if
/// `labels` is given with the wrong length.
pub fn parallel_map_observed<T, R, F>(
    items: &[T],
    jobs: usize,
    labels: Option<&[String]>,
    observer: Option<&dyn PoolObserver>,
    f: F,
) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if let Some(labels) = labels {
        assert_eq!(labels.len(), items.len(), "one label per item");
    }
    let n = items.len();
    let pool_start = Instant::now();
    let panicked = PanicSlot::default();
    let task_log: Mutex<Vec<TaskStats>> = Mutex::new(Vec::with_capacity(n));
    let worker_log: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::new());

    // One worker's drain loop, shared verbatim by the serial path
    // (worker 0 on the calling thread) and every spawned thread, so
    // accounting and panic semantics cannot diverge between them.
    let run_worker = |worker: usize, take: &dyn Fn() -> usize, emit: &dyn Fn(usize, R)| {
        let thread_start = Instant::now();
        let mut busy_ns = 0u64;
        let mut tasks = 0u64;
        loop {
            let i = take();
            if i >= n {
                break;
            }
            let label = label_of(labels, i);
            if let Some(obs) = observer {
                obs.task_started(worker, i, &label);
            }
            let task_start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
            let wall_ns = task_start.elapsed().as_nanos() as u64;
            busy_ns += wall_ns;
            tasks += 1;
            if let Some(obs) = observer {
                obs.task_finished(worker, i, &label, wall_ns);
            }
            task_log.lock().expect("task log").push(TaskStats {
                index: i,
                worker,
                label,
                wall_ns,
            });
            match result {
                Ok(r) => emit(i, r),
                Err(payload) => panicked.record(i, payload),
            }
        }
        let wall_ns = thread_start.elapsed().as_nanos() as u64;
        worker_log.lock().expect("worker log").push(WorkerStats {
            worker,
            busy_ns,
            idle_ns: wall_ns.saturating_sub(busy_ns),
            wall_ns,
            tasks,
        });
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if jobs <= 1 || n <= 1 {
        let next = AtomicUsize::new(0);
        let slots_cell = Mutex::new(&mut slots);
        run_worker(0, &|| next.fetch_add(1, Ordering::Relaxed), &|i, r| {
            slots_cell.lock().expect("slots")[i] = Some(r);
        });
    } else {
        let workers = jobs.min(n);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run_worker = &run_worker;
                scope.spawn(move || {
                    run_worker(w, &|| next.fetch_add(1, Ordering::Relaxed), &|i, r| {
                        let _ = tx.send((i, r));
                    });
                });
            }
            drop(tx);
            // Collect out-of-order arrivals into their input-order
            // slots.
            for (i, r) in rx {
                slots[i] = Some(r);
            }
        });
    }

    if let Some((index, msg)) = panicked.take() {
        panic!(
            "job `{}` (item {} of {n}) panicked: {msg}",
            label_of(labels, index),
            index + 1,
        );
    }

    let mut workers = worker_log.into_inner().expect("worker log");
    workers.sort_by_key(|w| w.worker);
    let mut tasks = task_log.into_inner().expect("task log");
    tasks.sort_by_key(|t| t.index);
    let stats = PoolStats {
        jobs: workers.len(),
        wall_ns: pool_start.elapsed().as_nanos() as u64,
        workers,
        tasks,
    };
    let results = slots
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let square = |_i: usize, x: &u64| x * x;
        let serial = parallel_map(&items, 1, square);
        for jobs in [2, 4, 16, 128] {
            assert_eq!(parallel_map(&items, jobs, square), serial, "jobs={jobs}");
        }
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |_, x| *x).is_empty());
        assert_eq!(parallel_map(&[42u32], 8, |i, x| (i, *x)), vec![(0, 42)]);
    }

    #[test]
    fn indexes_match_items() {
        let items: Vec<usize> = (0..57).collect();
        let got = parallel_map(&items, 5, |i, x| {
            assert_eq!(i, *x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn resolve_jobs_defaults_and_auto() {
        // Explicit values win; 0 means auto (at least one worker).
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    fn check_accounting(stats: &PoolStats, items: usize) {
        assert_eq!(stats.tasks.len(), items);
        let tasks_run: u64 = stats.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks_run as usize, items);
        for w in &stats.workers {
            assert_eq!(
                w.busy_ns + w.idle_ns,
                w.wall_ns,
                "worker {}: busy+idle must sum to wall",
                w.worker
            );
        }
        let busy_from_tasks: u64 = stats.tasks.iter().map(|t| t.wall_ns).sum();
        assert_eq!(stats.total_busy_ns(), busy_from_tasks);
        if items > 0 {
            let u = stats.utilization();
            assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        }
    }

    #[test]
    fn pool_stats_busy_plus_idle_sums_to_wall_per_worker() {
        let items: Vec<u64> = (0..40).collect();
        for jobs in [1usize, 4] {
            let (out, stats) = parallel_map_observed(&items, jobs, None, None, |_, x| {
                // Non-trivial busy time so the accounting is visible.
                std::thread::sleep(std::time::Duration::from_micros(200 + x * 10));
                x * 2
            });
            assert_eq!(out.len(), 40);
            assert_eq!(stats.jobs, jobs);
            assert_eq!(stats.workers.len(), jobs);
            check_accounting(&stats, 40);
        }
    }

    #[test]
    fn task_stats_carry_labels_and_stragglers_rank_by_wall() {
        let items: Vec<u64> = vec![1, 50, 2, 3];
        let labels: Vec<String> = items.iter().map(|x| format!("sim:w{x}:ccr")).collect();
        let (_, stats) = parallel_map_observed(&items, 2, Some(&labels), None, |_, x| {
            std::thread::sleep(std::time::Duration::from_micros(*x * 100));
        });
        assert_eq!(stats.tasks[1].label, "sim:w50:ccr");
        assert_eq!(stats.tasks[1].index, 1, "tasks come back in item order");
        let top = stats.stragglers(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].label, "sim:w50:ccr", "slowest task leads");
        assert!(top[0].wall_ns >= top[1].wall_ns);
        // Unlabeled maps synthesize stable labels.
        let (_, stats) = parallel_map_observed(&items, 1, None, None, |_, _| ());
        assert_eq!(stats.tasks[3].label, "task3");
    }

    #[test]
    fn observer_sees_every_task_on_its_worker() {
        use std::sync::atomic::AtomicU64;
        #[derive(Default)]
        struct Spy {
            started: AtomicU64,
            finished: AtomicU64,
            bad: AtomicU64,
        }
        impl PoolObserver for Spy {
            fn task_started(&self, worker: usize, _index: usize, _label: &str) {
                self.started.fetch_add(1, Ordering::Relaxed);
                if worker >= 3 {
                    self.bad.fetch_add(1, Ordering::Relaxed);
                }
            }
            fn task_finished(&self, _worker: usize, index: usize, label: &str, _wall_ns: u64) {
                self.finished.fetch_add(1, Ordering::Relaxed);
                if label != format!("task{index}") {
                    self.bad.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let spy = Spy::default();
        let items: Vec<u32> = (0..25).collect();
        let (out, _) = parallel_map_observed(&items, 3, None, Some(&spy), |_, x| x + 1);
        assert_eq!(out[24], 25);
        assert_eq!(spy.started.load(Ordering::Relaxed), 25);
        assert_eq!(spy.finished.load(Ordering::Relaxed), 25);
        assert_eq!(spy.bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn merged_pools_concatenate_accounting() {
        let items: Vec<u64> = (0..6).collect();
        let (_, mut a) = parallel_map_observed(&items, 2, None, None, |_, _| ());
        let (_, b) = parallel_map_observed(&items, 3, None, None, |_, _| ());
        let wall = a.wall_ns + b.wall_ns;
        a.merge(&b);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.tasks.len(), 12);
        assert_eq!(a.workers.len(), 5);
        assert_eq!(a.wall_ns, wall);
    }

    #[test]
    fn panic_is_tagged_with_its_label_and_the_queue_drains() {
        use std::sync::atomic::AtomicUsize;
        let completed = AtomicUsize::new(0);
        let items: Vec<u32> = (0..20).collect();
        let labels: Vec<String> = (0..20).map(|i| format!("sim:wl{i}:cfg:ccr")).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_observed(&items, 4, Some(&labels), None, |_, x| {
                if *x == 3 {
                    panic!("simulated point failure");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            })
        }))
        .expect_err("the map must propagate the panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic message");
        assert!(msg.contains("sim:wl3:cfg:ccr"), "label in message: {msg}");
        assert!(msg.contains("item 4 of 20"), "position in message: {msg}");
        assert!(msg.contains("simulated point failure"), "cause: {msg}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            19,
            "every other task drained before the panic propagated"
        );
    }

    #[test]
    fn earliest_panicking_item_wins_the_report() {
        let items: Vec<u32> = (0..10).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |_, x| {
                if *x % 2 == 1 {
                    panic!("boom {x}");
                }
            })
        }))
        .expect_err("must propagate");
        let msg = caught.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("`task1`"), "lowest index reported: {msg}");
        assert!(msg.contains("boom 1"), "{msg}");
    }
}

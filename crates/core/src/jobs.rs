//! A dependency-free scoped-thread job pool for the evaluation
//! harness.
//!
//! The paper's evaluation sweeps 13 benchmarks × many CRB
//! configurations; every simulation is independent, so the suite
//! parallelizes embarrassingly well. This module provides the one
//! primitive the harness needs — an order-preserving parallel map —
//! built on `std::thread::scope`, so the workspace stays free of
//! external dependencies (matching the vendored-shim policy).
//!
//! Parallelism is strictly a *host* concern: each work item runs the
//! exact same deterministic simulation it would run serially, and
//! results are collected back in input order, so every simulated
//! statistic is bit-identical regardless of the job count. Only wall
//! clock changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable consulted by [`resolve_jobs`] when no
/// explicit `--jobs` value was given.
pub const JOBS_ENV: &str = "CCR_JOBS";

/// Resolves a worker count from an explicit request (a `--jobs` flag)
/// falling back to the `CCR_JOBS` environment variable, then to `1`
/// (serial). A value of `0` means "auto": one worker per available
/// hardware thread.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    let raw = requested.or_else(|| {
        std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
    });
    match raw {
        None => 1,
        Some(0) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n,
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads,
/// returning results in input order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or one item) the
/// map runs serially on the calling thread — the parallel and serial
/// paths call `f` with identical arguments, so a deterministic `f`
/// yields identical results either way. Workers pull items from a
/// shared counter (work stealing), so uneven item costs balance
/// across threads.
///
/// # Panics
///
/// Propagates the first worker panic after all workers stop.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect out-of-order arrivals into their input-order slots.
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let square = |_i: usize, x: &u64| x * x;
        let serial = parallel_map(&items, 1, square);
        for jobs in [2, 4, 16, 128] {
            assert_eq!(parallel_map(&items, jobs, square), serial, "jobs={jobs}");
        }
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |_, x| *x).is_empty());
        assert_eq!(parallel_map(&[42u32], 8, |i, x| (i, *x)), vec![(0, 42)]);
    }

    #[test]
    fn indexes_match_items() {
        let items: Vec<usize> = (0..57).collect();
        let got = parallel_map(&items, 5, |i, x| {
            assert_eq!(i, *x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn resolve_jobs_defaults_and_auto() {
        // Explicit values win; 0 means auto (at least one worker).
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(Some(0)) >= 1);
    }
}

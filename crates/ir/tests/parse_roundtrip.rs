//! Print→parse→print round-trip over randomly generated programs
//! covering every opcode, operand form, and extension bit.

use ccr_ir::{
    parse_program, BinKind, BlockId, CmpPred, FuncId, Instr, InstrExt, Op, Operand, Program, Reg,
    RegionId, UnKind,
};
use proptest::prelude::*;

const BINS: [BinKind; 17] = [
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::Div,
    BinKind::Rem,
    BinKind::And,
    BinKind::Or,
    BinKind::Xor,
    BinKind::Shl,
    BinKind::Shr,
    BinKind::Sar,
    BinKind::Min,
    BinKind::Max,
    BinKind::FAdd,
    BinKind::FSub,
    BinKind::FMul,
    BinKind::FDiv,
];
const UNS: [UnKind; 5] = [
    UnKind::Mov,
    UnKind::Neg,
    UnKind::Not,
    UnKind::IntToFloat,
    UnKind::FloatToInt,
];
const PREDS: [CmpPred; 6] = [
    CmpPred::Eq,
    CmpPred::Ne,
    CmpPred::Lt,
    CmpPred::Le,
    CmpPred::Gt,
    CmpPred::Ge,
];

/// Encoded instruction recipe: enough entropy to reach every printed
/// form, decoded into a structurally valid (though not necessarily
/// verifiable) program — the parser must round-trip anything the
/// printer can emit.
#[derive(Debug, Clone)]
struct Recipe {
    instrs: Vec<(u8, u8, i64, u8, u8)>,
    exts: Vec<u8>,
    nblocks: u8,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(
            (0u8..12, any::<u8>(), any::<i64>(), any::<u8>(), any::<u8>()),
            1..30,
        ),
        prop::collection::vec(0u8..8, 1..30),
        1u8..5,
    )
        .prop_map(|(instrs, exts, nblocks)| Recipe {
            instrs,
            exts,
            nblocks,
        })
}

fn operand(sel: u8, imm: i64) -> Operand {
    if sel.is_multiple_of(2) {
        Operand::Reg(Reg(u32::from(sel / 2 % 8)))
    } else {
        Operand::Imm(imm)
    }
}

fn decode(r: &Recipe) -> Program {
    let mut program = {
        // Build a minimal program skeleton via the builder, then
        // replace instruction bodies directly.
        let mut pb = ccr_ir::ProgramBuilder::new();
        let _o0 = pb.table("t0", vec![1, 2, 3]);
        let _o1 = pb.object("o1", 4);
        let helper = pb.declare("h", 1, 1);
        let mut hb = pb.function_body(helper);
        let x = hb.param(0);
        hb.ret(&[Operand::Reg(x)]);
        pb.finish_function(hb);
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    };
    let _ = program.fresh_region_id();
    let _ = program.fresh_region_id();
    let nblocks = r.nblocks as u32;
    let main = program.main();
    {
        let func = program.function_mut(main);
        func.reserve_regs(8);
        for _ in 1..nblocks {
            func.add_block();
        }
    }
    let mut instrs: Vec<Instr> = Vec::new();
    for (k, &(kind, sel, imm, aux, aux2)) in r.instrs.iter().enumerate() {
        let a = operand(sel, imm);
        let b = operand(aux, imm.wrapping_mul(3));
        let dst = Reg(u32::from(aux2 % 8));
        let blk = |x: u8| BlockId(u32::from(x) % nblocks);
        let op = match kind {
            0 => Op::Binary {
                kind: BINS[aux as usize % BINS.len()],
                dst,
                lhs: a,
                rhs: b,
            },
            1 => Op::Unary {
                kind: UNS[aux as usize % UNS.len()],
                dst,
                src: a,
            },
            2 => Op::Cmp {
                pred: PREDS[aux as usize % PREDS.len()],
                dst,
                lhs: a,
                rhs: b,
            },
            3 => Op::Load {
                dst,
                object: ccr_ir::MemObjectId(u32::from(aux % 2)),
                addr: a,
                offset: imm % 100,
            },
            4 => Op::Store {
                object: ccr_ir::MemObjectId(1),
                addr: a,
                offset: -(i64::from(aux % 5)),
                value: b,
            },
            5 => Op::Call {
                callee: FuncId(0),
                args: vec![a],
                rets: vec![dst],
            },
            6 => Op::Call {
                callee: FuncId(0),
                args: vec![a],
                rets: vec![],
            },
            7 => Op::Invalidate {
                region: RegionId(u32::from(aux % 2)),
            },
            8 => Op::Nop,
            // Terminators (the printer accepts them anywhere in our
            // raw-construction test; the parser must too).
            9 => Op::Branch {
                pred: PREDS[aux as usize % PREDS.len()],
                lhs: a,
                rhs: b,
                taken: blk(aux),
                not_taken: blk(aux2),
            },
            10 => Op::Jump { target: blk(aux) },
            _ => Op::Reuse {
                region: RegionId(u32::from(aux % 2)),
                body: blk(aux),
                cont: blk(aux2),
            },
        };
        let mut instr = program.new_instr(op);
        let ext_sel = r.exts[k % r.exts.len()];
        let mut ext = InstrExt::NONE;
        if ext_sel & 1 != 0 {
            ext = ext | InstrExt::LIVE_OUT;
        }
        if ext_sel & 2 != 0 {
            ext = ext | InstrExt::REGION_END;
        }
        if ext_sel & 4 != 0 {
            ext = ext | InstrExt::REGION_EXIT;
        }
        instr.ext = ext;
        instrs.push(instr);
    }
    // Distribute instructions over blocks; close each with a ret so
    // blocks are non-empty (the printer does not require terminators,
    // but empty blocks print nothing re-parseable).
    let func = program.function_mut(main);
    for b in 0..nblocks {
        func.block_mut(BlockId(b)).instrs.clear();
    }
    for (k, instr) in instrs.into_iter().enumerate() {
        let b = BlockId(k as u32 % nblocks);
        func.block_mut(b).instrs.push(instr);
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_print_fixpoint(r in recipe()) {
        let p = decode(&r);
        let text = p.to_string();
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(q.to_string(), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: arbitrary input (including multi-byte
    /// UTF-8 and printer-lookalike fragments) returns `Err` rather
    /// than panicking.
    #[test]
    fn parser_never_panics(garbage in ".{0,200}") {
        let _ = parse_program(&garbage);
    }

    /// Near-miss inputs: mutate a valid program's text at one byte.
    #[test]
    fn parser_survives_single_byte_mutations(
        r in recipe(),
        pos_sel in any::<u32>(),
        byte in any::<u8>(),
    ) {
        let p = decode(&r);
        let mut text = p.to_string().into_bytes();
        if text.is_empty() {
            return Ok(());
        }
        let pos = pos_sel as usize % text.len();
        text[pos] = byte;
        // May no longer be UTF-8; parse only when it is.
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse_program(&s);
        }
    }
}

//! Structural and dataflow verification of programs.
//!
//! The verifier enforces the invariants the rest of the framework
//! (analyses, emulator, region former, simulator) relies on:
//!
//! * every block is non-empty, has exactly one terminator, and it is
//!   the last instruction;
//! * all branch targets, callees, objects, and registers are in range;
//! * call argument / result arities match the callee's signature;
//! * no store writes a read-only object;
//! * every register is defined on all paths before it is used
//!   (parameters count as defined on entry).

use std::collections::HashSet;
use std::fmt;

use crate::block::BlockId;
use crate::function::{FuncId, Function};
use crate::instr::{Instr, Op};
use crate::object::MemObjectId;
use crate::program::Program;
use crate::reg::Reg;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the error was found, if any.
    pub func: Option<FuncId>,
    /// Block in which the error was found, if any.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl VerifyError {
    fn new(
        func: Option<FuncId>,
        block: Option<BlockId>,
        message: impl Into<String>,
    ) -> VerifyError {
        VerifyError {
            func,
            block,
            message: message.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.block) {
            (Some(fid), Some(bid)) => write!(f, "{fid}/{bid}: {}", self.message),
            (Some(fid), None) => write!(f, "{fid}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole program.
///
/// # Errors
///
/// Returns the first violated invariant found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    let main = program.main();
    if main.index() >= program.functions().len() {
        return Err(VerifyError::new(None, None, "entry function out of range"));
    }
    if program.function(main).param_count() != 0 {
        return Err(VerifyError::new(
            Some(main),
            None,
            "entry function must take no parameters",
        ));
    }
    for func in program.functions() {
        verify_function(program, func)?;
    }
    Ok(())
}

fn err(f: &Function, b: Option<BlockId>, msg: impl Into<String>) -> VerifyError {
    VerifyError::new(Some(f.id()), b, msg)
}

fn verify_function(program: &Program, func: &Function) -> Result<(), VerifyError> {
    if func.blocks.is_empty() {
        return Err(err(func, None, "function has no blocks"));
    }
    let nblocks = func.blocks.len() as u32;
    for (bid, block) in func.iter_blocks() {
        if block.is_empty() {
            return Err(err(func, Some(bid), "empty block"));
        }
        for (pos, instr) in block.instrs.iter().enumerate() {
            let last = pos + 1 == block.instrs.len();
            if instr.is_terminator() != last {
                return Err(err(
                    func,
                    Some(bid),
                    format!(
                        "instruction {} at position {pos} {}",
                        instr.id,
                        if last {
                            "does not terminate its block"
                        } else {
                            "is a terminator in mid-block"
                        }
                    ),
                ));
            }
            verify_instr(program, func, bid, instr, nblocks)?;
        }
    }
    verify_defined_before_use(func)?;
    Ok(())
}

fn check_object(
    program: &Program,
    func: &Function,
    bid: BlockId,
    object: MemObjectId,
) -> Result<(), VerifyError> {
    if object.index() >= program.objects().len() {
        return Err(err(
            func,
            Some(bid),
            format!("object {object} out of range"),
        ));
    }
    Ok(())
}

fn verify_instr(
    program: &Program,
    func: &Function,
    bid: BlockId,
    instr: &Instr,
    nblocks: u32,
) -> Result<(), VerifyError> {
    for r in instr.src_regs().into_iter().chain(instr.dsts()) {
        if r.0 >= func.reg_limit() {
            return Err(err(
                func,
                Some(bid),
                format!("register {r} exceeds function register limit"),
            ));
        }
    }
    for target in instr.successors() {
        if target.0 >= nblocks {
            return Err(err(
                func,
                Some(bid),
                format!("branch target {target} out of range"),
            ));
        }
    }
    match &instr.op {
        Op::Load { object, .. } => check_object(program, func, bid, *object)?,
        Op::Store { object, .. } => {
            check_object(program, func, bid, *object)?;
            if program.object(*object).is_read_only() {
                return Err(err(
                    func,
                    Some(bid),
                    format!("store to read-only object {object}"),
                ));
            }
        }
        Op::Call { callee, args, rets } => {
            if callee.index() >= program.functions().len() {
                return Err(err(
                    func,
                    Some(bid),
                    format!("callee {callee} out of range"),
                ));
            }
            let target = program.function(*callee);
            if args.len() != target.param_count() {
                return Err(err(
                    func,
                    Some(bid),
                    format!(
                        "call to {} passes {} args, expected {}",
                        target.name(),
                        args.len(),
                        target.param_count()
                    ),
                ));
            }
            if rets.len() != target.ret_count() {
                return Err(err(
                    func,
                    Some(bid),
                    format!(
                        "call to {} binds {} results, expected {}",
                        target.name(),
                        rets.len(),
                        target.ret_count()
                    ),
                ));
            }
        }
        Op::Ret { values } if values.len() != func.ret_count() => {
            return Err(err(
                func,
                Some(bid),
                format!(
                    "return of {} values from a function returning {}",
                    values.len(),
                    func.ret_count()
                ),
            ));
        }
        Op::Reuse { region, .. } | Op::Invalidate { region }
            if region.index() >= program.region_count() =>
        {
            return Err(err(
                func,
                Some(bid),
                format!("region {region} was never allocated"),
            ));
        }
        _ => {}
    }
    Ok(())
}

/// Successors used by the defined-before-use dataflow.
///
/// A `reuse` terminator contributes only its *body* edge: the
/// continuation is reached either through the region body (whose defs
/// the dataflow sees via the region-end jump) or through a reuse hit,
/// which architecturally writes the same live-out registers a body
/// execution would. Following the direct reuse→cont edge would
/// spuriously report those live-outs as maybe-undefined.
fn dataflow_successors(block: &crate::block::Block) -> Vec<BlockId> {
    match block.terminator().map(|t| &t.op) {
        Some(Op::Reuse { body, .. }) => vec![*body],
        _ => block.successors(),
    }
}

/// Forward must-analysis: a register may be used only if it is defined
/// along *every* path from entry.
fn verify_defined_before_use(func: &Function) -> Result<(), VerifyError> {
    let n = func.blocks.len();
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (bid, block) in func.iter_blocks() {
        for s in dataflow_successors(block) {
            preds[s.index()].push(bid);
        }
    }
    // `None` = not yet computed (top); `Some(set)` = registers
    // definitely defined at block entry.
    let mut entry_defs: Vec<Option<HashSet<Reg>>> = vec![None; n];
    entry_defs[func.entry().index()] = Some(func.params().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for (bid, block) in func.iter_blocks() {
            let at_entry = match compute_entry(func, bid, &preds, &entry_defs) {
                Some(s) => s,
                None => continue,
            };
            let mut defs = at_entry;
            for instr in &block.instrs {
                for d in instr.dsts() {
                    defs.insert(d);
                }
            }
            for s in dataflow_successors(block) {
                let slot = &mut entry_defs[s.index()];
                match slot {
                    None => {
                        *slot = Some(defs.clone());
                        changed = true;
                    }
                    Some(existing) => {
                        let before = existing.len();
                        existing.retain(|r| defs.contains(r));
                        if existing.len() != before {
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    for (bid, block) in func.iter_blocks() {
        let mut defs = match &entry_defs[bid.index()] {
            Some(s) => s.clone(),
            None => continue, // unreachable block: uses are vacuous
        };
        for instr in &block.instrs {
            for r in instr.src_regs() {
                if !defs.contains(&r) {
                    return Err(err(
                        func,
                        Some(bid),
                        format!("register {r} used before definition in {}", instr.id),
                    ));
                }
            }
            for d in instr.dsts() {
                defs.insert(d);
            }
        }
    }
    Ok(())
}

fn compute_entry(
    func: &Function,
    bid: BlockId,
    preds: &[Vec<BlockId>],
    entry_defs: &[Option<HashSet<Reg>>],
) -> Option<HashSet<Reg>> {
    if bid == func.entry() {
        return entry_defs[bid.index()].clone();
    }
    let mut acc: Option<HashSet<Reg>> = None;
    for p in &preds[bid.index()] {
        // The defs at the end of predecessor p: its entry defs plus
        // everything the block defines. Recomputing keeps the fixpoint
        // simple; blocks are small.
        let pentry = entry_defs[p.index()].as_ref()?.clone();
        let mut pdefs = pentry;
        for instr in &func.block(*p).instrs {
            for d in instr.dsts() {
                pdefs.insert(d);
            }
        }
        acc = Some(match acc {
            None => pdefs,
            Some(mut a) => {
                a.retain(|r| pdefs.contains(r));
                a
            }
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpPred;
    use crate::reg::Operand;

    fn single_fn(
        build: impl FnOnce(&mut crate::builder::FunctionBuilder),
    ) -> Result<(), VerifyError> {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        build(&mut f);
        let id = pb.finish_function(f);
        pb.set_main(id);
        verify_program(&pb.finish())
    }

    #[test]
    fn accepts_well_formed() {
        single_fn(|f| {
            let a = f.movi(3);
            let _ = f.add(a, a);
            f.ret(&[]);
        })
        .unwrap();
    }

    #[test]
    fn rejects_use_before_def_on_some_path() {
        // if (1 < 2) { x = 1 } ; use x  -- x undefined on the else path
        let err = single_fn(|f| {
            let then = f.block();
            let join = f.block();
            f.br(CmpPred::Lt, 1i64, 2i64, then, join);
            f.switch_to(then);
            let _x = f.movi(1); // r0 in this function
            f.jump(join);
            f.switch_to(join);
            let _ = f.add(Reg(0), 1i64);
            f.ret(&[]);
        })
        .unwrap_err();
        assert!(err.message.contains("used before definition"), "{err}");
    }

    #[test]
    fn accepts_def_on_all_paths() {
        single_fn(|f| {
            let x = f.fresh();
            let then = f.block();
            let els = f.block();
            let join = f.block();
            f.br(CmpPred::Lt, 1i64, 2i64, then, els);
            f.switch_to(then);
            f.assign(x, 10i64);
            f.jump(join);
            f.switch_to(els);
            f.assign(x, 20i64);
            f.jump(join);
            f.switch_to(join);
            let _ = f.add(x, 1i64);
            f.ret(&[]);
        })
        .unwrap();
    }

    #[test]
    fn rejects_store_to_readonly() {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", vec![1]);
        let mut f = pb.function("main", 0, 0);
        f.store(t, 0i64, 5i64);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message.contains("read-only"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("g", 2, 1);
        let mut g = pb.function_body(callee);
        g.ret(&[Operand::Imm(0)]);
        pb.finish_function(g);
        let mut f = pb.function("main", 0, 0);
        let _ = f.call(callee, &[Operand::Imm(1)], 1); // missing one arg
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message.contains("passes 1 args"), "{e}");
    }

    #[test]
    fn rejects_bad_ret_arity() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message.contains("return of 0 values"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        // Manually corrupt: append a Nop after the terminator.
        let ni = p.new_instr(Op::Nop);
        p.function_mut(id).block_mut(BlockId(0)).instrs.push(ni);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("terminator in mid-block"), "{e}");
    }

    #[test]
    fn rejects_unallocated_region() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let inv = p.new_instr(Op::Invalidate {
            region: crate::instr::RegionId(0),
        });
        p.function_mut(id)
            .block_mut(BlockId(0))
            .instrs
            .insert(0, inv);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("never allocated"), "{e}");
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message.contains("no parameters"), "{e}");
    }

    #[test]
    fn unreachable_block_uses_are_tolerated() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let dead = f.block();
        f.switch_to(dead);
        let _ = f.add(Reg(0), 1i64); // r0 never defined, but block unreachable
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        // r0 exceeds reg limit though; allocate it first.
        let p = pb.finish();
        let _ = p; // rebuilt below with a proper fresh reg
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let x = f.fresh();
        f.ret(&[]);
        let dead = f.block();
        f.switch_to(dead);
        let _ = f.add(x, 1i64);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        verify_program(&pb.finish()).unwrap();
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError::new(Some(FuncId(1)), Some(BlockId(2)), "boom");
        assert_eq!(e.to_string(), "f1/b2: boom");
        let e2 = VerifyError::new(None, None, "boom");
        assert_eq!(e2.to_string(), "boom");
    }
}

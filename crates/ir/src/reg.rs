//! Virtual registers, operands, and runtime values.

use std::fmt;

/// A virtual register.
///
/// Registers are function-local: `r0` in one function is unrelated to
/// `r0` in another. The CCR framework never runs register allocation —
/// like the paper's IMPACT-level evaluation, reuse regions are formed
/// over virtual registers and the "8 live-in / 8 live-out" capacity
/// limits of a computation instance are enforced on virtual registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u32);

impl Reg {
    /// Raw index of the register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: either a register or an immediate constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// Immediate 64-bit constant.
    Imm(i64),
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate constant, if this operand is one.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }

    /// True if the operand is an immediate.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A runtime value: a 64-bit machine word.
///
/// Integer operations interpret the word as an `i64`; floating-point
/// operations ([`crate::BinKind::FAdd`] and friends) interpret it as
/// the IEEE-754 bit pattern of an `f64`. This mirrors a real register
/// file, where the same 64-bit register holds either interpretation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Value(pub i64);

impl Value {
    /// Zero.
    pub const ZERO: Value = Value(0);

    /// Construct from a signed integer.
    pub fn from_int(v: i64) -> Value {
        Value(v)
    }

    /// Construct from a float, storing its bit pattern.
    pub fn from_f64(v: f64) -> Value {
        Value(v.to_bits() as i64)
    }

    /// The word interpreted as a signed integer.
    pub fn as_int(self) -> i64 {
        self.0
    }

    /// The word interpreted as an IEEE-754 double.
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0 as u64)
    }

    /// True if the integer interpretation is nonzero.
    pub fn is_truthy(self) -> bool {
        self.0 != 0
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::from_f64(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(7).index(), 7);
    }

    #[test]
    fn operand_accessors() {
        let r = Operand::Reg(Reg(3));
        let i = Operand::Imm(-5);
        assert_eq!(r.as_reg(), Some(Reg(3)));
        assert_eq!(r.as_imm(), None);
        assert_eq!(i.as_reg(), None);
        assert_eq!(i.as_imm(), Some(-5));
        assert!(i.is_imm());
        assert!(!r.is_imm());
    }

    #[test]
    fn operand_from_conversions() {
        assert_eq!(Operand::from(Reg(1)), Operand::Reg(Reg(1)));
        assert_eq!(Operand::from(42i64), Operand::Imm(42));
    }

    #[test]
    fn value_float_roundtrip() {
        let v = Value::from_f64(3.25);
        assert_eq!(v.as_f64(), 3.25);
        let neg = Value::from_f64(-0.0);
        assert_eq!(neg.as_f64().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn value_int_roundtrip() {
        let v = Value::from_int(i64::MIN);
        assert_eq!(v.as_int(), i64::MIN);
        assert!(!Value::ZERO.is_truthy());
        assert!(Value::from_int(1).is_truthy());
    }

    #[test]
    fn value_display_is_integer_interpretation() {
        assert_eq!(Value::from_int(-9).to_string(), "-9");
    }
}

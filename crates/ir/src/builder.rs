//! Builder DSL for constructing programs.
//!
//! [`ProgramBuilder`] owns the program under construction;
//! [`FunctionBuilder`] provides an emitter-style API over a single
//! function. Instruction ids are function-local while building and are
//! renumbered to program-wide unique ids by
//! [`ProgramBuilder::finish_function`].

use crate::block::BlockId;
use crate::function::{FuncId, Function};
use crate::instr::{BinKind, CmpPred, Instr, InstrId, Op, UnKind};
use crate::object::{MemObject, MemObjectId, ObjectKind};
use crate::program::Program;
use crate::reg::{Operand, Reg, Value};

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<String>,
    objects: Vec<MemObject>,
    main: Option<FuncId>,
    next_instr_id: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a function signature without a body, returning its id.
    /// Useful for (mutually) recursive calls: declare first, build
    /// bodies later with [`ProgramBuilder::function_body`].
    pub fn declare(&mut self, name: impl Into<String>, params: usize, rets: usize) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        let name = name.into();
        self.names.push(name.clone());
        self.functions
            .push(Some(Function::new(id, name, params, rets)));
        id
    }

    /// Declares a function and returns a builder for its body.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: usize,
        rets: usize,
    ) -> FunctionBuilder {
        let id = self.declare(name, params, rets);
        self.function_body(id)
    }

    /// Returns a builder for a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function's body was already taken and not
    /// finished, or `id` is out of range.
    pub fn function_body(&mut self, id: FuncId) -> FunctionBuilder {
        let func = self.functions[id.index()]
            .take()
            .expect("function body already under construction");
        FunctionBuilder {
            func,
            cur: BlockId(0),
            next_local_id: 0,
            sealed: false,
        }
    }

    /// Finishes a function body, renumbering its instructions to
    /// program-wide ids, and returns the function id.
    pub fn finish_function(&mut self, fb: FunctionBuilder) -> FuncId {
        let mut func = fb.func;
        for block in &mut func.blocks {
            for instr in &mut block.instrs {
                instr.id = InstrId(self.next_instr_id);
                self.next_instr_id += 1;
            }
        }
        let id = func.id();
        self.functions[id.index()] = Some(func);
        id
    }

    /// Declares a named, writable memory object of `size` elements.
    pub fn object(&mut self, name: impl Into<String>, size: usize) -> MemObjectId {
        self.object_with(name, ObjectKind::Named, size, Vec::new())
    }

    /// Declares a read-only table initialized with `init`.
    pub fn table(&mut self, name: impl Into<String>, init: Vec<i64>) -> MemObjectId {
        let vals = init.into_iter().map(Value::from_int).collect::<Vec<_>>();
        let n = vals.len();
        self.object_with(name, ObjectKind::ReadOnly, n, vals)
    }

    /// Declares an anonymous (heap-like) object of `size` elements.
    pub fn heap(&mut self, name: impl Into<String>, size: usize) -> MemObjectId {
        self.object_with(name, ObjectKind::Anonymous, size, Vec::new())
    }

    /// Declares a memory object with full control over kind and
    /// initializer.
    pub fn object_with(
        &mut self,
        name: impl Into<String>,
        kind: ObjectKind,
        size: usize,
        init: Vec<Value>,
    ) -> MemObjectId {
        let id = MemObjectId(self.objects.len() as u32);
        self.objects
            .push(MemObject::new(id, name, kind, size, init));
        id
    }

    /// Selects the program entry function.
    pub fn set_main(&mut self, id: FuncId) {
        self.main = Some(id);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if no entry function was set or some declared function
    /// body is still outstanding.
    pub fn finish(self) -> Program {
        let functions = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function {i} body never finished")))
            .collect();
        Program::from_parts(
            functions,
            self.objects,
            self.main.expect("no entry function set"),
            self.next_instr_id,
        )
    }
}

/// Emitter-style builder over a single function.
///
/// Instructions are appended to the *current block*; control-flow
/// emitters terminate the current block, after which the builder must
/// be repositioned with [`FunctionBuilder::switch_to`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    next_local_id: u32,
    sealed: bool,
}

impl FunctionBuilder {
    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.param_count(), "parameter index out of range");
        Reg(i as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn fresh(&mut self) -> Reg {
        self.func.fresh_reg()
    }

    /// Creates a new empty block (does not switch to it).
    pub fn block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Repositions the builder to append to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
        self.sealed = false;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// The function's entry block.
    pub fn entry(&self) -> BlockId {
        self.func.entry()
    }

    fn emit(&mut self, op: Op) {
        assert!(
            !self.sealed,
            "emitting into a terminated block; call switch_to first"
        );
        let terminates = Instr::new(InstrId(0), op.clone()).is_terminator();
        let id = InstrId(self.next_local_id);
        self.next_local_id += 1;
        self.func
            .block_mut(self.cur)
            .instrs
            .push(Instr::new(id, op));
        if terminates {
            self.sealed = true;
        }
    }

    /// Emits `dst = lhs <kind> rhs` into a fresh register.
    pub fn bin(&mut self, kind: BinKind, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.bin_into(kind, dst, lhs, rhs);
        dst
    }

    /// Emits `dst = lhs <kind> rhs` into an existing register.
    pub fn bin_into(
        &mut self,
        kind: BinKind,
        dst: Reg,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.emit(Op::Binary {
            kind,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
    }

    /// Emits `dst = <kind> src` into a fresh register.
    pub fn un(&mut self, kind: UnKind, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.un_into(kind, dst, src);
        dst
    }

    /// Emits `dst = <kind> src` into an existing register.
    pub fn un_into(&mut self, kind: UnKind, dst: Reg, src: impl Into<Operand>) {
        self.emit(Op::Unary {
            kind,
            dst,
            src: src.into(),
        });
    }

    /// Emits an integer addition.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Add, a, b)
    }

    /// Emits an integer subtraction.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Sub, a, b)
    }

    /// Emits an integer multiplication.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Mul, a, b)
    }

    /// Emits a signed division.
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Div, a, b)
    }

    /// Emits a signed remainder.
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Rem, a, b)
    }

    /// Emits a bitwise and.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::And, a, b)
    }

    /// Emits a bitwise or.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Or, a, b)
    }

    /// Emits a bitwise exclusive-or.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Xor, a, b)
    }

    /// Emits a left shift.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Shl, a, b)
    }

    /// Emits a logical right shift.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Shr, a, b)
    }

    /// Emits an arithmetic right shift.
    pub fn sar(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinKind::Sar, a, b)
    }

    /// Emits a register/immediate move into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        self.un(UnKind::Mov, src)
    }

    /// Emits an immediate load into a fresh register.
    pub fn movi(&mut self, v: i64) -> Reg {
        self.mov(Operand::Imm(v))
    }

    /// Emits `dst = src`.
    pub fn assign(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.un_into(UnKind::Mov, dst, src);
    }

    /// Emits `reg = reg + delta` (a loop-index update).
    pub fn inc(&mut self, reg: Reg, delta: i64) {
        self.bin_into(BinKind::Add, reg, reg, Operand::Imm(delta));
    }

    /// Emits a comparison producing 0/1 into a fresh register.
    pub fn cmp(&mut self, pred: CmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Op::Cmp {
            pred,
            dst,
            lhs: a.into(),
            rhs: b.into(),
        });
        dst
    }

    /// Emits a load `dst = object[addr]` into a fresh register.
    pub fn load(&mut self, object: MemObjectId, addr: impl Into<Operand>) -> Reg {
        self.load_off(object, addr, 0)
    }

    /// Emits a load with a constant index addend.
    pub fn load_off(&mut self, object: MemObjectId, addr: impl Into<Operand>, offset: i64) -> Reg {
        let dst = self.fresh();
        self.load_into(dst, object, addr, offset);
        dst
    }

    /// Emits a load into an existing register.
    pub fn load_into(
        &mut self,
        dst: Reg,
        object: MemObjectId,
        addr: impl Into<Operand>,
        offset: i64,
    ) {
        self.emit(Op::Load {
            dst,
            object,
            addr: addr.into(),
            offset,
        });
    }

    /// Emits a store `object[addr] = value`.
    pub fn store(
        &mut self,
        object: MemObjectId,
        addr: impl Into<Operand>,
        value: impl Into<Operand>,
    ) {
        self.store_off(object, addr, 0, value);
    }

    /// Emits a store with a constant index addend.
    pub fn store_off(
        &mut self,
        object: MemObjectId,
        addr: impl Into<Operand>,
        offset: i64,
        value: impl Into<Operand>,
    ) {
        self.emit(Op::Store {
            object,
            addr: addr.into(),
            offset,
            value: value.into(),
        });
    }

    /// Emits a compare-and-branch terminator.
    pub fn br(
        &mut self,
        pred: CmpPred,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.emit(Op::Branch {
            pred,
            lhs: a.into(),
            rhs: b.into(),
            taken,
            not_taken,
        });
    }

    /// Emits an unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Op::Jump { target });
    }

    /// Emits a call, allocating fresh registers for the results.
    ///
    /// The number of results must be communicated by the callee's
    /// declaration; this builder cannot check it, but the program
    /// verifier does.
    pub fn call(&mut self, callee: FuncId, args: &[Operand], rets: usize) -> Vec<Reg> {
        let ret_regs: Vec<Reg> = (0..rets).map(|_| self.fresh()).collect();
        self.emit(Op::Call {
            callee,
            args: args.to_vec(),
            rets: ret_regs.clone(),
        });
        ret_regs
    }

    /// Emits a return terminator.
    pub fn ret(&mut self, values: &[Operand]) {
        self.emit(Op::Ret {
            values: values.to_vec(),
        });
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.emit(Op::Nop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_program;

    #[test]
    fn straight_line_function() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(4);
        let a = f.add(x, 1);
        let b = f.mul(a, a);
        f.ret(&[Operand::Reg(b)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        verify_program(&p).unwrap();
        assert_eq!(p.function(id).instr_count(), 4);
    }

    #[test]
    fn loop_with_branch() {
        let mut pb = ProgramBuilder::new();
        let tbl = pb.table("t", vec![1, 2, 3, 4]);
        let mut f = pb.function("main", 0, 1);
        let sum = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let v = f.load(tbl, i);
        f.bin_into(BinKind::Add, sum, sum, v);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 4, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(sum)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        verify_program(&p).unwrap();
    }

    #[test]
    fn instruction_ids_are_globally_unique() {
        let mut pb = ProgramBuilder::new();
        let mut f1 = pb.function("a", 0, 0);
        f1.nop();
        f1.ret(&[]);
        let a = pb.finish_function(f1);
        let mut f2 = pb.function("b", 0, 0);
        f2.nop();
        f2.ret(&[]);
        pb.finish_function(f2);
        pb.set_main(a);
        let p = pb.finish();
        let mut seen = std::collections::HashSet::new();
        for (_, i) in p.iter_instrs() {
            assert!(seen.insert(i.id), "duplicate id {:?}", i.id);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn calls_between_functions() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("sq", 1, 1);
        let mut body = pb.function_body(callee);
        let x = body.param(0);
        let y = body.mul(x, x);
        body.ret(&[Operand::Reg(y)]);
        pb.finish_function(body);

        let mut m = pb.function("main", 0, 1);
        let r = m.call(callee, &[Operand::Imm(5)], 1);
        m.ret(&[Operand::Reg(r[0])]);
        let mid = pb.finish_function(m);
        pb.set_main(mid);
        let p = pb.finish();
        verify_program(&p).unwrap();
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_after_terminator_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f", 0, 0);
        f.ret(&[]);
        f.nop();
    }

    #[test]
    #[should_panic(expected = "no entry function")]
    fn finish_without_main_panics() {
        let pb = ProgramBuilder::new();
        pb.finish();
    }

    #[test]
    fn object_declarations() {
        let mut pb = ProgramBuilder::new();
        let a = pb.object("buf", 16);
        let t = pb.table("tbl", vec![9]);
        let h = pb.heap("h", 8);
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        assert_eq!(p.object(a).kind(), ObjectKind::Named);
        assert_eq!(p.object(t).kind(), ObjectKind::ReadOnly);
        assert_eq!(p.object(h).kind(), ObjectKind::Anonymous);
        assert_eq!(p.object(t).init()[0].as_int(), 9);
    }
}

//! Parser for the textual IR emitted by the pretty-printer.
//!
//! `parse_program(&program.to_string())` reconstructs a structurally
//! identical program, so the textual form can serve as a stable
//! on-disk format for test fixtures, bug reports, and hand-written
//! kernels. The grammar is exactly the printer's output:
//!
//! ```text
//! program main=f0
//! object @0 "weights" kind=ReadOnly size=4 init=[2, 4, 6, 8]
//! func f0 "main" (params=0, rets=1):
//!   b0 (entry):
//!        i0  r0 = mov 0
//!        i1  r1 = load @0[r0]
//!        i2  br.lt r0, 4 -> b0 else b1
//!   b1:
//!        i3  ret r1
//! ```

use std::fmt;

use crate::block::BlockId;
use crate::function::{FuncId, Function};
use crate::instr::{BinKind, CmpPred, Instr, InstrExt, InstrId, Op, RegionId, UnKind};
use crate::object::{MemObject, MemObjectId, ObjectKind};
use crate::program::Program;
use crate::reg::{Operand, Reg, Value};

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a whole program from the printer's textual form.
///
/// ```
/// let text = "\
/// program main=f0
/// object @0 \"t\" kind=ReadOnly size=2 init=[40, 2]
/// func f0 \"main\" (params=0, rets=1):
///   b0 (entry):
///      i0  r0 = load @0[0]
///      i1  r1 = load @0[1]
///      i2  r2 = add r0, r1
///      i3  ret r2
/// ";
/// let program = ccr_ir::parse_program(text)?;
/// ccr_ir::verify_program(&program)?;
/// assert_eq!(program.instr_count(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line. The result is
/// *not* run through [`crate::verify_program`]; callers that ingest
/// untrusted text should verify explicitly.
pub fn parse_program(src: &str) -> Result<Program> {
    let mut main: Option<FuncId> = None;
    let mut objects: Vec<MemObject> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut cur_block: Option<BlockId> = None;
    let mut max_instr_id: u32 = 0;
    let mut max_region: u32 = 0;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("program main=") {
            main = Some(FuncId(parse_prefixed(rest.trim(), 'f', lineno)?));
        } else if t.starts_with("object ") {
            objects.push(parse_object(t, lineno)?);
        } else if t.starts_with("func ") {
            functions.push(parse_func_header(t, lineno)?);
            cur_block = None;
        } else if t.starts_with('b') && t.ends_with(':') {
            // Block header: `b3:` or `b0 (entry):`
            let body = t.trim_end_matches(':').trim();
            let bid_txt = body.split_whitespace().next().unwrap_or("");
            let bid = BlockId(parse_prefixed(bid_txt, 'b', lineno)?);
            let func = functions.last_mut().ok_or_else(|| ParseError {
                line: lineno,
                message: "block header before any function".into(),
            })?;
            while func.blocks.len() <= bid.index() {
                func.add_block();
            }
            cur_block = Some(bid);
        } else {
            // Instruction line: `  iN  <instr>[  ; ext: ...]`
            let func = functions.last_mut().ok_or_else(|| ParseError {
                line: lineno,
                message: "instruction before any function".into(),
            })?;
            let block = cur_block.ok_or_else(|| ParseError {
                line: lineno,
                message: "instruction before any block header".into(),
            })?;
            let instr = parse_instr(t, lineno)?;
            max_instr_id = max_instr_id.max(instr.id.0 + 1);
            if let Op::Reuse { region, .. } | Op::Invalidate { region } = instr.op {
                max_region = max_region.max(region.0 + 1);
            }
            let mut top = 0u32;
            for r in instr.src_regs().into_iter().chain(instr.dsts()) {
                top = top.max(r.0 + 1);
            }
            func.reserve_regs(top);
            func.block_mut(block).instrs.push(instr);
        }
    }

    let Some(main) = main else {
        return err(1, "missing `program main=fN` header");
    };
    let mut program = Program::from_parts(functions, objects, main, max_instr_id);
    program.reserve_regions(max_region);
    Ok(program)
}

fn parse_prefixed(tok: &str, prefix: char, line: usize) -> Result<u32> {
    let tok = tok.trim();
    match tok.strip_prefix(prefix) {
        Some(num) => num.parse::<u32>().map_err(|_| ParseError {
            line,
            message: format!("bad {prefix}-identifier `{tok}`"),
        }),
        None => err(line, format!("expected `{prefix}N`, found `{tok}`")),
    }
}

fn parse_region(tok: &str, line: usize) -> Result<RegionId> {
    let tok = tok.trim();
    match tok.strip_prefix("rcr") {
        Some(num) => num.parse::<u32>().map(RegionId).map_err(|_| ParseError {
            line,
            message: format!("bad region id `{tok}`"),
        }),
        None => err(line, format!("expected `rcrN`, found `{tok}`")),
    }
}

fn parse_quoted(s: &str, line: usize) -> Result<(String, &str)> {
    let s = s.trim_start();
    let Some(rest) = s.strip_prefix('"') else {
        return err(line, format!("expected quoted string at `{s}`"));
    };
    let Some(end) = rest.find('"') else {
        return err(line, "unterminated string");
    };
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

/// `object @0 "name" kind=Named size=4 init=[1, 2]`
fn parse_object(t: &str, line: usize) -> Result<MemObject> {
    let rest = t.strip_prefix("object ").expect("checked");
    let mut parts = rest.splitn(2, ' ');
    let id_tok = parts.next().unwrap_or("");
    let id = MemObjectId(parse_prefixed(id_tok, '@', line)?);
    let rest = parts.next().unwrap_or("");
    let (name, rest) = parse_quoted(rest, line)?;
    let mut kind = None;
    let mut size = None;
    let mut init = Vec::new();
    let rest = rest.trim();
    // init=[...] (may contain spaces) handled first.
    let (head, init_part) = match rest.find("init=[") {
        Some(pos) => (&rest[..pos], Some(&rest[pos + 6..])),
        None => (rest, None),
    };
    for field in head.split_whitespace() {
        if let Some(v) = field.strip_prefix("kind=") {
            kind = Some(match v {
                "Named" => ObjectKind::Named,
                "ReadOnly" => ObjectKind::ReadOnly,
                "Anonymous" => ObjectKind::Anonymous,
                other => return err(line, format!("unknown object kind `{other}`")),
            });
        } else if let Some(v) = field.strip_prefix("size=") {
            size = Some(v.parse::<usize>().map_err(|_| ParseError {
                line,
                message: format!("bad size `{v}`"),
            })?);
        } else {
            return err(line, format!("unexpected object field `{field}`"));
        }
    }
    if let Some(body) = init_part {
        let Some(end) = body.find(']') else {
            return err(line, "unterminated init list");
        };
        for item in body[..end].split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            init.push(Value::from_int(item.parse::<i64>().map_err(|_| {
                ParseError {
                    line,
                    message: format!("bad init value `{item}`"),
                }
            })?));
        }
    }
    let kind = kind.ok_or_else(|| ParseError {
        line,
        message: "object missing kind=".into(),
    })?;
    let size = size.ok_or_else(|| ParseError {
        line,
        message: "object missing size=".into(),
    })?;
    Ok(MemObject::new(id, name, kind, size, init))
}

/// `func f0 "main" (params=0, rets=1):`
fn parse_func_header(t: &str, line: usize) -> Result<Function> {
    let rest = t.strip_prefix("func ").expect("checked");
    let mut parts = rest.splitn(2, ' ');
    let id = FuncId(parse_prefixed(parts.next().unwrap_or(""), 'f', line)?);
    let rest = parts.next().unwrap_or("");
    let (name, rest) = parse_quoted(rest, line)?;
    let rest = rest.trim().trim_end_matches(':').trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| ParseError {
            line,
            message: "expected `(params=N, rets=M)`".into(),
        })?;
    let mut params = None;
    let mut rets = None;
    for field in inner.split(',') {
        let field = field.trim();
        if let Some(v) = field.strip_prefix("params=") {
            params = v.parse::<usize>().ok();
        } else if let Some(v) = field.strip_prefix("rets=") {
            rets = v.parse::<usize>().ok();
        }
    }
    let (Some(params), Some(rets)) = (params, rets) else {
        return err(line, "bad params/rets");
    };
    let mut func = Function::new(id, name, params, rets);
    // The printer emits blocks explicitly; drop the implicit entry
    // block so block ids line up (it is re-added by the first header).
    func.blocks.clear();
    Ok(func)
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand> {
    let tok = tok.trim().trim_end_matches(',');
    if let Some(num) = tok.strip_prefix('r') {
        if let Ok(n) = num.parse::<u32>() {
            return Ok(Operand::Reg(Reg(n)));
        }
    }
    tok.parse::<i64>()
        .map(Operand::Imm)
        .map_err(|_| ParseError {
            line,
            message: format!("bad operand `{tok}`"),
        })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg> {
    match parse_operand(tok, line)? {
        Operand::Reg(r) => Ok(r),
        Operand::Imm(_) => err(line, format!("expected register, found `{tok}`")),
    }
}

fn bin_kind(m: &str) -> Option<BinKind> {
    Some(match m {
        "add" => BinKind::Add,
        "sub" => BinKind::Sub,
        "mul" => BinKind::Mul,
        "div" => BinKind::Div,
        "rem" => BinKind::Rem,
        "and" => BinKind::And,
        "or" => BinKind::Or,
        "xor" => BinKind::Xor,
        "shl" => BinKind::Shl,
        "shr" => BinKind::Shr,
        "sar" => BinKind::Sar,
        "min" => BinKind::Min,
        "max" => BinKind::Max,
        "fadd" => BinKind::FAdd,
        "fsub" => BinKind::FSub,
        "fmul" => BinKind::FMul,
        "fdiv" => BinKind::FDiv,
        _ => return None,
    })
}

fn un_kind(m: &str) -> Option<UnKind> {
    Some(match m {
        "mov" => UnKind::Mov,
        "neg" => UnKind::Neg,
        "not" => UnKind::Not,
        "i2f" => UnKind::IntToFloat,
        "f2i" => UnKind::FloatToInt,
        _ => return None,
    })
}

fn cmp_pred(m: &str) -> Option<CmpPred> {
    Some(match m {
        "eq" => CmpPred::Eq,
        "ne" => CmpPred::Ne,
        "lt" => CmpPred::Lt,
        "le" => CmpPred::Le,
        "gt" => CmpPred::Gt,
        "ge" => CmpPred::Ge,
        _ => return None,
    })
}

/// `@N[addr]` or `@N[addr+off]` → (object, addr, offset)
fn parse_mem_ref(tok: &str, line: usize) -> Result<(MemObjectId, Operand, i64)> {
    let tok = tok.trim();
    let Some(open) = tok.find('[') else {
        return err(line, format!("expected `@N[..]`, found `{tok}`"));
    };
    let obj = MemObjectId(parse_prefixed(&tok[..open], '@', line)?);
    let inner = tok[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| ParseError {
            line,
            message: format!("unterminated memory reference `{tok}`"),
        })?;
    // The printer writes `addr+off` where off can itself be negative
    // (`r1+-3`); split on the first '+'.
    match inner.find('+') {
        Some(p) => {
            let addr = parse_operand(&inner[..p], line)?;
            let off = inner[p + 1..].parse::<i64>().map_err(|_| ParseError {
                line,
                message: format!("bad offset in `{tok}`"),
            })?;
            Ok((obj, addr, off))
        }
        None => Ok((obj, parse_operand(inner, line)?, 0)),
    }
}

fn parse_ext(s: &str, line: usize) -> Result<InstrExt> {
    let mut ext = InstrExt::NONE;
    for part in s.split('|') {
        ext = ext
            | match part.trim() {
                "live_out" => InstrExt::LIVE_OUT,
                "region_end" => InstrExt::REGION_END,
                "region_exit" => InstrExt::REGION_EXIT,
                "-" => InstrExt::NONE,
                other => return err(line, format!("unknown extension `{other}`")),
            };
    }
    Ok(ext)
}

/// One instruction line: `iN  <op text>[  ; ext: ...]`.
fn parse_instr(t: &str, line: usize) -> Result<Instr> {
    let (body, ext) = match t.find("; ext:") {
        Some(p) => (t[..p].trim_end(), parse_ext(t[p + 6..].trim(), line)?),
        None => (t, InstrExt::NONE),
    };
    let mut parts = body.split_whitespace();
    let id_tok = parts.next().unwrap_or("");
    let id = InstrId(parse_prefixed(id_tok, 'i', line)?);
    let rest: Vec<&str> = parts.collect();
    let op = parse_op(&rest, line)?;
    let mut instr = Instr::new(id, op);
    instr.ext = ext;
    Ok(instr)
}

fn parse_op(toks: &[&str], line: usize) -> Result<Op> {
    if toks.is_empty() {
        return err(line, "empty instruction");
    }
    // Keyword-led forms.
    match toks[0] {
        "nop" => return Ok(Op::Nop),
        "jump" => {
            let target = BlockId(parse_prefixed(toks.get(1).unwrap_or(&""), 'b', line)?);
            return Ok(Op::Jump { target });
        }
        "ret" => {
            let mut values = Vec::new();
            for tok in &toks[1..] {
                values.push(parse_operand(tok, line)?);
            }
            return Ok(Op::Ret { values });
        }
        "invalidate" => {
            return Ok(Op::Invalidate {
                region: parse_region(toks.get(1).unwrap_or(&""), line)?,
            });
        }
        "reuse" => {
            // reuse rcrN body=bB cont=bC
            let region = parse_region(toks.get(1).unwrap_or(&""), line)?;
            let mut body = None;
            let mut cont = None;
            for tok in &toks[2..] {
                if let Some(v) = tok.strip_prefix("body=") {
                    body = Some(BlockId(parse_prefixed(v, 'b', line)?));
                } else if let Some(v) = tok.strip_prefix("cont=") {
                    cont = Some(BlockId(parse_prefixed(v, 'b', line)?));
                }
            }
            let (Some(body), Some(cont)) = (body, cont) else {
                return err(line, "reuse missing body=/cont=");
            };
            return Ok(Op::Reuse { region, body, cont });
        }
        "store" => {
            // store @N[addr] = value
            let (object, addr, offset) = parse_mem_ref(toks.get(1).unwrap_or(&""), line)?;
            if toks.get(2) != Some(&"=") {
                return err(line, "store missing `=`");
            }
            let value = parse_operand(toks.get(3).unwrap_or(&""), line)?;
            return Ok(Op::Store {
                object,
                addr,
                offset,
                value,
            });
        }
        "call" => {
            return parse_call(&[], toks, line);
        }
        _ => {}
    }
    if let Some(b) = toks[0].strip_prefix("br.") {
        // br.pred lhs, rhs -> bT else bF
        let pred = cmp_pred(b).ok_or_else(|| ParseError {
            line,
            message: format!("unknown branch predicate `{b}`"),
        })?;
        let lhs = parse_operand(toks.get(1).unwrap_or(&""), line)?;
        let rhs = parse_operand(toks.get(2).unwrap_or(&""), line)?;
        if toks.get(3) != Some(&"->") {
            return err(line, "branch missing `->`");
        }
        let taken = BlockId(parse_prefixed(toks.get(4).unwrap_or(&""), 'b', line)?);
        if toks.get(5) != Some(&"else") {
            return err(line, "branch missing `else`");
        }
        let not_taken = BlockId(parse_prefixed(toks.get(6).unwrap_or(&""), 'b', line)?);
        return Ok(Op::Branch {
            pred,
            lhs,
            rhs,
            taken,
            not_taken,
        });
    }
    // Assignment forms: `rD[, rE ...] = <rhs>`.
    let eq = toks
        .iter()
        .position(|t| *t == "=")
        .ok_or_else(|| ParseError {
            line,
            message: format!("unrecognized instruction `{}`", toks.join(" ")),
        })?;
    let mut dsts = Vec::new();
    for tok in &toks[..eq] {
        dsts.push(parse_reg(tok, line)?);
    }
    let rhs = &toks[eq + 1..];
    if rhs.is_empty() {
        return err(line, "missing right-hand side");
    }
    if rhs[0] == "call" || rhs[0].starts_with("call") {
        return parse_call(&dsts, rhs, line);
    }
    if dsts.len() != 1 {
        return err(line, "multiple destinations only valid for calls");
    }
    let dst = dsts[0];
    if rhs[0] == "load" {
        let (object, addr, offset) = parse_mem_ref(rhs.get(1).unwrap_or(&""), line)?;
        return Ok(Op::Load {
            dst,
            object,
            addr,
            offset,
        });
    }
    if let Some(p) = rhs[0].strip_prefix("cmp.") {
        let pred = cmp_pred(p).ok_or_else(|| ParseError {
            line,
            message: format!("unknown compare predicate `{p}`"),
        })?;
        let lhs = parse_operand(rhs.get(1).unwrap_or(&""), line)?;
        let r = parse_operand(rhs.get(2).unwrap_or(&""), line)?;
        return Ok(Op::Cmp {
            pred,
            dst,
            lhs,
            rhs: r,
        });
    }
    if let Some(kind) = bin_kind(rhs[0]) {
        let lhs = parse_operand(rhs.get(1).unwrap_or(&""), line)?;
        let r = parse_operand(rhs.get(2).unwrap_or(&""), line)?;
        return Ok(Op::Binary {
            kind,
            dst,
            lhs,
            rhs: r,
        });
    }
    if let Some(kind) = un_kind(rhs[0]) {
        let src = parse_operand(rhs.get(1).unwrap_or(&""), line)?;
        return Ok(Op::Unary { kind, dst, src });
    }
    err(line, format!("unrecognized operation `{}`", rhs[0]))
}

/// `call fN(a, b)` with `rets` already parsed from the left-hand side.
fn parse_call(rets: &[Reg], toks: &[&str], line: usize) -> Result<Op> {
    // Rejoin: the argument list may have been split on spaces.
    let joined = toks.join(" ");
    let rest = joined.strip_prefix("call ").ok_or_else(|| ParseError {
        line,
        message: "expected `call`".into(),
    })?;
    let open = rest.find('(').ok_or_else(|| ParseError {
        line,
        message: "call missing `(`".into(),
    })?;
    let callee = FuncId(parse_prefixed(&rest[..open], 'f', line)?);
    let inner = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| ParseError {
            line,
            message: "call missing `)`".into(),
        })?;
    let mut args = Vec::new();
    for a in inner.split(',') {
        let a = a.trim();
        if a.is_empty() {
            continue;
        }
        args.push(parse_operand(a, line)?);
    }
    Ok(Op::Call {
        callee,
        args,
        rets: rets.to_vec(),
    })
}

impl std::str::FromStr for Program {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Program> {
        parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::verify::verify_program;

    /// A program touching every syntactic form.
    fn kitchen_sink() -> Program {
        let mut pb = ProgramBuilder::new();
        let ro = pb.table("tbl", vec![1, -2, 3]);
        let rw = pb.object("buf", 4);
        let helper = pb.declare("helper", 2, 2);
        {
            let mut h = pb.function_body(helper);
            let (a, b) = (h.param(0), h.param(1));
            let s = h.add(a, b);
            let d = h.bin(BinKind::FMul, a, b);
            h.ret(&[Operand::Reg(s), Operand::Reg(d)]);
            pb.finish_function(h);
        }
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(-7);
        let y = f.load_off(ro, x, 2);
        let n = f.un(UnKind::Not, y);
        let c = f.cmp(CmpPred::Ge, n, 0);
        f.store_off(rw, c, 1, n);
        let rs = f.call(helper, &[Operand::Reg(x), Operand::Imm(9)], 2);
        let t = f.block();
        let e = f.block();
        f.br(CmpPred::Ne, rs[0], rs[1], t, e);
        f.switch_to(t);
        f.nop();
        f.ret(&[Operand::Reg(n)]);
        f.switch_to(e);
        f.jump(t);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    #[test]
    fn print_parse_print_is_identity() {
        let p = kitchen_sink();
        let text = p.to_string();
        let q = parse_program(&text).unwrap();
        assert_eq!(q.to_string(), text);
        verify_program(&q).unwrap();
    }

    #[test]
    fn parses_reuse_and_extensions() {
        let mut p = kitchen_sink();
        let region = p.fresh_region_id();
        let main = p.main();
        // Graft a reuse + invalidate + marks into the dead-ish blocks.
        let reuse = p.new_instr(Op::Reuse {
            region,
            body: BlockId(1),
            cont: BlockId(2),
        });
        let inv = p.new_instr(Op::Invalidate { region });
        let f = p.function_mut(main);
        f.block_mut(BlockId(2)).instrs.insert(0, inv);
        f.block_mut(BlockId(2)).instrs[0].ext = InstrExt::LIVE_OUT | InstrExt::REGION_END;
        *f.block_mut(BlockId(2)).instrs.last_mut().unwrap() = reuse;
        let text = p.to_string();
        let q = parse_program(&text).unwrap();
        assert_eq!(q.to_string(), text);
        assert_eq!(q.region_count(), p.region_count());
    }

    #[test]
    fn parses_object_initializers() {
        let p = kitchen_sink();
        let q = parse_program(&p.to_string()).unwrap();
        assert_eq!(
            q.object(MemObjectId(0)).init(),
            p.object(MemObjectId(0)).init()
        );
        assert_eq!(q.object(MemObjectId(0)).kind(), ObjectKind::ReadOnly);
        assert_eq!(q.object(MemObjectId(1)).kind(), ObjectKind::Named);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "program main=f0\nfunc f0 \"m\" (params=0, rets=0):\n  b0 (entry):\n    i0  garbage here\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = parse_program("func f0 \"m\" (params=0, rets=0):\n").unwrap_err();
        assert!(e.message.contains("program main"), "{e}");
    }

    #[test]
    fn from_str_is_parse_program() {
        let text =
            "program main=f0\nfunc f0 \"m\" (params=0, rets=0):\n  b0 (entry):\n    i0  ret \n";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.functions().len(), 1);
    }

    #[test]
    fn negative_offsets_round_trip() {
        let mut pb = ProgramBuilder::new();
        let o = pb.table("t", vec![5, 6, 7, 8]);
        let mut f = pb.function("main", 0, 1);
        let i = f.movi(2);
        let v = f.load_off(o, i, -1);
        f.ret(&[Operand::Reg(v)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let q = parse_program(&p.to_string()).unwrap();
        assert_eq!(q.to_string(), p.to_string());
    }
}

//! Functions.

use std::fmt;

use crate::block::{Block, BlockId};
use crate::instr::{Instr, InstrId};
use crate::reg::Reg;

/// Identifier of a [`Function`] within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Raw index of the function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A function: a control-flow graph of [`Block`]s over a private
/// virtual register file.
///
/// Parameters occupy registers `r0 .. r{param_count-1}` on entry.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    id: FuncId,
    name: String,
    param_count: usize,
    ret_count: usize,
    /// The function's basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    entry: BlockId,
    next_reg: u32,
}

impl Function {
    /// Creates a function shell with a single empty entry block.
    pub fn new(
        id: FuncId,
        name: impl Into<String>,
        param_count: usize,
        ret_count: usize,
    ) -> Function {
        Function {
            id,
            name: name.into(),
            param_count,
            ret_count,
            blocks: vec![Block::new()],
            entry: BlockId(0),
            next_reg: param_count as u32,
        }
    }

    /// The function's identifier.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters (bound to `r0..`).
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of values returned.
    pub fn ret_count(&self) -> usize {
        self.ret_count
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The parameter registers.
    pub fn params(&self) -> impl Iterator<Item = Reg> + '_ {
        (0..self.param_count as u32).map(Reg)
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// One past the highest register index in use.
    pub fn reg_limit(&self) -> u32 {
        self.next_reg
    }

    /// Raises the register limit to at least `limit` (used by the
    /// textual-IR parser, which sees register indices before knowing
    /// how many there are).
    pub fn reserve_regs(&mut self, limit: u32) {
        self.next_reg = self.next_reg.max(limit);
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over every instruction with its block id.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, &Instr)> {
        self.iter_blocks()
            .flat_map(|(bid, b)| b.instrs.iter().map(move |i| (bid, i)))
    }

    /// Total instruction count across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Locates an instruction by id, returning its block and position.
    pub fn find_instr(&self, id: InstrId) -> Option<(BlockId, usize)> {
        for (bid, b) in self.iter_blocks() {
            if let Some(pos) = b.position_of(id) {
                return Some((bid, pos));
            }
        }
        None
    }

    /// Predecessor lists for every block (indexed by block id).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bid, b) in self.iter_blocks() {
            for s in b.successors() {
                preds[s.index()].push(bid);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Op};

    #[test]
    fn new_function_shape() {
        let f = Function::new(FuncId(0), "f", 2, 1);
        assert_eq!(f.name(), "f");
        assert_eq!(f.param_count(), 2);
        assert_eq!(f.ret_count(), 1);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.params().collect::<Vec<_>>(), vec![Reg(0), Reg(1)]);
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn fresh_regs_follow_params() {
        let mut f = Function::new(FuncId(0), "f", 2, 0);
        assert_eq!(f.fresh_reg(), Reg(2));
        assert_eq!(f.fresh_reg(), Reg(3));
        assert_eq!(f.reg_limit(), 4);
    }

    #[test]
    fn blocks_and_preds() {
        let mut f = Function::new(FuncId(0), "f", 0, 0);
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.block_mut(f.entry())
            .instrs
            .push(Instr::new(InstrId(0), Op::Jump { target: b1 }));
        f.block_mut(b1)
            .instrs
            .push(Instr::new(InstrId(1), Op::Jump { target: b2 }));
        f.block_mut(b2)
            .instrs
            .push(Instr::new(InstrId(2), Op::Ret { values: vec![] }));
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![b1]);
        assert_eq!(f.instr_count(), 3);
    }

    #[test]
    fn find_instr_locates() {
        let mut f = Function::new(FuncId(0), "f", 0, 0);
        let b1 = f.add_block();
        f.block_mut(b1)
            .instrs
            .push(Instr::new(InstrId(42), Op::Nop));
        assert_eq!(f.find_instr(InstrId(42)), Some((b1, 0)));
        assert_eq!(f.find_instr(InstrId(1)), None);
    }
}

//! Basic blocks.

use std::fmt;

use crate::instr::{Instr, InstrId};

/// Identifier of a [`Block`] within a [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: a straight-line instruction sequence ending in a
/// single terminator (branch, jump, return, or reuse).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// The instructions of the block, terminator last.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block { instrs: Vec::new() }
    }

    /// The block's terminator, if the block is non-empty and properly
    /// terminated.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut Instr> {
        self.instrs.last_mut().filter(|i| i.is_terminator())
    }

    /// Successor block ids of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().map_or_else(Vec::new, Instr::successors)
    }

    /// Finds the position of an instruction by id.
    pub fn position_of(&self, id: InstrId) -> Option<usize> {
        self.instrs.iter().position(|i| i.id == id)
    }

    /// Number of instructions, including the terminator.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Op};
    use crate::reg::Operand;

    #[test]
    fn empty_block() {
        let b = Block::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(b.terminator().is_none());
        assert!(b.successors().is_empty());
    }

    #[test]
    fn terminated_block() {
        let mut b = Block::new();
        b.instrs
            .push(Instr::new(InstrId(0), Op::Jump { target: BlockId(2) }));
        assert_eq!(b.successors(), vec![BlockId(2)]);
        assert!(b.terminator().is_some());
        b.terminator_mut().unwrap().map_successors(|_| BlockId(3));
        assert_eq!(b.successors(), vec![BlockId(3)]);
    }

    #[test]
    fn non_terminator_tail_yields_none() {
        let mut b = Block::new();
        b.instrs.push(Instr::new(
            InstrId(1),
            Op::Ret {
                values: vec![Operand::Imm(0)],
            },
        ));
        assert!(b.terminator().is_some());
        b.instrs.push(Instr::new(InstrId(2), Op::Nop));
        assert!(b.terminator().is_none());
    }

    #[test]
    fn position_of_finds_by_id() {
        let mut b = Block::new();
        b.instrs.push(Instr::new(InstrId(5), Op::Nop));
        b.instrs.push(Instr::new(InstrId(9), Op::Nop));
        assert_eq!(b.position_of(InstrId(9)), Some(1));
        assert_eq!(b.position_of(InstrId(4)), None);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(4).to_string(), "b4");
        assert_eq!(BlockId(4).index(), 4);
    }
}

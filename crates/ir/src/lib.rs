#![warn(missing_docs)]

//! # ccr-ir — the intermediate representation of the CCR framework
//!
//! This crate implements a low-level, register-machine intermediate
//! representation modeled after the IR a compiler back end (such as the
//! IMPACT compiler used by Connors & Hwu, MICRO-32 1999) would hand to
//! its code generator:
//!
//! * an infinite virtual register file of 64-bit integer / float values
//!   ([`Reg`], [`Value`]),
//! * *named memory objects* (globals and constant tables) addressed by
//!   element index ([`MemObject`]), which is what makes the paper's
//!   "determinable load" classification decidable,
//! * explicit basic blocks with compare-and-branch terminators
//!   ([`Block`], [`Op::Branch`]),
//! * functions with call/return ([`Function`]), and
//! * the CCR instruction-set extensions of the paper: the
//!   [`Op::Reuse`] and [`Op::Invalidate`] instructions plus the
//!   live-out / region-endpoint / region-exit instruction extensions
//!   ([`InstrExt`]).
//!
//! A [`ProgramBuilder`] / [`FunctionBuilder`] DSL is provided for
//! constructing programs (used heavily by `ccr-workloads`), together
//! with a structural [`verify`](verify::verify_program) pass and a
//! pretty-printer.
//!
//! ## Example
//!
//! ```
//! use ccr_ir::{ProgramBuilder, Operand};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0, 1);
//! let x = f.movi(4);
//! let t = f.add(x, Operand::Imm(2));
//! let y = f.mul(t, x);
//! f.ret(&[Operand::Reg(y)]);
//! let main = pb.finish_function(f);
//! pb.set_main(main);
//! let program = pb.finish();
//! assert_eq!(program.functions().len(), 1);
//! ccr_ir::verify::verify_program(&program).unwrap();
//! ```

pub mod block;
pub mod builder;
pub mod function;
pub mod instr;
pub mod layout;
pub mod object;
pub mod parse;
pub mod print;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod verify;

pub use block::{Block, BlockId};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use function::{FuncId, Function};
pub use instr::{BinKind, CmpPred, Instr, InstrExt, InstrId, Op, OpClass, RegionId, UnKind};
pub use layout::CodeLayout;
pub use object::{MemObject, MemObjectId, ObjectKind};
pub use parse::{parse_program, ParseError};
pub use program::Program;
pub use reg::{Operand, Reg, Value};
pub use verify::{verify_program, VerifyError};

//! Code and data layout.
//!
//! The timing simulator models instruction and data caches, which need
//! addresses. [`CodeLayout`] assigns every instruction a 4-byte slot in
//! a linear code image (functions laid out in id order, blocks in id
//! order) and every memory object an 8-byte-element region in a linear
//! data image (64-byte aligned, matching a cache-line-aligned loader).

use std::collections::HashMap;

use crate::instr::InstrId;
use crate::object::MemObjectId;
use crate::program::Program;

/// Byte size of one instruction slot in the code image.
pub const INSTR_BYTES: u64 = 4;
/// Byte size of one memory-object element in the data image.
pub const ELEM_BYTES: u64 = 8;
/// Alignment of memory objects in the data image.
pub const OBJECT_ALIGN: u64 = 64;

/// Addresses assigned to a program's instructions and objects.
#[derive(Clone, Debug, Default)]
pub struct CodeLayout {
    code_addr: HashMap<InstrId, u64>,
    object_base: Vec<u64>,
    code_size: u64,
    data_size: u64,
}

impl CodeLayout {
    /// Computes the layout of `program`.
    pub fn of(program: &Program) -> CodeLayout {
        let mut code_addr = HashMap::new();
        let mut pc = 0u64;
        for func in program.functions() {
            for (_, instr) in func.iter_instrs() {
                code_addr.insert(instr.id, pc);
                pc += INSTR_BYTES;
            }
        }
        let mut object_base = Vec::with_capacity(program.objects().len());
        let mut data = 0u64;
        for obj in program.objects() {
            data = data.next_multiple_of(OBJECT_ALIGN);
            object_base.push(data);
            data += obj.size() as u64 * ELEM_BYTES;
        }
        CodeLayout {
            code_addr,
            object_base,
            code_size: pc,
            data_size: data,
        }
    }

    /// The code address of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was not part of the laid-out program
    /// (e.g. the layout is stale after a transformation).
    pub fn code_addr(&self, id: InstrId) -> u64 {
        *self
            .code_addr
            .get(&id)
            .unwrap_or_else(|| panic!("no address for {id}; stale layout?"))
    }

    /// The data address of `object[index]`.
    pub fn data_addr(&self, object: MemObjectId, index: u64) -> u64 {
        self.object_base[object.index()] + index * ELEM_BYTES
    }

    /// Total code image size in bytes.
    pub fn code_size(&self) -> u64 {
        self.code_size
    }

    /// Total data image size in bytes.
    pub fn data_size(&self) -> u64 {
        self.data_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Operand;

    #[test]
    fn layout_assigns_sequential_code_addresses() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let a = f.movi(1);
        let b = f.add(a, 2);
        f.ret(&[Operand::Reg(b)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let l = CodeLayout::of(&p);
        let addrs: Vec<u64> = p
            .function(id)
            .iter_instrs()
            .map(|(_, i)| l.code_addr(i.id))
            .collect();
        assert_eq!(addrs, vec![0, 4, 8]);
        assert_eq!(l.code_size(), 12);
    }

    #[test]
    fn objects_are_aligned_and_disjoint() {
        let mut pb = ProgramBuilder::new();
        let a = pb.object("a", 3);
        let b = pb.object("b", 10);
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let l = CodeLayout::of(&p);
        assert_eq!(l.data_addr(a, 0) % OBJECT_ALIGN, 0);
        assert_eq!(l.data_addr(b, 0) % OBJECT_ALIGN, 0);
        // Object b starts past the end of a.
        assert!(l.data_addr(b, 0) >= l.data_addr(a, 2) + ELEM_BYTES);
        assert_eq!(l.data_addr(b, 1) - l.data_addr(b, 0), ELEM_BYTES);
        assert!(l.data_size() >= 64 + 80);
    }

    #[test]
    #[should_panic(expected = "no address")]
    fn stale_layout_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let l = CodeLayout::of(&p);
        l.code_addr(InstrId(999));
    }
}

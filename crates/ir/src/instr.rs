//! Instructions, opcodes, and the CCR instruction-set extensions.

use std::fmt;

use crate::block::BlockId;
use crate::function::FuncId;
use crate::object::MemObjectId;
use crate::reg::{Operand, Reg};

/// Program-wide unique instruction identifier.
///
/// Identifiers are assigned by the builder and remain stable across
/// later transformations (region annotation inserts new instructions
/// with fresh ids but never renumbers existing ones), so profile data
/// keyed by `InstrId` survives the annotation pass.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstrId(pub u32);

impl InstrId {
    /// Raw index of the identifier.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Identifier of a reusable computation region.
///
/// The compiler assigns each RCR a number; the `reuse` instruction
/// carries it and the Computation Reuse Buffer is indexed by it
/// ("the CRB is a set-associative structure indexed by an identifier
/// number which is specified by the proposed ISA extensions").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Raw index of the identifier.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rcr{}", self.0)
    }
}

/// Two-operand integer / floating-point operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinKind {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division; division by zero yields zero (the
    /// emulator defines this rather than faulting).
    Div,
    /// Signed remainder; remainder by zero yields zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Comparison producing 0 or 1 (see [`CmpPred`]); encoded with the
    /// predicate in [`Op::Cmp`], not here.
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
}

impl BinKind {
    /// True for the floating-point kinds (issue on the FP ALUs).
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinKind::FAdd | BinKind::FSub | BinKind::FMul | BinKind::FDiv
        )
    }

    /// Mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
            BinKind::Rem => "rem",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Shl => "shl",
            BinKind::Shr => "shr",
            BinKind::Sar => "sar",
            BinKind::Min => "min",
            BinKind::Max => "max",
            BinKind::FAdd => "fadd",
            BinKind::FSub => "fsub",
            BinKind::FMul => "fmul",
            BinKind::FDiv => "fdiv",
        }
    }
}

/// One-operand operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnKind {
    /// Register / immediate move.
    Mov,
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Convert integer to float (`f64` bit pattern).
    IntToFloat,
    /// Convert float to integer (truncating; NaN and out-of-range
    /// saturate, mirroring Rust's `as` cast).
    FloatToInt,
}

impl UnKind {
    /// Mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnKind::Mov => "mov",
            UnKind::Neg => "neg",
            UnKind::Not => "not",
            UnKind::IntToFloat => "i2f",
            UnKind::FloatToInt => "f2i",
        }
    }

    /// True for the floating-point conversion kinds.
    pub fn is_float(self) -> bool {
        matches!(self, UnKind::IntToFloat | UnKind::FloatToInt)
    }
}

/// Comparison predicates for [`Op::Cmp`] and [`Op::Branch`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpPred {
    /// Evaluates the predicate on two signed integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }

    /// The predicate with operands swapped (`a P b` ⇔ `b P.swap() a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Lt => CmpPred::Gt,
            CmpPred::Le => CmpPred::Ge,
            CmpPred::Gt => CmpPred::Lt,
            CmpPred::Ge => CmpPred::Le,
        }
    }

    /// The logical negation of the predicate.
    pub fn negated(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Lt => CmpPred::Ge,
            CmpPred::Le => CmpPred::Gt,
            CmpPred::Gt => CmpPred::Le,
            CmpPred::Ge => CmpPred::Lt,
        }
    }

    /// Mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }
}

/// CCR instruction-set extensions, encoded as flag bits on an
/// instruction (the paper adds these as new instruction *extensions*
/// rather than new opcodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct InstrExt(u8);

impl InstrExt {
    /// No extensions.
    pub const NONE: InstrExt = InstrExt(0);
    /// Live-out extension: during memoization mode, the destination
    /// register of this instruction is recorded in the output bank of
    /// the computation instance under construction.
    pub const LIVE_OUT: InstrExt = InstrExt(1);
    /// Region-endpoint extension on a control instruction: executing
    /// it terminates memoization mode and records the instance.
    pub const REGION_END: InstrExt = InstrExt(2);
    /// Region-exit extension on a control instruction: executing it
    /// aborts memoization mode without recording ("no reuse along
    /// paths from inception to exit point").
    pub const REGION_EXIT: InstrExt = InstrExt(4);

    /// The union of two extension sets.
    pub fn union(self, other: InstrExt) -> InstrExt {
        InstrExt(self.0 | other.0)
    }

    /// True if every bit of `other` is present in `self`.
    pub fn contains(self, other: InstrExt) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no extension bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for InstrExt {
    type Output = InstrExt;
    fn bitor(self, rhs: InstrExt) -> InstrExt {
        self.union(rhs)
    }
}

impl fmt::Display for InstrExt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        let mut put = |s: &str, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, "|")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if self.contains(InstrExt::LIVE_OUT) {
            put("live_out", f)?;
        }
        if self.contains(InstrExt::REGION_END) {
            put("region_end", f)?;
        }
        if self.contains(InstrExt::REGION_EXIT) {
            put("region_exit", f)?;
        }
        Ok(())
    }
}

/// The operation performed by an instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// `dst = lhs <kind> rhs`.
    Binary {
        /// Operation kind.
        kind: BinKind,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = <kind> src`.
    Unary {
        /// Operation kind.
        kind: UnKind,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = (lhs <pred> rhs) ? 1 : 0`.
    Cmp {
        /// Comparison predicate.
        pred: CmpPred,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = object[addr + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory object accessed.
        object: MemObjectId,
        /// Element index operand.
        addr: Operand,
        /// Constant index addend.
        offset: i64,
    },
    /// `object[addr + offset] = value`.
    Store {
        /// Memory object accessed.
        object: MemObjectId,
        /// Element index operand.
        addr: Operand,
        /// Constant index addend.
        offset: i64,
        /// Value stored.
        value: Operand,
    },
    /// Compare-and-branch: if `lhs <pred> rhs` jump to `taken`, else
    /// fall through to `not_taken` (both targets are explicit).
    Branch {
        /// Comparison predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Target when the condition holds.
        taken: BlockId,
        /// Target when the condition does not hold.
        not_taken: BlockId,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Call `callee(args...)`, receiving `rets` on return.
    Call {
        /// Callee function.
        callee: FuncId,
        /// Argument operands (bound to the callee's parameter registers).
        args: Vec<Operand>,
        /// Registers receiving the callee's return values.
        rets: Vec<Reg>,
    },
    /// Return `values` to the caller. Returning from the entry
    /// function halts the program.
    Ret {
        /// Returned operands.
        values: Vec<Operand>,
    },
    /// The paper's *computation reuse* instruction.
    ///
    /// Semantics: consult the CRB entry for `region`. If a valid
    /// computation instance matches the current input-register values
    /// (and its memory state has not been invalidated), update the
    /// live-out registers from the instance's output bank and continue
    /// at `cont`, skipping the region body entirely. Otherwise branch
    /// to `body` and enter *memoization mode*, recording a new
    /// instance as the body executes.
    Reuse {
        /// Region identifier (indexes the CRB).
        region: RegionId,
        /// Entry block of the region body (taken on reuse miss).
        body: BlockId,
        /// Continuation after the region (taken on reuse hit).
        cont: BlockId,
    },
    /// The paper's *computation invalidate* instruction: marks the
    /// memory-dependent computation instances recorded for `region`
    /// as no longer valid. The compiler places one after every store
    /// that may write one of the region's input memory structures.
    Invalidate {
        /// Region whose memory-dependent instances are invalidated.
        region: RegionId,
    },
    /// No operation (used as a placeholder by some transformations).
    Nop,
}

/// Functional-unit class of an instruction, used by the timing model
/// to enforce structural hazards (4 integer ALUs, 2 memory ports, 2 FP
/// ALUs, 1 branch unit in the paper's 6-issue machine).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Integer ALU operation (1-cycle latency).
    IntAlu,
    /// Integer multiply/divide (longer latency, still on an ALU).
    IntMul,
    /// Floating-point ALU operation.
    FpAlu,
    /// Memory load (2-cycle hit latency).
    Load,
    /// Memory store.
    Store,
    /// Branch, jump, call, or return.
    Branch,
    /// Computation reuse instruction.
    Reuse,
    /// Computation invalidate instruction.
    Invalidate,
}

/// A single instruction: an operation plus its CCR extensions and its
/// program-wide identifier.
#[derive(Clone, PartialEq, Debug)]
pub struct Instr {
    /// Program-wide unique identifier.
    pub id: InstrId,
    /// The operation.
    pub op: Op,
    /// CCR instruction-set extensions.
    pub ext: InstrExt,
}

impl Instr {
    /// Creates an instruction with no extensions.
    pub fn new(id: InstrId, op: Op) -> Instr {
        Instr {
            id,
            op,
            ext: InstrExt::NONE,
        }
    }

    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match &self.op {
            Op::Binary { dst, .. } | Op::Unary { dst, .. } | Op::Cmp { dst, .. } => Some(*dst),
            Op::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All destination registers (calls may write several).
    pub fn dsts(&self) -> Vec<Reg> {
        match &self.op {
            Op::Call { rets, .. } => rets.clone(),
            _ => self.dst().into_iter().collect(),
        }
    }

    /// Source operands read by this instruction.
    pub fn src_operands(&self) -> Vec<Operand> {
        match &self.op {
            Op::Binary { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::Unary { src, .. } => vec![*src],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value, .. } => vec![*addr, *value],
            Op::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::Call { args, .. } => args.clone(),
            Op::Ret { values } => values.clone(),
            Op::Jump { .. } | Op::Reuse { .. } | Op::Invalidate { .. } | Op::Nop => vec![],
        }
    }

    /// Source registers read by this instruction (immediates skipped).
    pub fn src_regs(&self) -> Vec<Reg> {
        self.src_operands()
            .into_iter()
            .filter_map(Operand::as_reg)
            .collect()
    }

    /// True if this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.op,
            Op::Branch { .. } | Op::Jump { .. } | Op::Ret { .. } | Op::Reuse { .. }
        )
    }

    /// Successor blocks if this is a terminator (`Ret` has none).
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.op {
            Op::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Op::Jump { target } => vec![*target],
            Op::Reuse { body, cont, .. } => vec![*body, *cont],
            _ => vec![],
        }
    }

    /// Rewrites successor block ids through `f` (used by block-splitting
    /// transformations).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match &mut self.op {
            Op::Branch {
                taken, not_taken, ..
            } => {
                *taken = f(*taken);
                *not_taken = f(*not_taken);
            }
            Op::Jump { target } => *target = f(*target),
            Op::Reuse { body, cont, .. } => {
                *body = f(*body);
                *cont = f(*cont);
            }
            _ => {}
        }
    }

    /// The functional-unit class of this instruction.
    pub fn class(&self) -> OpClass {
        match &self.op {
            Op::Binary { kind, .. } => {
                if kind.is_float() {
                    OpClass::FpAlu
                } else if matches!(kind, BinKind::Mul | BinKind::Div | BinKind::Rem) {
                    OpClass::IntMul
                } else {
                    OpClass::IntAlu
                }
            }
            Op::Unary { kind, .. } => {
                if kind.is_float() {
                    OpClass::FpAlu
                } else {
                    OpClass::IntAlu
                }
            }
            Op::Cmp { .. } => OpClass::IntAlu,
            Op::Load { .. } => OpClass::Load,
            Op::Store { .. } => OpClass::Store,
            Op::Branch { .. } | Op::Jump { .. } | Op::Call { .. } | Op::Ret { .. } => {
                OpClass::Branch
            }
            Op::Reuse { .. } => OpClass::Reuse,
            Op::Invalidate { .. } => OpClass::Invalidate,
            Op::Nop => OpClass::IntAlu,
        }
    }

    /// True if the instruction may read memory.
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Load { .. })
    }

    /// True if the instruction may write memory.
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::Store { .. })
    }

    /// True if the instruction is a call.
    pub fn is_call(&self) -> bool {
        matches!(self.op, Op::Call { .. })
    }

    /// The memory object accessed, if this is a load or store.
    pub fn mem_object(&self) -> Option<MemObjectId> {
        match &self.op {
            Op::Load { object, .. } | Op::Store { object, .. } => Some(*object),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instr(op: Op) -> Instr {
        Instr::new(InstrId(0), op)
    }

    #[test]
    fn cmp_pred_eval_all() {
        assert!(CmpPred::Eq.eval(1, 1));
        assert!(CmpPred::Ne.eval(1, 2));
        assert!(CmpPred::Lt.eval(-1, 0));
        assert!(CmpPred::Le.eval(0, 0));
        assert!(CmpPred::Gt.eval(5, 4));
        assert!(CmpPred::Ge.eval(5, 5));
        assert!(!CmpPred::Lt.eval(0, -1));
    }

    #[test]
    fn cmp_pred_negation_is_involutive_and_complementary() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(p.negated().negated(), p);
            for (a, b) in [(0, 0), (1, 2), (-3, 5), (7, -7)] {
                assert_eq!(p.eval(a, b), !p.negated().eval(a, b));
                assert_eq!(p.eval(a, b), p.swapped().eval(b, a));
            }
        }
    }

    #[test]
    fn ext_flags() {
        let e = InstrExt::LIVE_OUT | InstrExt::REGION_END;
        assert!(e.contains(InstrExt::LIVE_OUT));
        assert!(e.contains(InstrExt::REGION_END));
        assert!(!e.contains(InstrExt::REGION_EXIT));
        assert!(!e.is_empty());
        assert!(InstrExt::NONE.is_empty());
        assert_eq!(e.to_string(), "live_out|region_end");
        assert_eq!(InstrExt::NONE.to_string(), "-");
    }

    #[test]
    fn dst_and_srcs() {
        let i = instr(Op::Binary {
            kind: BinKind::Add,
            dst: Reg(2),
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(1),
        });
        assert_eq!(i.dst(), Some(Reg(2)));
        assert_eq!(i.src_regs(), vec![Reg(0)]);
        assert_eq!(i.class(), OpClass::IntAlu);
        assert!(!i.is_terminator());
    }

    #[test]
    fn call_dsts() {
        let i = instr(Op::Call {
            callee: FuncId(0),
            args: vec![Operand::Reg(Reg(1))],
            rets: vec![Reg(2), Reg(3)],
        });
        assert_eq!(i.dsts(), vec![Reg(2), Reg(3)]);
        assert_eq!(i.src_regs(), vec![Reg(1)]);
        assert_eq!(i.class(), OpClass::Branch);
    }

    #[test]
    fn terminator_successors() {
        let b = instr(Op::Branch {
            pred: CmpPred::Lt,
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(10),
            taken: BlockId(1),
            not_taken: BlockId(2),
        });
        assert!(b.is_terminator());
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);

        let r = instr(Op::Reuse {
            region: RegionId(0),
            body: BlockId(3),
            cont: BlockId(4),
        });
        assert!(r.is_terminator());
        assert_eq!(r.successors(), vec![BlockId(3), BlockId(4)]);
        assert_eq!(r.class(), OpClass::Reuse);

        let ret = instr(Op::Ret { values: vec![] });
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn map_successors_rewrites() {
        let mut j = instr(Op::Jump { target: BlockId(5) });
        j.map_successors(|b| BlockId(b.0 + 1));
        assert_eq!(j.successors(), vec![BlockId(6)]);
    }

    #[test]
    fn classes() {
        assert_eq!(
            instr(Op::Binary {
                kind: BinKind::Mul,
                dst: Reg(0),
                lhs: Operand::Imm(1),
                rhs: Operand::Imm(2)
            })
            .class(),
            OpClass::IntMul
        );
        assert_eq!(
            instr(Op::Binary {
                kind: BinKind::FAdd,
                dst: Reg(0),
                lhs: Operand::Imm(1),
                rhs: Operand::Imm(2)
            })
            .class(),
            OpClass::FpAlu
        );
        assert_eq!(
            instr(Op::Load {
                dst: Reg(0),
                object: MemObjectId(0),
                addr: Operand::Imm(0),
                offset: 0
            })
            .class(),
            OpClass::Load
        );
        assert_eq!(
            instr(Op::Invalidate {
                region: RegionId(0)
            })
            .class(),
            OpClass::Invalidate
        );
    }

    #[test]
    fn memory_accessors() {
        let l = instr(Op::Load {
            dst: Reg(0),
            object: MemObjectId(7),
            addr: Operand::Imm(0),
            offset: 0,
        });
        assert!(l.is_load());
        assert!(!l.is_store());
        assert_eq!(l.mem_object(), Some(MemObjectId(7)));
        let s = instr(Op::Store {
            object: MemObjectId(7),
            addr: Operand::Imm(0),
            offset: 1,
            value: Operand::Imm(9),
        });
        assert!(s.is_store());
        assert_eq!(s.src_operands().len(), 2);
    }
}

//! Operation semantics shared by the emulator and the optimizer.
//!
//! Keeping the arithmetic definitions in one place guarantees that
//! constant folding can never disagree with execution:
//!
//! * integer operations wrap;
//! * division and remainder by zero yield zero (the machine is total);
//! * shift amounts are taken modulo 64;
//! * floating-point operations act on the IEEE-754 interpretation of
//!   the 64-bit word; float→int conversion saturates (NaN → 0).

use crate::instr::{BinKind, CmpPred, UnKind};
use crate::reg::Value;

/// Evaluates a two-operand operation.
pub fn eval_binary(kind: BinKind, a: Value, b: Value) -> Value {
    let (x, y) = (a.as_int(), b.as_int());
    match kind {
        BinKind::Add => Value::from_int(x.wrapping_add(y)),
        BinKind::Sub => Value::from_int(x.wrapping_sub(y)),
        BinKind::Mul => Value::from_int(x.wrapping_mul(y)),
        BinKind::Div => Value::from_int(if y == 0 { 0 } else { x.wrapping_div(y) }),
        BinKind::Rem => Value::from_int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
        BinKind::And => Value::from_int(x & y),
        BinKind::Or => Value::from_int(x | y),
        BinKind::Xor => Value::from_int(x ^ y),
        BinKind::Shl => Value::from_int(x.wrapping_shl(y as u32 & 63)),
        BinKind::Shr => Value::from_int(((x as u64).wrapping_shr(y as u32 & 63)) as i64),
        BinKind::Sar => Value::from_int(x.wrapping_shr(y as u32 & 63)),
        BinKind::Min => Value::from_int(x.min(y)),
        BinKind::Max => Value::from_int(x.max(y)),
        BinKind::FAdd => Value::from_f64(a.as_f64() + b.as_f64()),
        BinKind::FSub => Value::from_f64(a.as_f64() - b.as_f64()),
        BinKind::FMul => Value::from_f64(a.as_f64() * b.as_f64()),
        BinKind::FDiv => Value::from_f64(a.as_f64() / b.as_f64()),
    }
}

/// Evaluates a one-operand operation.
pub fn eval_unary(kind: UnKind, a: Value) -> Value {
    match kind {
        UnKind::Mov => a,
        UnKind::Neg => Value::from_int(a.as_int().wrapping_neg()),
        UnKind::Not => Value::from_int(!a.as_int()),
        UnKind::IntToFloat => Value::from_f64(a.as_int() as f64),
        UnKind::FloatToInt => Value::from_int(a.as_f64() as i64),
    }
}

/// Evaluates a comparison to 0 or 1.
pub fn eval_cmp(pred: CmpPred, a: Value, b: Value) -> Value {
    Value::from_int(pred.eval(a.as_int(), b.as_int()) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_and_totality() {
        assert_eq!(
            eval_binary(BinKind::Add, Value::from_int(i64::MAX), Value::from_int(1)).as_int(),
            i64::MIN
        );
        assert_eq!(
            eval_binary(BinKind::Div, Value::from_int(5), Value::ZERO).as_int(),
            0
        );
        assert_eq!(
            eval_binary(BinKind::Rem, Value::from_int(5), Value::ZERO).as_int(),
            0
        );
        assert_eq!(
            eval_binary(BinKind::Shr, Value::from_int(-1), Value::from_int(1)).as_int(),
            i64::MAX
        );
        assert_eq!(
            eval_binary(BinKind::Shl, Value::from_int(1), Value::from_int(64)).as_int(),
            1,
            "shift amounts are mod 64"
        );
    }

    #[test]
    fn min_max_and_logic() {
        let a = Value::from_int(-3);
        let b = Value::from_int(9);
        assert_eq!(eval_binary(BinKind::Min, a, b).as_int(), -3);
        assert_eq!(eval_binary(BinKind::Max, a, b).as_int(), 9);
        assert_eq!(eval_binary(BinKind::Xor, b, b).as_int(), 0);
    }

    #[test]
    fn float_semantics() {
        let two = Value::from_f64(2.0);
        let eight = Value::from_f64(8.0);
        assert_eq!(eval_binary(BinKind::FMul, two, eight).as_f64(), 16.0);
        assert_eq!(eval_binary(BinKind::FDiv, eight, two).as_f64(), 4.0);
        let nan = eval_binary(BinKind::FDiv, Value::from_f64(0.0), Value::from_f64(0.0));
        assert_eq!(eval_unary(UnKind::FloatToInt, nan).as_int(), 0);
        assert_eq!(
            eval_unary(UnKind::IntToFloat, Value::from_int(3)).as_f64(),
            3.0
        );
    }

    #[test]
    fn unary_and_cmp() {
        assert_eq!(
            eval_unary(UnKind::Neg, Value::from_int(i64::MIN)).as_int(),
            i64::MIN
        );
        assert_eq!(eval_unary(UnKind::Not, Value::ZERO).as_int(), -1);
        assert_eq!(
            eval_cmp(CmpPred::Le, Value::from_int(2), Value::from_int(2)).as_int(),
            1
        );
        assert_eq!(
            eval_cmp(CmpPred::Gt, Value::from_int(2), Value::from_int(2)).as_int(),
            0
        );
    }
}

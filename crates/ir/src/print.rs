//! Pretty-printing of programs in a readable assembly-like syntax.

use std::fmt;

use crate::block::BlockId;
use crate::function::Function;
use crate::instr::{Instr, Op};
use crate::program::Program;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            Op::Binary {
                kind,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = {} {lhs}, {rhs}", kind.mnemonic())?,
            Op::Unary { kind, dst, src } => write!(f, "{dst} = {} {src}", kind.mnemonic())?,
            Op::Cmp {
                pred,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = cmp.{} {lhs}, {rhs}", pred.mnemonic())?,
            Op::Load {
                dst,
                object,
                addr,
                offset,
            } => {
                if *offset == 0 {
                    write!(f, "{dst} = load {object}[{addr}]")?
                } else {
                    write!(f, "{dst} = load {object}[{addr}+{offset}]")?
                }
            }
            Op::Store {
                object,
                addr,
                offset,
                value,
            } => {
                if *offset == 0 {
                    write!(f, "store {object}[{addr}] = {value}")?
                } else {
                    write!(f, "store {object}[{addr}+{offset}] = {value}")?
                }
            }
            Op::Branch {
                pred,
                lhs,
                rhs,
                taken,
                not_taken,
            } => write!(
                f,
                "br.{} {lhs}, {rhs} -> {taken} else {not_taken}",
                pred.mnemonic()
            )?,
            Op::Jump { target } => write!(f, "jump {target}")?,
            Op::Call { callee, args, rets } => {
                let rets_s = rets
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let args_s = args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                if rets.is_empty() {
                    write!(f, "call {callee}({args_s})")?
                } else {
                    write!(f, "{rets_s} = call {callee}({args_s})")?
                }
            }
            Op::Ret { values } => {
                let vals = values
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "ret {vals}")?
            }
            Op::Reuse { region, body, cont } => {
                write!(f, "reuse {region} body={body} cont={cont}")?
            }
            Op::Invalidate { region } => write!(f, "invalidate {region}")?,
            Op::Nop => write!(f, "nop")?,
        }
        if !self.ext.is_empty() {
            write!(f, "  ; ext: {}", self.ext)?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "func {} \"{}\" (params={}, rets={}):",
            self.id(),
            self.name(),
            self.param_count(),
            self.ret_count()
        )?;
        for (bid, block) in self.iter_blocks() {
            let marker = if bid == self.entry() { " (entry)" } else { "" };
            writeln!(f, "  {bid}{marker}:")?;
            for instr in &block.instrs {
                writeln!(f, "    {:>5}  {instr}", instr.id.to_string())?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program main={}", self.main())?;
        for obj in self.objects() {
            write!(
                f,
                "object {} \"{}\" kind={:?} size={}",
                obj.id(),
                obj.name(),
                obj.kind(),
                obj.size()
            )?;
            if !obj.init().is_empty() {
                let vals: Vec<String> = obj.init().iter().map(|v| v.as_int().to_string()).collect();
                write!(f, " init=[{}]", vals.join(", "))?;
            }
            writeln!(f)?;
        }
        for (i, func) in self.functions().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

/// Renders a single block (handy in debug output and error messages).
pub fn block_to_string(func: &Function, bid: BlockId) -> String {
    let mut s = format!("{bid}:\n");
    for instr in &func.block(bid).instrs {
        s.push_str(&format!("  {instr}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::instr::{CmpPred, InstrExt};
    use crate::reg::Operand;

    #[test]
    fn program_prints_all_parts() {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("bits", vec![0, 1, 1, 2]);
        let mut f = pb.function("main", 0, 1);
        let x = f.load(t, 2i64);
        let body = f.block();
        let done = f.block();
        f.br(CmpPred::Lt, x, 10i64, body, done);
        f.switch_to(body);
        f.store(t, 0i64, 0i64); // would fail verify, but printing is independent
        f.jump(done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(x)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let s = p.to_string();
        assert!(s.contains("object @0 \"bits\""), "{s}");
        assert!(s.contains("load @0[2]"), "{s}");
        assert!(s.contains("br.lt"), "{s}");
        assert!(s.contains("(entry)"), "{s}");
        assert!(s.contains("ret r0"), "{s}");
    }

    #[test]
    fn extensions_are_rendered() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.nop();
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        p.function_mut(id).block_mut(crate::BlockId(0)).instrs[0].ext = InstrExt::LIVE_OUT;
        let s = p.to_string();
        assert!(s.contains("ext: live_out"), "{s}");
    }

    #[test]
    fn block_to_string_renders() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.nop();
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        let s = super::block_to_string(p.function(id), crate::BlockId(0));
        assert!(s.starts_with("b0:"), "{s}");
        assert!(s.contains("nop"), "{s}");
    }
}

//! Named memory objects.
//!
//! The CCR compiler's memory-dependent region formation relies on the
//! "complete points-to relation" for *named* data structures (the paper
//! cites Emami-Ghiya-Hendren interprocedural points-to analysis and
//! restricts reuse to "globally and locally-named structures").
//! We model memory as a set of named objects, each a flat array of
//! 64-bit words addressed by element index. Loads and stores name the
//! object they access directly, so points-to information is exact for
//! named objects — precisely the situation the paper's analysis
//! achieves for the structures it reuses. Anonymous (heap) objects also
//! exist but are never classified *determinable*, matching the paper's
//! exclusion of anonymous data structures.

use std::fmt;

use crate::reg::Value;

/// Identifier of a [`MemObject`] within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemObjectId(pub u32);

impl MemObjectId {
    /// Raw index of the object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// How an object is named, which determines whether loads from it can
/// be classified *determinable* by alias analysis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A global or locally-named structure: the set of stores that may
    /// write it is fully visible to the compiler.
    Named,
    /// A read-only table (e.g. `bit_count[]` in the paper's espresso
    /// example): no store may write it, so it is trivially
    /// determinable and never needs invalidation.
    ReadOnly,
    /// Anonymous (heap-like) storage. Loads from anonymous objects are
    /// never determinable; the paper leaves these to future work.
    Anonymous,
}

/// A named, statically-allocated memory object.
///
/// Each object is a dense array of [`Value`] words. Element `i` of
/// object `o` models the address `base(o) + 8*i`.
#[derive(Clone, PartialEq, Debug)]
pub struct MemObject {
    id: MemObjectId,
    name: String,
    kind: ObjectKind,
    size: usize,
    init: Vec<Value>,
}

impl MemObject {
    /// Creates a new object description.
    ///
    /// `init` provides initial contents for a prefix of the object;
    /// remaining words start at zero.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() > size`.
    pub fn new(
        id: MemObjectId,
        name: impl Into<String>,
        kind: ObjectKind,
        size: usize,
        init: Vec<Value>,
    ) -> MemObject {
        assert!(
            init.len() <= size,
            "object initializer longer than object size"
        );
        MemObject {
            id,
            name: name.into(),
            kind,
            size,
            init,
        }
    }

    /// The object's identifier.
    pub fn id(&self) -> MemObjectId {
        self.id
    }

    /// The object's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The object's naming kind.
    pub fn kind(&self) -> ObjectKind {
        self.kind
    }

    /// Number of 64-bit elements in the object.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The declared initializer (a prefix of the object contents).
    pub fn init(&self) -> &[Value] {
        &self.init
    }

    /// Replaces the initializer contents.
    ///
    /// Used by workload generators to install input data images.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() > self.size()`.
    pub fn set_init(&mut self, init: Vec<Value>) {
        assert!(init.len() <= self.size, "initializer longer than object");
        self.init = init;
    }

    /// True if no store instruction is permitted to write this object.
    pub fn is_read_only(&self) -> bool {
        self.kind == ObjectKind::ReadOnly
    }

    /// Materializes the full initial contents (initializer followed by
    /// zeros up to `size`).
    pub fn initial_contents(&self) -> Vec<Value> {
        let mut v = self.init.clone();
        v.resize(self.size, Value::ZERO);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(kind: ObjectKind) -> MemObject {
        MemObject::new(
            MemObjectId(0),
            "tbl",
            kind,
            4,
            vec![Value::from_int(7), Value::from_int(8)],
        )
    }

    #[test]
    fn accessors() {
        let o = obj(ObjectKind::Named);
        assert_eq!(o.id(), MemObjectId(0));
        assert_eq!(o.name(), "tbl");
        assert_eq!(o.size(), 4);
        assert_eq!(o.kind(), ObjectKind::Named);
        assert!(!o.is_read_only());
        assert!(obj(ObjectKind::ReadOnly).is_read_only());
    }

    #[test]
    fn initial_contents_pads_with_zeros() {
        let o = obj(ObjectKind::Named);
        let c = o.initial_contents();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].as_int(), 7);
        assert_eq!(c[1].as_int(), 8);
        assert_eq!(c[2].as_int(), 0);
        assert_eq!(c[3].as_int(), 0);
    }

    #[test]
    fn set_init_replaces_prefix() {
        let mut o = obj(ObjectKind::Named);
        o.set_init(vec![Value::from_int(1)]);
        assert_eq!(o.initial_contents()[0].as_int(), 1);
        assert_eq!(o.initial_contents()[1].as_int(), 0);
    }

    #[test]
    #[should_panic(expected = "longer than object")]
    fn oversized_init_panics() {
        let mut o = obj(ObjectKind::Named);
        o.set_init(vec![Value::ZERO; 5]);
    }

    #[test]
    fn display_id() {
        assert_eq!(MemObjectId(3).to_string(), "@3");
        assert_eq!(MemObjectId(3).index(), 3);
    }
}

//! Whole programs.

use crate::function::{FuncId, Function};
use crate::instr::{Instr, InstrId, Op, RegionId};
use crate::object::{MemObject, MemObjectId};

/// A whole program: functions, named memory objects, and an entry
/// function.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    functions: Vec<Function>,
    objects: Vec<MemObject>,
    main: FuncId,
    next_instr_id: u32,
    next_region_id: u32,
}

impl Program {
    /// Assembles a program from parts. Prefer [`crate::ProgramBuilder`].
    pub(crate) fn from_parts(
        functions: Vec<Function>,
        objects: Vec<MemObject>,
        main: FuncId,
        next_instr_id: u32,
    ) -> Program {
        Program {
            functions,
            objects,
            main,
            next_instr_id,
            next_region_id: 0,
        }
    }

    /// All functions, indexed by [`FuncId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// All memory objects, indexed by [`MemObjectId`].
    pub fn objects(&self) -> &[MemObject] {
        &self.objects
    }

    /// Shared access to a memory object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn object(&self, id: MemObjectId) -> &MemObject {
        &self.objects[id.index()]
    }

    /// Mutable access to a memory object (used by workload input
    /// generators to install data images).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn object_mut(&mut self, id: MemObjectId) -> &mut MemObject {
        &mut self.objects[id.index()]
    }

    /// The entry function.
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// Allocates a fresh, program-wide unique instruction id.
    pub fn fresh_instr_id(&mut self) -> InstrId {
        let id = InstrId(self.next_instr_id);
        self.next_instr_id += 1;
        id
    }

    /// Creates an instruction with a fresh id.
    pub fn new_instr(&mut self, op: Op) -> Instr {
        let id = self.fresh_instr_id();
        Instr::new(id, op)
    }

    /// Allocates a fresh region id (used by RCR formation).
    pub fn fresh_region_id(&mut self) -> RegionId {
        let id = RegionId(self.next_region_id);
        self.next_region_id += 1;
        id
    }

    /// Number of region ids allocated so far.
    pub fn region_count(&self) -> usize {
        self.next_region_id as usize
    }

    /// Raises the region-id watermark to at least `count` (used by the
    /// textual-IR parser when it encounters `reuse`/`invalidate`
    /// instructions referencing pre-existing region ids).
    pub fn reserve_regions(&mut self, count: u32) {
        self.next_region_id = self.next_region_id.max(count);
    }

    /// One past the largest instruction id in use. Useful for sizing
    /// dense side tables keyed by [`InstrId`].
    pub fn instr_id_limit(&self) -> u32 {
        self.next_instr_id
    }

    /// Total static instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }

    /// Iterates over every instruction in the program.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (FuncId, &Instr)> {
        self.functions
            .iter()
            .flat_map(|f| f.iter_instrs().map(move |(_, i)| (f.id(), i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Operand;

    fn tiny() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny();
        assert!(p.function_by_name("main").is_some());
        assert!(p.function_by_name("nope").is_none());
        assert_eq!(p.main(), FuncId(0));
    }

    #[test]
    fn fresh_ids_are_unique_and_monotonic() {
        let mut p = tiny();
        let a = p.fresh_instr_id();
        let b = p.fresh_instr_id();
        assert!(b > a);
        assert!(a.0 >= p.instr_count() as u32 - 1);
        let r0 = p.fresh_region_id();
        let r1 = p.fresh_region_id();
        assert_ne!(r0, r1);
        assert_eq!(p.region_count(), 2);
    }

    #[test]
    fn instr_counts() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let r = f.movi(9);
        f.ret(&[Operand::Reg(r)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let p = pb.finish();
        assert_eq!(p.instr_count(), 2);
        assert_eq!(p.iter_instrs().count(), 2);
        assert!(p.instr_id_limit() >= 2);
    }
}

//! Branch target buffer with 2-bit saturating counters.

/// A direct-mapped BTB predicting branch direction with 2-bit
/// saturating counters (the paper's 4K-entry configuration).
#[derive(Clone, Debug)]
pub struct Btb {
    counters: Vec<u8>,
    correct: u64,
    mispredicts: u64,
}

/// Counter state meanings: 0–1 predict not-taken, 2–3 predict taken.
const WEAKLY_TAKEN: u8 = 2;

impl Btb {
    /// Creates a BTB with `entries` counters, initialized weakly
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two() && entries > 0);
        Btb {
            counters: vec![WEAKLY_TAKEN; entries],
            correct: 0,
            mispredicts: 0,
        }
    }

    /// The paper's 4K-entry BTB.
    pub fn paper() -> Btb {
        Btb::new(4096)
    }

    fn index(&self, pc: u64) -> usize {
        // Instruction addresses are 4-byte aligned.
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= WEAKLY_TAKEN
    }

    /// Records the actual outcome, updating the counter, and returns
    /// `true` if the prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= WEAKLY_TAKEN;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        if predicted == taken {
            self.correct += 1;
            true
        } else {
            self.mispredicts += 1;
            false
        }
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction ratio in `[0, 1]`.
    pub fn mispredict_ratio(&self) -> f64 {
        let total = self.correct + self.mispredicts;
        if total == 0 {
            0.0
        } else {
            self.mispredicts as f64 / total as f64
        }
    }

    /// The counter array (snapshot support).
    pub fn counters(&self) -> &[u8] {
        &self.counters
    }

    /// Rebuilds a BTB from snapshot state.
    ///
    /// # Errors
    ///
    /// Returns a one-line description if the counter array does not
    /// match `entries` or holds an out-of-range counter.
    pub fn restore(
        entries: usize,
        counters: Vec<u8>,
        correct: u64,
        mispredicts: u64,
    ) -> Result<Btb, String> {
        if counters.len() != entries {
            return Err(format!(
                "btb snapshot has {} counters, config wants {entries}",
                counters.len()
            ));
        }
        if let Some(c) = counters.iter().find(|c| **c > 3) {
            return Err(format!("btb snapshot counter {c} out of range (0..=3)"));
        }
        let mut btb = Btb::new(entries);
        btb.counters = counters;
        btb.correct = correct;
        btb.mispredicts = mispredicts;
        Ok(btb)
    }

    /// Folds the full predictor state into `push` (fingerprint
    /// support).
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.correct);
        push(self.mispredicts);
        push(self.counters.len() as u64);
        for c in &self.counters {
            push(u64::from(*c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut b = Btb::new(16);
        // Always-taken branch: at most one initial mispredict.
        for _ in 0..100 {
            b.update(0x40, true);
        }
        assert!(b.mispredicts() <= 1);
        assert!(b.predict(0x40));
    }

    #[test]
    fn learns_not_taken() {
        let mut b = Btb::new(16);
        for _ in 0..100 {
            b.update(0x80, false);
        }
        // Starts weakly-taken: two mispredicts while saturating down.
        assert!(b.mispredicts() <= 2);
        assert!(!b.predict(0x80));
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut b = Btb::new(16);
        for i in 0..100 {
            b.update(0xc0, i % 2 == 0);
        }
        assert!(b.mispredict_ratio() > 0.4, "{}", b.mispredict_ratio());
    }

    #[test]
    fn hysteresis_tolerates_single_exit() {
        let mut b = Btb::new(16);
        // Loop branch: taken 9 times, not-taken once, repeated.
        for _ in 0..10 {
            for _ in 0..9 {
                b.update(0x10, true);
            }
            b.update(0x10, false);
        }
        // 2-bit counters only miss the loop exit.
        assert!(b.mispredict_ratio() < 0.15, "{}", b.mispredict_ratio());
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut b = Btb::new(16);
        b.update(0x0, false);
        b.update(0x0, false);
        assert!(!b.predict(0x0));
        assert!(b.predict(0x4), "untouched counter stays weakly taken");
    }

    #[test]
    fn aliasing_wraps_modulo_entries() {
        let mut b = Btb::new(4);
        for _ in 0..3 {
            b.update(0x0, false);
        }
        // pc 16 >> 2 = 4 aliases onto index 0 with 4 entries.
        assert!(!b.predict(0x10));
    }
}

//! The Computation Reuse Buffer (Section 3.1 of the paper).
//!
//! A direct-mapped array of *computation entries* indexed by the
//! region identifier carried in the `reuse` instruction. Each entry
//! holds the computation tag (the region id), a valid bit, an array of
//! *computation instances*, and LRU state for instance replacement.
//! Each instance has an input bank and an output bank of eight
//! register entries, a valid bit, and a memory-valid field. A
//! computation instance is reusable when its input register values
//! match the current architectural state and its memory state has not
//! been invalidated.
//!
//! Host layout: instances and ghosts are stored as structure-of-arrays
//! banks ([`InstanceBank`], [`GhostBank`]) — one contiguous
//! fingerprint lane per entry scanned in fixed 4-wide chunks, and
//! flattened fixed-stride input/output rows so a surviving candidate's
//! full verify is one contiguous-slice compare (DESIGN.md §9). The
//! layout is invisible to the simulation: lookups, replacement,
//! snapshots, and `fold_state` all behave exactly as the previous
//! per-instance-`Vec` representation did.

use std::collections::HashSet;

use ccr_ir::{Reg, RegionId, Value};
use ccr_profile::{CrbModel, MissCause, RecordedInstance, ReuseLookup};

use crate::snapshot::{
    cause_from_index, cause_index, CrbEntrySnapshot, CrbGhostSnapshot, CrbInstanceSnapshot,
    CrbSnapshot,
};
use crate::stats::CrbStats;

/// FNV-1a fold of one `(register, value)` pair into a running hash.
/// Folds whole words rather than bytes: the fingerprint is a
/// host-side filter that never leaves the process, so xor-multiply
/// mixing per word gives the same reject power at a fraction of the
/// cost.
#[inline]
fn fnv1a_pair(mut h: u64, r: Reg, v: Value) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    h = (h ^ u64::from(r.0)).wrapping_mul(PRIME);
    h = (h ^ v.0 as u64).wrapping_mul(PRIME);
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a fingerprint of a recorded input bank.
fn fingerprint(inputs: &[(Reg, Value)]) -> u64 {
    inputs
        .iter()
        .fold(FNV_OFFSET, |h, &(r, v)| fnv1a_pair(h, r, v))
}

/// Reads `r` through a per-lookup memo so each distinct register is
/// fetched from architectural state exactly once per lookup, no
/// matter how many instances and ghosts are scanned. Input banks hold
/// at most 8 registers, so linear search beats any map.
#[inline]
fn cached_read(
    cache: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    r: Reg,
) -> Value {
    if let Some(&(_, v)) = cache.iter().find(|&&(cr, _)| cr == r) {
        return v;
    }
    let v = read_reg(r);
    cache.push((r, v));
    v
}

/// Fingerprint the *current* architectural values of an input bank's
/// register sequence, using the same fold as [`fingerprint`]. Equal
/// recorded and live values therefore produce equal hashes, so a hash
/// mismatch proves at least one value differs — the filter can only
/// reject banks the full compare would reject too.
fn live_fingerprint(
    cache: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    regs: &[Reg],
) -> u64 {
    let mut h = FNV_OFFSET;
    for &r in regs {
        h = fnv1a_pair(h, r, cached_read(cache, read_reg, r));
    }
    h
}

/// [`live_fingerprint`] memoized on the input bank's register
/// sequence: all instances (and ghosts) of an entry share the
/// region's input register set, so in practice the fold runs once per
/// lookup and every further bank costs one sequence compare. Banks
/// with a different register sequence (defensive — they should not
/// occur within an entry) fall back to a fresh fold, so the cache can
/// never produce a wrong fingerprint.
fn cached_live_fp(
    fp_regs: &mut Vec<Reg>,
    fp: &mut Option<u64>,
    reads: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    regs: &[Reg],
) -> u64 {
    let cached = fp.filter(|_| fp_regs.as_slice() == regs);
    match cached {
        Some(h) => h,
        None => {
            let h = live_fingerprint(reads, read_reg, regs);
            fp_regs.clear();
            fp_regs.extend_from_slice(regs);
            *fp = Some(h);
            h
        }
    }
}

/// Slots per chunk in the fingerprint-lane scan.
const FP_CHUNK: usize = 4;

/// Scans a contiguous fingerprint lane for `target` in fixed 4-wide
/// chunks with a scalar tail (portable — no `std::simd`), visiting
/// matching slots in ascending order until `visit` accepts one
/// (returns `true`). Each chunk reduces four independent compares to
/// one mask word, so the common all-miss chunk costs a single branch;
/// equality on `u64` fingerprints is exactly the scalar filter's
/// predicate, so chunking can never change which slots survive.
#[inline]
fn scan_fp_lane(lane: &[u64], target: u64, visit: &mut impl FnMut(usize) -> bool) -> bool {
    let mut chunks = lane.chunks_exact(FP_CHUNK);
    let mut base = 0usize;
    for c in &mut chunks {
        let mut mask = (c[0] == target) as u32
            | (((c[1] == target) as u32) << 1)
            | (((c[2] == target) as u32) << 2)
            | (((c[3] == target) as u32) << 3);
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            if visit(base + bit) {
                return true;
            }
            mask &= mask - 1;
        }
        base += FP_CHUNK;
    }
    for (i, &f) in chunks.remainder().iter().enumerate() {
        if f == target && visit(base + i) {
            return true;
        }
    }
    false
}

/// Index of the first minimum in a lane (the tie-break
/// `Iterator::min_by_key` used on the old per-instance structs).
fn min_index(lane: &[u64]) -> usize {
    let mut best = 0;
    for (k, &v) in lane.iter().enumerate().skip(1) {
        if v < lane[best] {
            best = k;
        }
    }
    best
}

/// Instance replacement policy within a computation entry (the paper
/// specifies LRU; the alternatives support the ablation benches).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Replacement {
    /// Least-recently-used instance (the paper's policy).
    Lru,
    /// Oldest-inserted instance.
    Fifo,
    /// Uniformly random instance (deterministic xorshift stream).
    Random,
}

/// Nonuniform entry capacities (the paper's future-work item:
/// "reuse buffers with nonuniform capacities", and Section 5.2's
/// observation that "the CRB could be designed to have only a portion
/// of the computation entries with memory reuse capabilities").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NonuniformConfig {
    /// Every `boost_every`-th entry holds `boosted_instances`
    /// computation instances instead of the base count.
    pub boost_every: usize,
    /// Instance count of the boosted entries.
    pub boosted_instances: usize,
    /// Percentage of entries (from index 0 upward) capable of holding
    /// memory-dependent instances; the rest silently drop them.
    pub mem_capable_percent: u8,
}

/// Buffer geometry.
#[derive(Clone, Copy, Debug)]
pub struct CrbConfig {
    /// Number of computation entries (32 / 64 / 128 in the paper).
    pub entries: usize,
    /// Computation instances per entry (4 / 8 / 16 in the paper).
    pub instances: usize,
    /// Register entries in each instance's input bank.
    pub input_bank: usize,
    /// Register entries in each instance's output bank.
    pub output_bank: usize,
    /// Instance replacement policy.
    pub replacement: Replacement,
    /// Optional nonuniform entry capacities.
    pub nonuniform: Option<NonuniformConfig>,
}

impl CrbConfig {
    /// The paper's cost-effective configuration: 128 entries × 8
    /// instances, 8-entry banks, LRU.
    pub fn paper() -> CrbConfig {
        CrbConfig {
            entries: 128,
            instances: 8,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        }
    }

    /// The paper's configuration with a different entry count.
    pub fn with_entries(entries: usize) -> CrbConfig {
        CrbConfig {
            entries,
            ..CrbConfig::paper()
        }
    }

    /// The paper's configuration with a different instance count.
    pub fn with_instances(instances: usize) -> CrbConfig {
        CrbConfig {
            instances,
            ..CrbConfig::paper()
        }
    }

    /// Canonical `(field, value)` enumeration of the buffer geometry,
    /// in declaration order (the optional nonuniform block flattened
    /// as `nonuniform.*`, `"-"` when absent).
    ///
    /// The experiment planner keys simulation units by hashing these
    /// pairs and labels sweep axes by diffing them, so the list must
    /// stay exhaustive — a missing field would alias two distinct
    /// buffer geometries.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        let (boost_every, boosted, mem_pct) = match self.nonuniform {
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
            Some(nu) => (
                nu.boost_every.to_string(),
                nu.boosted_instances.to_string(),
                nu.mem_capable_percent.to_string(),
            ),
        };
        vec![
            ("entries", self.entries.to_string()),
            ("instances", self.instances.to_string()),
            ("input_bank", self.input_bank.to_string()),
            ("output_bank", self.output_bank.to_string()),
            (
                "replacement",
                match self.replacement {
                    Replacement::Lru => "lru",
                    Replacement::Fifo => "fifo",
                    Replacement::Random => "random",
                }
                .to_string(),
            ),
            ("nonuniform.boost_every", boost_every),
            ("nonuniform.boosted_instances", boosted),
            ("nonuniform.mem_capable_percent", mem_pct),
        ]
    }
}

/// Kind of a logged buffer event (see [`ReuseBuffer::set_event_logging`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrbEventKind {
    /// A valid computation instance was overwritten by capacity
    /// replacement within its entry.
    Evict,
    /// An entry was reassigned to a different region (direct-mapped
    /// tag conflict), discarding the previous region's instances.
    Conflict,
    /// An `invalidate` killed one or more memory-dependent instances.
    Invalidate,
}

/// One logged buffer event. Recorded only while event logging is on;
/// the default-off log keeps the hot path allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrbEvent {
    /// Buffer clock at the event (advances on every lookup and record).
    pub clock: u64,
    /// What happened.
    pub kind: CrbEventKind,
    /// Region whose record or invalidate triggered the event.
    pub region: RegionId,
    /// Direct-mapped entry index involved.
    pub entry: usize,
    /// Valid instances in the entry after the event.
    pub occupancy: usize,
    /// Instances lost: 1 for an eviction, the cleared count for a
    /// conflict, the killed count for an invalidation.
    pub lost: usize,
}

/// Structure-of-arrays storage for one entry's computation instances.
///
/// Slot `k`'s scalar fields live at index `k` of each lane; its input
/// and output banks occupy rows `k * stride ..` of the flattened
/// register/value vectors (`in_len`/`out_len` give the live prefix of
/// each row). The fingerprint lane `fps` is the lane `lookup` scans
/// with [`scan_fp_lane`]; an invalid slot keeps whatever stale lane
/// data it last held, exactly as the old per-instance structs kept
/// stale `Vec`s after `valid` was cleared — `fold_state` and
/// snapshots observe that stale data, so it is part of the simulated
/// state trajectory and must survive the layout change.
#[derive(Clone, Debug)]
struct InstanceBank {
    /// Slot count (the entry's instance capacity).
    slots: usize,
    /// Row width of the flattened input banks.
    in_stride: usize,
    /// Row width of the flattened output banks.
    out_stride: usize,
    valid: Vec<bool>,
    /// Contiguous fingerprint lane, one `u64` per slot (see
    /// [`fingerprint`]; 0 for never-written slots).
    fps: Vec<u64>,
    accesses_memory: Vec<bool>,
    body_instrs: Vec<u64>,
    last_use: Vec<u64>,
    inserted: Vec<u64>,
    in_len: Vec<u32>,
    in_regs: Vec<Reg>,
    in_vals: Vec<Value>,
    out_len: Vec<u32>,
    out_regs: Vec<Reg>,
    out_vals: Vec<Value>,
}

impl InstanceBank {
    fn new(slots: usize, in_stride: usize, out_stride: usize) -> InstanceBank {
        InstanceBank {
            slots,
            in_stride,
            out_stride,
            valid: vec![false; slots],
            fps: vec![0; slots],
            accesses_memory: vec![false; slots],
            body_instrs: vec![0; slots],
            last_use: vec![0; slots],
            inserted: vec![0; slots],
            in_len: vec![0; slots],
            in_regs: vec![Reg(0); slots * in_stride],
            in_vals: vec![Value::ZERO; slots * in_stride],
            out_len: vec![0; slots],
            out_regs: vec![Reg(0); slots * out_stride],
            out_vals: vec![Value::ZERO; slots * out_stride],
        }
    }

    /// Input-bank register sequence of slot `k`.
    fn in_regs_row(&self, k: usize) -> &[Reg] {
        &self.in_regs[k * self.in_stride..][..self.in_len[k] as usize]
    }

    /// Input-bank recorded values of slot `k` (contiguous; the whole
    /// full-verify compare is one slice equality against the gathered
    /// live values).
    fn in_vals_row(&self, k: usize) -> &[Value] {
        &self.in_vals[k * self.in_stride..][..self.in_len[k] as usize]
    }

    /// Output bank of slot `k`, materialized as the `(reg, value)`
    /// pairs a [`ReuseLookup`] carries.
    fn out_pairs(&self, k: usize) -> Vec<(Reg, Value)> {
        let base = k * self.out_stride;
        let len = self.out_len[k] as usize;
        self.out_regs[base..base + len]
            .iter()
            .zip(&self.out_vals[base..base + len])
            .map(|(&r, &v)| (r, v))
            .collect()
    }

    /// True when slot `k` holds exactly `inputs` (register sequence
    /// and values) — the dedup predicate of `record`.
    fn in_row_eq(&self, k: usize, inputs: &[(Reg, Value)]) -> bool {
        self.in_len[k] as usize == inputs.len()
            && self
                .in_regs_row(k)
                .iter()
                .zip(self.in_vals_row(k))
                .zip(inputs)
                .all(|((&r, &v), &(ir, iv))| r == ir && v == iv)
    }

    /// Writes a freshly recorded instance into slot `k`.
    fn write_slot(&mut self, k: usize, inst: &RecordedInstance, fp: u64, clock: u64) {
        self.valid[k] = true;
        self.fps[k] = fp;
        self.accesses_memory[k] = inst.accesses_memory;
        self.body_instrs[k] = inst.body_instrs;
        self.last_use[k] = clock;
        self.inserted[k] = clock;
        self.in_len[k] = inst.inputs.len() as u32;
        let base = k * self.in_stride;
        for (j, &(r, v)) in inst.inputs.iter().enumerate() {
            self.in_regs[base + j] = r;
            self.in_vals[base + j] = v;
        }
        self.out_len[k] = inst.outputs.len() as u32;
        let base = k * self.out_stride;
        for (j, &(r, v)) in inst.outputs.iter().enumerate() {
            self.out_regs[base + j] = r;
            self.out_vals[base + j] = v;
        }
    }

    /// Resets every slot to the empty instance (a conflict clearing
    /// the entry; the old code assigned `Instance::empty()`, which
    /// dropped stale data rather than just clearing `valid`).
    fn clear_all(&mut self) {
        self.valid.fill(false);
        self.fps.fill(0);
        self.accesses_memory.fill(false);
        self.body_instrs.fill(0);
        self.last_use.fill(0);
        self.inserted.fill(0);
        self.in_len.fill(0);
        self.out_len.fill(0);
    }
}

/// Structure-of-arrays ghost list: the observational remnants of
/// instances that left the entry while its region kept the tag — the
/// input bank each matched on and why it died. Ghosts let a later miss
/// on the same inputs be classified as a capacity or invalidation
/// casualty instead of a plain mismatch. Purely diagnostic — never
/// consulted by hit/replacement decisions.
///
/// Index 0 is the oldest ghost; classification scans newest-first.
/// The same lane layout as [`InstanceBank`] makes that scan one
/// batched fingerprint pass instead of a per-ghost pointer walk.
#[derive(Clone, Debug)]
struct GhostBank {
    /// Row width of the flattened input banks.
    stride: usize,
    fps: Vec<u64>,
    causes: Vec<MissCause>,
    lens: Vec<u32>,
    regs: Vec<Reg>,
    vals: Vec<Value>,
}

impl GhostBank {
    fn new(stride: usize) -> GhostBank {
        GhostBank {
            stride,
            fps: Vec::new(),
            causes: Vec::new(),
            lens: Vec::new(),
            regs: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.fps.len()
    }

    fn regs_row(&self, k: usize) -> &[Reg] {
        &self.regs[k * self.stride..][..self.lens[k] as usize]
    }

    fn vals_row(&self, k: usize) -> &[Value] {
        &self.vals[k * self.stride..][..self.lens[k] as usize]
    }

    /// Appends a ghost (newest position).
    fn push(&mut self, regs: &[Reg], vals: &[Value], fp: u64, cause: MissCause) {
        self.fps.push(fp);
        self.causes.push(cause);
        self.lens.push(regs.len() as u32);
        let base = self.regs.len();
        self.regs.resize(base + self.stride, Reg(0));
        self.vals.resize(base + self.stride, Value::ZERO);
        self.regs[base..base + regs.len()].copy_from_slice(regs);
        self.vals[base..base + vals.len()].copy_from_slice(vals);
    }

    /// Drops the oldest ghost. O(len) lane copies, but it only runs
    /// when a record overflows the ghost cap — never on a lookup.
    fn pop_front(&mut self) {
        self.fps.remove(0);
        self.causes.remove(0);
        self.lens.remove(0);
        self.regs.drain(..self.stride);
        self.vals.drain(..self.stride);
    }

    fn clear(&mut self) {
        self.fps.clear();
        self.causes.clear();
        self.lens.clear();
        self.regs.clear();
        self.vals.clear();
    }

    /// Removes every ghost whose fingerprint and input bank equal
    /// (`fp`, `inputs`), preserving order — `record`'s re-recorded-
    /// inputs shedding.
    fn remove_matching(&mut self, fp: u64, inputs: &[(Reg, Value)]) {
        let mut write = 0;
        for read in 0..self.len() {
            let matches = self.fps[read] == fp
                && self.lens[read] as usize == inputs.len()
                && self
                    .regs_row(read)
                    .iter()
                    .zip(self.vals_row(read))
                    .zip(inputs)
                    .all(|((&r, &v), &(ir, iv))| r == ir && v == iv);
            if matches {
                continue;
            }
            if write != read {
                self.fps[write] = self.fps[read];
                self.causes[write] = self.causes[read];
                self.lens[write] = self.lens[read];
                let (dst, src) = (write * self.stride, read * self.stride);
                self.regs.copy_within(src..src + self.stride, dst);
                self.vals.copy_within(src..src + self.stride, dst);
            }
            write += 1;
        }
        self.fps.truncate(write);
        self.causes.truncate(write);
        self.lens.truncate(write);
        self.regs.truncate(write * self.stride);
        self.vals.truncate(write * self.stride);
    }
}

#[derive(Clone, Debug)]
struct Entry {
    tag: Option<RegionId>,
    bank: InstanceBank,
    ghosts: GhostBank,
    /// Canonical input register sequence shared by every valid
    /// instance and every ghost while `uniform` holds. Set by the
    /// first insert after the entry was (re)claimed; the batched scan
    /// relies on it to gather live values and fold the live
    /// fingerprint exactly once per lookup.
    seq: Vec<Reg>,
    /// Whether `seq` has been established.
    has_seq: bool,
    /// True while every valid instance and ghost shares `seq`. In
    /// practice always true (an entry's instances all come from one
    /// region, whose input register set is static); a divergent insert
    /// — possible only via hand-built snapshots — drops the entry to
    /// the scalar reference scan, which handles arbitrary sequences.
    uniform: bool,
}

impl Entry {
    fn new(slots: usize, in_stride: usize, out_stride: usize) -> Entry {
        Entry {
            tag: None,
            bank: InstanceBank::new(slots, in_stride, out_stride),
            ghosts: GhostBank::new(in_stride),
            seq: Vec::new(),
            has_seq: false,
            uniform: true,
        }
    }

    /// The entry's ghost capacity: twice its instance count.
    fn ghost_cap(&self) -> usize {
        self.bank.slots * 2
    }

    /// Remembers a departed instance's input bank (slot `k`), keeping
    /// at most [`ghost_cap`](Entry::ghost_cap) ghosts (oldest dropped
    /// first).
    fn ghost_from_slot(&mut self, k: usize, cause: MissCause) {
        if self.ghosts.len() >= self.ghost_cap() {
            self.ghosts.pop_front();
        }
        let base = k * self.bank.in_stride;
        let len = self.bank.in_len[k] as usize;
        self.ghosts.push(
            &self.bank.in_regs[base..base + len],
            &self.bank.in_vals[base..base + len],
            self.bank.fps[k],
            cause,
        );
    }

    /// Folds a new instance's register sequence into the uniformity
    /// tracking.
    fn note_seq(&mut self, inputs: &[(Reg, Value)]) {
        if !self.has_seq {
            self.seq.clear();
            self.seq.extend(inputs.iter().map(|&(r, _)| r));
            self.has_seq = true;
        } else if self.uniform
            && !(self.seq.len() == inputs.len()
                && self.seq.iter().zip(inputs).all(|(&s, &(r, _))| s == r))
        {
            self.uniform = false;
        }
    }

    /// Clears instances, ghosts, and the uniformity tracking (a tag
    /// conflict reclaiming the entry).
    fn clear_contents(&mut self) {
        self.bank.clear_all();
        self.ghosts.clear();
        self.seq.clear();
        self.has_seq = false;
        self.uniform = true;
    }
}

/// The hardware buffer. Implements [`CrbModel`] so the emulator can
/// consult it during execution-driven simulation.
///
/// ```
/// use ccr_ir::{Reg, RegionId, Value};
/// use ccr_profile::{CrbModel, RecordedInstance};
/// use ccr_sim::{CrbConfig, ReuseBuffer};
///
/// let mut buf = ReuseBuffer::new(CrbConfig::paper());
/// buf.record(RegionId(3), RecordedInstance {
///     inputs: vec![(Reg(1), Value::from_int(17))],
///     outputs: vec![(Reg(2), Value::from_int(289))],
///     accesses_memory: false,
///     body_instrs: 12,
/// });
/// // A lookup with r1 = 17 replays the recorded outputs.
/// let hit = buf.lookup(RegionId(3), &mut |_| Value::from_int(17)).unwrap();
/// assert_eq!(hit.outputs[0].1.as_int(), 289);
/// assert_eq!(hit.skipped_instrs, 12);
/// // A different input misses.
/// assert!(buf.lookup(RegionId(3), &mut |_| Value::from_int(18)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ReuseBuffer {
    config: CrbConfig,
    entries: Vec<Entry>,
    clock: u64,
    rng: u64,
    stats: CrbStats,
    log_events: bool,
    events: Vec<CrbEvent>,
    /// Regions that ever had an instance actually inserted (dropped
    /// records — oversized banks, mem-incapable entries — don't
    /// count). Misses on regions outside this set are cold.
    ever_recorded: HashSet<RegionId>,
    /// Cause of the most recent miss; `None` after a hit.
    last_miss_cause: Option<MissCause>,
    /// When on (the default), `lookup` rejects instances and ghosts
    /// whose stored fingerprint differs from the fingerprint of the
    /// current register values before doing the full bank compare.
    /// Host-speed filter only — outcomes are identical either way
    /// (enforced by a property test).
    fp_filter: bool,
    /// When false, `lookup` uses the scalar reference scan even for
    /// uniform entries. Host-speed switch only, like `fp_filter`.
    batched_scan: bool,
    /// Per-lookup register-read memo for the scalar scan, kept on the
    /// buffer so the hot path never allocates after warmup.
    read_scratch: Vec<(Reg, Value)>,
    /// Register sequence of the last live-fingerprint fold (see
    /// [`cached_live_fp`]); same allocation-reuse rationale.
    fp_regs_scratch: Vec<Reg>,
    /// Live values of the entry's shared register sequence, gathered
    /// once per batched lookup.
    live_vals_scratch: Vec<Value>,
    /// Fingerprint-surviving ghost indices of a batched scan (the
    /// forward chunked pass feeds the newest-first verify order).
    ghost_match_scratch: Vec<u32>,
}

impl ReuseBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries or instances.
    pub fn new(config: CrbConfig) -> ReuseBuffer {
        assert!(config.entries > 0 && config.instances > 0);
        if let Some(nu) = config.nonuniform {
            assert!(nu.boost_every > 0 && nu.boosted_instances > 0);
            assert!(nu.mem_capable_percent <= 100);
        }
        ReuseBuffer {
            entries: (0..config.entries)
                .map(|idx| {
                    let count = match config.nonuniform {
                        Some(nu) if idx % nu.boost_every == 0 => nu.boosted_instances,
                        _ => config.instances,
                    };
                    Entry::new(count, config.input_bank, config.output_bank)
                })
                .collect(),
            config,
            clock: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: CrbStats::default(),
            log_events: false,
            events: Vec::new(),
            ever_recorded: HashSet::new(),
            last_miss_cause: None,
            fp_filter: true,
            batched_scan: true,
            read_scratch: Vec::new(),
            fp_regs_scratch: Vec::new(),
            live_vals_scratch: Vec::new(),
            ghost_match_scratch: Vec::new(),
        }
    }

    /// Enables or disables the fingerprint reject filter in `lookup`.
    /// On by default; turning it off forces the full bank compare for
    /// every instance and ghost. Exists so tests and benches can pit
    /// the filtered path against the reference path — simulated
    /// outcomes are identical either way.
    pub fn set_fingerprint_filter(&mut self, on: bool) {
        self.fp_filter = on;
    }

    /// Enables or disables the batched (chunked fingerprint-lane)
    /// scan in `lookup`. On by default; turning it off forces the
    /// scalar reference scan for every entry. Same outcome-invariance
    /// contract (and property test) as
    /// [`set_fingerprint_filter`](ReuseBuffer::set_fingerprint_filter).
    pub fn set_batched_scan(&mut self, on: bool) {
        self.batched_scan = on;
    }

    /// The buffer's counters.
    pub fn stats(&self) -> CrbStats {
        self.stats.check();
        self.stats
    }

    /// Turns the eviction/conflict/invalidation event log on or off.
    /// Off by default: the log allocates, and most simulations never
    /// read it.
    pub fn set_event_logging(&mut self, on: bool) {
        self.log_events = on;
    }

    /// Drains the logged events, oldest first.
    pub fn take_events(&mut self) -> Vec<CrbEvent> {
        std::mem::take(&mut self.events)
    }

    /// Valid instances currently held by the entry at `idx`.
    fn occupancy(&self, idx: usize) -> usize {
        self.entries[idx].bank.valid.iter().filter(|&&v| v).count()
    }

    /// The buffer's geometry.
    pub fn config(&self) -> CrbConfig {
        self.config
    }

    fn entry_index(&self, region: RegionId) -> usize {
        region.index() % self.config.entries
    }

    /// True if the entry at `idx` may hold memory-dependent instances.
    fn mem_capable(&self, idx: usize) -> bool {
        match self.config.nonuniform {
            None => true,
            Some(nu) => idx * 100 < self.config.entries * nu.mem_capable_percent as usize,
        }
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, seedless-reproducible.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Captures the complete buffer state as plain data.
    ///
    /// # Errors
    ///
    /// Event-logging buffers cannot be snapshotted: the event log is
    /// diagnostic state the snapshot format deliberately excludes.
    pub fn snapshot(&self) -> Result<CrbSnapshot, String> {
        if self.log_events {
            return Err("cannot snapshot a reuse buffer with event logging enabled".to_string());
        }
        let mut ever: Vec<u32> = self.ever_recorded.iter().map(|r| r.0).collect();
        ever.sort_unstable();
        Ok(CrbSnapshot {
            clock: self.clock,
            rng: self.rng,
            stats: self.stats,
            last_miss_cause: self.last_miss_cause.map(cause_index),
            ever_recorded: ever,
            entries: self
                .entries
                .iter()
                .map(|e| CrbEntrySnapshot {
                    tag: e.tag.map(|r| r.0),
                    instances: (0..e.bank.slots)
                        .map(|k| CrbInstanceSnapshot {
                            valid: e.bank.valid[k],
                            inputs: e
                                .bank
                                .in_regs_row(k)
                                .iter()
                                .zip(e.bank.in_vals_row(k))
                                .map(|(&r, &v)| (r.0, v.0 as u64))
                                .collect(),
                            fp: e.bank.fps[k],
                            outputs: e
                                .bank
                                .out_pairs(k)
                                .iter()
                                .map(|&(r, v)| (r.0, v.0 as u64))
                                .collect(),
                            accesses_memory: e.bank.accesses_memory[k],
                            body_instrs: e.bank.body_instrs[k],
                            last_use: e.bank.last_use[k],
                            inserted: e.bank.inserted[k],
                        })
                        .collect(),
                    ghosts: (0..e.ghosts.len())
                        .map(|k| CrbGhostSnapshot {
                            inputs: e
                                .ghosts
                                .regs_row(k)
                                .iter()
                                .zip(e.ghosts.vals_row(k))
                                .map(|(&r, &v)| (r.0, v.0 as u64))
                                .collect(),
                            fp: e.ghosts.fps[k],
                            cause: cause_index(e.ghosts.causes[k]),
                        })
                        .collect(),
                })
                .collect(),
        })
    }

    /// Rebuilds a mid-run buffer from a snapshot. The snapshot format
    /// is layout-independent plain data (one instance/ghost struct per
    /// candidate), so restoring through the structure-of-arrays banks
    /// needs no `snap_v` bump; uniformity of each entry's register
    /// sequences is recomputed from the restored rows.
    ///
    /// # Errors
    ///
    /// Returns a one-line description when the snapshot geometry does
    /// not match `config` or a miss-cause index is out of range.
    pub fn restore(config: CrbConfig, snap: &CrbSnapshot) -> Result<ReuseBuffer, String> {
        let mut buf = ReuseBuffer::new(config);
        if snap.entries.len() != buf.entries.len() {
            return Err(format!(
                "crb snapshot has {} entries, config wants {}",
                snap.entries.len(),
                buf.entries.len()
            ));
        }
        for (idx, (es, entry)) in snap.entries.iter().zip(buf.entries.iter_mut()).enumerate() {
            if es.instances.len() != entry.bank.slots {
                return Err(format!(
                    "crb entry {idx} has {} instances, config wants {}",
                    es.instances.len(),
                    entry.bank.slots
                ));
            }
            if es.ghosts.len() > entry.ghost_cap() {
                return Err(format!(
                    "crb entry {idx} has {} ghosts, capacity is {}",
                    es.ghosts.len(),
                    entry.ghost_cap()
                ));
            }
            // Hand-built snapshots may carry banks wider than the
            // configured strides; grow the rows to fit rather than
            // corrupting neighbors (records at runtime still enforce
            // the configured capacities).
            let in_stride = es
                .instances
                .iter()
                .map(|i| i.inputs.len())
                .chain(es.ghosts.iter().map(|g| g.inputs.len()))
                .max()
                .unwrap_or(0)
                .max(config.input_bank);
            let out_stride = es
                .instances
                .iter()
                .map(|i| i.outputs.len())
                .max()
                .unwrap_or(0)
                .max(config.output_bank);
            entry.tag = es.tag.map(RegionId);
            entry.bank = InstanceBank::new(es.instances.len(), in_stride, out_stride);
            entry.ghosts = GhostBank::new(in_stride);
            for (k, i) in es.instances.iter().enumerate() {
                let inst = RecordedInstance {
                    inputs: i
                        .inputs
                        .iter()
                        .map(|&(r, v)| (Reg(r), Value(v as i64)))
                        .collect(),
                    outputs: i
                        .outputs
                        .iter()
                        .map(|&(r, v)| (Reg(r), Value(v as i64)))
                        .collect(),
                    accesses_memory: i.accesses_memory,
                    body_instrs: i.body_instrs,
                };
                entry.bank.write_slot(k, &inst, i.fp, 0);
                entry.bank.valid[k] = i.valid;
                entry.bank.last_use[k] = i.last_use;
                entry.bank.inserted[k] = i.inserted;
            }
            for g in &es.ghosts {
                let pairs: Vec<(Reg, Value)> = g
                    .inputs
                    .iter()
                    .map(|&(r, v)| (Reg(r), Value(v as i64)))
                    .collect();
                let regs: Vec<Reg> = pairs.iter().map(|&(r, _)| r).collect();
                let vals: Vec<Value> = pairs.iter().map(|&(_, v)| v).collect();
                entry
                    .ghosts
                    .push(&regs, &vals, g.fp, cause_from_index(g.cause)?);
            }
            // Recompute the shared-sequence invariant over the valid
            // instances and ghosts actually restored.
            entry.seq.clear();
            entry.has_seq = false;
            entry.uniform = true;
            let mut sequences = (0..entry.bank.slots)
                .filter(|&k| entry.bank.valid[k])
                .map(|k| entry.bank.in_regs_row(k))
                .chain((0..entry.ghosts.len()).map(|k| entry.ghosts.regs_row(k)));
            if let Some(first) = sequences.next() {
                entry.seq = first.to_vec();
                entry.has_seq = true;
                entry.uniform = sequences.all(|s| s == entry.seq.as_slice());
            }
        }
        buf.clock = snap.clock;
        buf.rng = snap.rng;
        buf.stats = snap.stats;
        buf.last_miss_cause = snap.last_miss_cause.map(cause_from_index).transpose()?;
        buf.ever_recorded = snap.ever_recorded.iter().map(|r| RegionId(*r)).collect();
        Ok(buf)
    }

    /// Folds the full buffer state into `push` in a deterministic
    /// order (the `ever_recorded` set is sorted first). The event log,
    /// the fingerprint-filter and batched-scan switches, the scratch
    /// vectors, and the uniformity tracking are excluded: none of them
    /// alters simulated outcomes. The per-candidate iteration order is
    /// slot/queue order, exactly the stream the pre-SoA layout
    /// produced, so fingerprint chains are layout-invariant.
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.clock);
        push(self.rng);
        self.stats.fold_state(push);
        match self.last_miss_cause {
            None => push(0),
            Some(c) => {
                push(1);
                push(cause_index(c));
            }
        }
        let mut ever: Vec<u32> = self.ever_recorded.iter().map(|r| r.0).collect();
        ever.sort_unstable();
        push(ever.len() as u64);
        for r in ever {
            push(u64::from(r));
        }
        push(self.entries.len() as u64);
        for e in &self.entries {
            match e.tag {
                None => push(0),
                Some(r) => {
                    push(1);
                    push(u64::from(r.0));
                }
            }
            push(e.bank.slots as u64);
            for k in 0..e.bank.slots {
                push(u64::from(e.bank.valid[k]));
                push(u64::from(e.bank.in_len[k]));
                for (r, v) in e.bank.in_regs_row(k).iter().zip(e.bank.in_vals_row(k)) {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(e.bank.fps[k]);
                push(u64::from(e.bank.out_len[k]));
                let base = k * e.bank.out_stride;
                let len = e.bank.out_len[k] as usize;
                for (r, v) in e.bank.out_regs[base..base + len]
                    .iter()
                    .zip(&e.bank.out_vals[base..base + len])
                {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(u64::from(e.bank.accesses_memory[k]));
                push(e.bank.body_instrs[k]);
                push(e.bank.last_use[k]);
                push(e.bank.inserted[k]);
            }
            push(e.ghosts.len() as u64);
            for k in 0..e.ghosts.len() {
                push(u64::from(e.ghosts.lens[k]));
                for (r, v) in e.ghosts.regs_row(k).iter().zip(e.ghosts.vals_row(k)) {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(e.ghosts.fps[k]);
                push(cause_index(e.ghosts.causes[k]));
            }
        }
    }

    /// Test hook: XORs the replacement RNG stream with a constant,
    /// deterministically disturbing internal state so fingerprint
    /// divergence can be injected at a chosen point.
    #[doc(hidden)]
    pub fn perturb_for_tests(&mut self) {
        self.rng ^= 0xdead_beef_0bad_f00d;
    }

    fn victim_slot(&mut self, idx: usize) -> usize {
        let bank = &self.entries[idx].bank;
        if let Some(free) = bank.valid.iter().position(|v| !v) {
            return free;
        }
        match self.config.replacement {
            Replacement::Lru => min_index(&bank.last_use),
            Replacement::Fifo => min_index(&bank.inserted),
            Replacement::Random => {
                let n = bank.slots as u64;
                (self.next_random() % n) as usize
            }
        }
    }
}

impl CrbModel for ReuseBuffer {
    fn lookup(
        &mut self,
        region: RegionId,
        read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup> {
        self.stats.lookups += 1;
        self.clock += 1;
        let idx = self.entry_index(region);
        let clock = self.clock;
        let recorded_before = self.ever_recorded.contains(&region);
        let entry = &mut self.entries[idx];
        if entry.tag != Some(region) {
            // The tag only moves away from a recorded region via a
            // direct-mapped reassignment, so a tag miss on a known
            // region is a conflict casualty.
            let cause = if recorded_before {
                MissCause::Conflict
            } else {
                MissCause::Cold
            };
            self.stats.misses += 1;
            self.stats.count_miss_cause(cause);
            self.last_miss_cause = Some(cause);
            return None;
        }
        let fp_filter = self.fp_filter;
        // The hit slot, or the classified miss cause. Both scans honor
        // the same order contract: instances in slot order (first full
        // match wins), ghosts newest-first.
        let outcome: Result<usize, MissCause> = if self.batched_scan && entry.uniform {
            // Batched scan: every candidate shares the entry's
            // register sequence, so one pass gathers the live value
            // of each register and folds the live fingerprint; the
            // fingerprint lanes are then scanned in 4-wide chunks and
            // each survivor's full verify is one contiguous-slice
            // compare against the gathered values.
            let live_vals = &mut self.live_vals_scratch;
            live_vals.clear();
            let mut live_fp = FNV_OFFSET;
            for &r in &entry.seq {
                let v = read_reg(r);
                live_vals.push(v);
                live_fp = fnv1a_pair(live_fp, r, v);
            }
            let bank = &entry.bank;
            let mut hit_slot = None;
            if fp_filter {
                scan_fp_lane(&bank.fps, live_fp, &mut |k| {
                    if bank.valid[k] && bank.in_vals_row(k) == live_vals.as_slice() {
                        hit_slot = Some(k);
                        true
                    } else {
                        false
                    }
                });
            } else {
                hit_slot = (0..bank.slots)
                    .find(|&k| bank.valid[k] && bank.in_vals_row(k) == live_vals.as_slice());
            }
            match hit_slot {
                Some(k) => Ok(k),
                None => {
                    // Batched ghost classification: one forward
                    // chunked pass collects the fingerprint survivors,
                    // then the (rare) survivors verify newest-first —
                    // the same "most recent matching ghost wins"
                    // semantics as the old reverse walk.
                    let ghosts = &entry.ghosts;
                    let mut cause = None;
                    if fp_filter {
                        let matches = &mut self.ghost_match_scratch;
                        matches.clear();
                        scan_fp_lane(&ghosts.fps, live_fp, &mut |k| {
                            matches.push(k as u32);
                            false
                        });
                        for &k in matches.iter().rev() {
                            if ghosts.vals_row(k as usize) == live_vals.as_slice() {
                                cause = Some(ghosts.causes[k as usize]);
                                break;
                            }
                        }
                    } else {
                        for k in (0..ghosts.len()).rev() {
                            if ghosts.vals_row(k) == live_vals.as_slice() {
                                cause = Some(ghosts.causes[k]);
                                break;
                            }
                        }
                    }
                    Err(match cause {
                        Some(c) => c,
                        None if entry.bank.valid.iter().all(|&v| !v) => MissCause::Invalidated,
                        None => MissCause::Mismatch,
                    })
                }
            }
        } else {
            // Scalar reference scan: per-candidate fingerprint folds
            // (memoized on the register sequence) and per-pair
            // compares. Handles entries whose candidates disagree on
            // their register sequences; also the reference side of the
            // batched-vs-scalar property test.
            let reads = &mut self.read_scratch;
            reads.clear();
            let fp_regs = &mut self.fp_regs_scratch;
            fp_regs.clear();
            let mut live_fp: Option<u64> = None;
            let bank = &entry.bank;
            let mut hit_slot = None;
            for k in 0..bank.slots {
                if !bank.valid[k] {
                    continue;
                }
                let regs = bank.in_regs_row(k);
                if fp_filter
                    && cached_live_fp(fp_regs, &mut live_fp, reads, read_reg, regs) != bank.fps[k]
                {
                    continue; // some input value differs — cannot match
                }
                if regs
                    .iter()
                    .zip(bank.in_vals_row(k))
                    .all(|(&r, &v)| cached_read(reads, read_reg, r) == v)
                {
                    hit_slot = Some(k);
                    break;
                }
            }
            match hit_slot {
                Some(k) => Ok(k),
                None => {
                    // No live instance matched. If a ghost matches the
                    // current register values, the instance that would
                    // have hit was lost — blame its recorded cause
                    // (most recent ghost first). A tagged entry with
                    // no live instances at all was emptied by
                    // invalidation (records always leave one
                    // instance).
                    let ghosts = &entry.ghosts;
                    let mut cause = None;
                    for k in (0..ghosts.len()).rev() {
                        let regs = ghosts.regs_row(k);
                        if fp_filter
                            && cached_live_fp(fp_regs, &mut live_fp, reads, read_reg, regs)
                                != ghosts.fps[k]
                        {
                            continue;
                        }
                        if regs
                            .iter()
                            .zip(ghosts.vals_row(k))
                            .all(|(&r, &v)| cached_read(reads, read_reg, r) == v)
                        {
                            cause = Some(ghosts.causes[k]);
                            break;
                        }
                    }
                    Err(match cause {
                        Some(c) => c,
                        None if bank.valid.iter().all(|&v| !v) => MissCause::Invalidated,
                        None => MissCause::Mismatch,
                    })
                }
            }
        };
        match outcome {
            Ok(k) => {
                entry.bank.last_use[k] = clock;
                let hit = ReuseLookup {
                    outputs: entry.bank.out_pairs(k),
                    inputs: entry.bank.in_regs_row(k).to_vec(),
                    skipped_instrs: entry.bank.body_instrs[k],
                };
                self.stats.hits += 1;
                self.last_miss_cause = None;
                Some(hit)
            }
            Err(cause) => {
                self.stats.misses += 1;
                self.stats.count_miss_cause(cause);
                self.last_miss_cause = Some(cause);
                None
            }
        }
    }

    fn record(&mut self, region: RegionId, instance: RecordedInstance) {
        if instance.inputs.len() > self.config.input_bank
            || instance.outputs.len() > self.config.output_bank
        {
            return; // exceeds bank capacity: drop (defensive)
        }
        self.clock += 1;
        let idx = self.entry_index(region);
        if instance.accesses_memory && !self.mem_capable(idx) {
            return; // this entry has no memory-validation hardware
        }
        self.stats.records += 1;
        if self.entries[idx].tag != Some(region) {
            if self.entries[idx].tag.is_some() {
                self.stats.entry_conflicts += 1;
                if self.log_events {
                    self.events.push(CrbEvent {
                        clock: self.clock,
                        kind: CrbEventKind::Conflict,
                        region,
                        entry: idx,
                        occupancy: 0,
                        lost: self.occupancy(idx),
                    });
                }
            }
            let entry = &mut self.entries[idx];
            entry.tag = Some(region);
            entry.clear_contents();
        }
        // An instance with the identical input bank is refreshed in
        // place rather than duplicated (duplicates would waste
        // capacity and let a replacement evict live input sets).
        // Equal banks hash equal, so the fingerprint lane scan below
        // never changes which slot is found — it only skips compares.
        let fp = fingerprint(&instance.inputs);
        let existing = {
            let bank = &self.entries[idx].bank;
            let mut found = None;
            scan_fp_lane(&bank.fps, fp, &mut |k| {
                if bank.valid[k] && bank.in_row_eq(k, &instance.inputs) {
                    found = Some(k);
                    true
                } else {
                    false
                }
            });
            found
        };
        let slot = match existing {
            Some(k) => k,
            None => {
                let k = self.victim_slot(idx);
                if self.entries[idx].bank.valid[k] {
                    if self.log_events {
                        self.events.push(CrbEvent {
                            clock: self.clock,
                            kind: CrbEventKind::Evict,
                            region,
                            entry: idx,
                            // The victim is overwritten by the incoming
                            // instance, so occupancy is unchanged.
                            occupancy: self.occupancy(idx),
                            lost: 1,
                        });
                    }
                    self.entries[idx].ghost_from_slot(k, MissCause::Capacity);
                }
                k
            }
        };
        let clock = self.clock;
        let entry = &mut self.entries[idx];
        entry.ghosts.remove_matching(fp, &instance.inputs);
        entry.note_seq(&instance.inputs);
        entry.bank.write_slot(slot, &instance, fp, clock);
        self.ever_recorded.insert(region);
    }

    fn invalidate(&mut self, region: RegionId) {
        self.stats.invalidations += 1;
        let idx = self.entry_index(region);
        let entry = &mut self.entries[idx];
        let mut killed = 0;
        if entry.tag == Some(region) {
            for k in 0..entry.bank.slots {
                if entry.bank.valid[k] && entry.bank.accesses_memory[k] {
                    entry.bank.valid[k] = false;
                    killed += 1;
                    entry.ghost_from_slot(k, MissCause::Invalidated);
                }
            }
        }
        if self.log_events && killed > 0 {
            self.events.push(CrbEvent {
                clock: self.clock,
                kind: CrbEventKind::Invalidate,
                region,
                entry: idx,
                occupancy: self.occupancy(idx),
                lost: killed,
            });
        }
    }

    fn input_capacity(&self) -> usize {
        self.config.input_bank
    }

    fn output_capacity(&self) -> usize {
        self.config.output_bank
    }

    fn last_miss_cause(&self) -> Option<MissCause> {
        self.last_miss_cause
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn inst(input: i64, output: i64, mem: bool) -> RecordedInstance {
        RecordedInstance {
            inputs: vec![(Reg(0), Value::from_int(input))],
            outputs: vec![(Reg(1), Value::from_int(output))],
            accesses_memory: mem,
            body_instrs: 10,
        }
    }

    fn lookup_with(buf: &mut ReuseBuffer, region: RegionId, r0: i64) -> Option<ReuseLookup> {
        buf.lookup(region, &mut |r| {
            assert_eq!(r, Reg(0));
            Value::from_int(r0)
        })
    }

    #[test]
    fn record_then_hit_on_matching_inputs() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(3);
        assert!(lookup_with(&mut buf, r, 5).is_none());
        buf.record(r, inst(5, 50, false));
        let hit = lookup_with(&mut buf, r, 5).expect("hit");
        assert_eq!(hit.outputs, vec![(Reg(1), Value::from_int(50))]);
        assert_eq!(hit.skipped_instrs, 10);
        assert!(lookup_with(&mut buf, r, 6).is_none(), "different input");
        let s = buf.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.records, 1);
    }

    #[test]
    fn multiple_instances_capture_multiple_input_sets() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(4));
        let r = RegionId(0);
        for v in 0..4 {
            buf.record(r, inst(v, v * 10, false));
        }
        for v in 0..4 {
            let hit = lookup_with(&mut buf, r, v).expect("all four retained");
            assert_eq!(hit.outputs[0].1, Value::from_int(v * 10));
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false));
        // Touch instance 1, making instance 2 the LRU.
        assert!(lookup_with(&mut buf, r, 1).is_some());
        buf.record(r, inst(3, 30, false));
        assert!(lookup_with(&mut buf, r, 1).is_some(), "recently used kept");
        assert!(lookup_with(&mut buf, r, 2).is_none(), "LRU evicted");
        assert!(lookup_with(&mut buf, r, 3).is_some());
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Fifo,
            nonuniform: None,
        });
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false));
        assert!(lookup_with(&mut buf, r, 1).is_some()); // touch 1
        buf.record(r, inst(3, 30, false));
        // FIFO ignores the touch: instance 1 (oldest) is evicted.
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert!(lookup_with(&mut buf, r, 2).is_some());
    }

    #[test]
    fn entry_conflict_replaces_tag_and_clears_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 4,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        // Regions 0 and 2 collide on entry 0.
        buf.record(RegionId(0), inst(1, 10, false));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_some());
        buf.record(RegionId(2), inst(1, 99, false));
        assert!(
            lookup_with(&mut buf, RegionId(0), 1).is_none(),
            "tag conflict evicts the old region"
        );
        let hit = lookup_with(&mut buf, RegionId(2), 1).unwrap();
        assert_eq!(hit.outputs[0].1, Value::from_int(99));
        assert_eq!(buf.stats().entry_conflicts, 1);
    }

    #[test]
    fn invalidate_kills_only_memory_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(7);
        buf.record(r, inst(1, 10, true)); // memory-dependent
        buf.record(r, inst(2, 20, false)); // stateless
        buf.invalidate(r);
        assert!(lookup_with(&mut buf, r, 1).is_none(), "md instance dead");
        assert!(lookup_with(&mut buf, r, 2).is_some(), "sl instance alive");
        assert_eq!(buf.stats().invalidations, 1);
    }

    #[test]
    fn oversized_banks_are_rejected() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 2,
            input_bank: 1,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        let too_big = RecordedInstance {
            inputs: vec![(Reg(0), Value::from_int(1)), (Reg(1), Value::from_int(2))],
            outputs: vec![],
            accesses_memory: false,
            body_instrs: 5,
        };
        buf.record(RegionId(0), too_big);
        assert_eq!(buf.stats().records, 0);
    }

    #[test]
    fn nonuniform_boosted_entries_hold_more_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 8,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: Some(NonuniformConfig {
                boost_every: 4,
                boosted_instances: 4,
                mem_capable_percent: 100,
            }),
        });
        // Region 0 maps to a boosted entry (4 instances): all four
        // input sets survive.
        for v in 0..4 {
            buf.record(RegionId(0), inst(v, v, false));
        }
        for v in 0..4 {
            assert!(lookup_with(&mut buf, RegionId(0), v).is_some(), "v={v}");
        }
        // Region 1 maps to a base entry (2 instances): only the two
        // most recent survive.
        for v in 0..4 {
            buf.record(RegionId(1), inst(v, v, false));
        }
        assert!(lookup_with(&mut buf, RegionId(1), 0).is_none());
        assert!(lookup_with(&mut buf, RegionId(1), 3).is_some());
    }

    #[test]
    fn nonuniform_mem_capability_partitions_entries() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: Some(NonuniformConfig {
                boost_every: 1,
                boosted_instances: 2,
                mem_capable_percent: 50,
            }),
        });
        // Entries 0-1 are memory-capable; entries 2-3 are not.
        buf.record(RegionId(0), inst(1, 10, true));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_some());
        buf.record(RegionId(3), inst(1, 10, true));
        assert!(
            lookup_with(&mut buf, RegionId(3), 1).is_none(),
            "memory instance dropped by a mem-incapable entry"
        );
        // Stateless instances are fine anywhere.
        buf.record(RegionId(3), inst(2, 20, false));
        assert!(lookup_with(&mut buf, RegionId(3), 2).is_some());
    }

    #[test]
    fn event_log_is_off_by_default() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // evicts instance 1
        assert!(buf.take_events().is_empty());
    }

    #[test]
    fn event_log_captures_evictions_conflicts_and_invalidations() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 2,
            ..CrbConfig::paper()
        });
        buf.set_event_logging(true);
        // Fill entry 0 for region 0, then overflow it: one eviction.
        buf.record(RegionId(0), inst(1, 10, false));
        buf.record(RegionId(0), inst(2, 20, false));
        buf.record(RegionId(0), inst(3, 30, false));
        // Region 2 collides with region 0 on entry 0: one conflict.
        buf.record(RegionId(2), inst(4, 40, true));
        // Kill region 2's memory-dependent instance: one invalidation.
        buf.invalidate(RegionId(2));
        // A no-op invalidate (nothing memory-dependent left) logs nothing.
        buf.invalidate(RegionId(2));

        let events = buf.take_events();
        let kinds: Vec<CrbEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CrbEventKind::Evict,
                CrbEventKind::Conflict,
                CrbEventKind::Invalidate
            ],
            "{events:?}"
        );
        let evict = &events[0];
        assert_eq!(evict.entry, 0);
        assert_eq!(evict.occupancy, 2, "entry stays full across an eviction");
        assert_eq!(evict.lost, 1);
        let conflict = &events[1];
        assert_eq!(conflict.region, RegionId(2));
        assert_eq!(conflict.occupancy, 0);
        assert_eq!(conflict.lost, 2, "both of region 0's instances cleared");
        let inval = &events[2];
        assert_eq!(inval.occupancy, 0);
        assert_eq!(inval.lost, 1);
        // Clocks are monotonically non-decreasing.
        assert!(events.windows(2).all(|w| w[0].clock <= w[1].clock));
        // The log drains.
        assert!(buf.take_events().is_empty());
    }

    fn assert_causes(buf: &ReuseBuffer, expected: &[(MissCause, u64)]) {
        let s = buf.stats();
        for &(cause, want) in expected {
            let got = match cause {
                MissCause::Cold => s.miss_cold,
                MissCause::Mismatch => s.miss_mismatch,
                MissCause::Capacity => s.miss_capacity,
                MissCause::Conflict => s.miss_conflict,
                MissCause::Invalidated => s.miss_invalidated,
            };
            assert_eq!(got, want, "{cause:?}: {s:?}");
        }
        assert_eq!(s.miss_cause_total(), s.misses, "{s:?}");
    }

    #[test]
    fn cold_miss_is_classified_cold() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        assert!(lookup_with(&mut buf, RegionId(3), 5).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Cold));
        assert_causes(&buf, &[(MissCause::Cold, 1)]);
    }

    #[test]
    fn input_mismatch_is_classified_mismatch() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(3);
        buf.record(r, inst(5, 50, false));
        assert!(lookup_with(&mut buf, r, 6).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert!(lookup_with(&mut buf, r, 5).is_some());
        assert_eq!(buf.last_miss_cause(), None, "hits clear the cause");
        assert_causes(&buf, &[(MissCause::Mismatch, 1), (MissCause::Cold, 0)]);
    }

    #[test]
    fn capacity_eviction_is_classified_capacity() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // evicts input set 1
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Capacity));
        // Inputs never recorded at all are a mismatch, not capacity.
        assert!(lookup_with(&mut buf, r, 9).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert_causes(&buf, &[(MissCause::Capacity, 1), (MissCause::Mismatch, 1)]);
    }

    #[test]
    fn entry_conflict_is_classified_conflict() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 4,
            ..CrbConfig::paper()
        });
        // Regions 0 and 2 collide on entry 0.
        buf.record(RegionId(0), inst(1, 10, false));
        buf.record(RegionId(2), inst(1, 99, false));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Conflict));
        // A region that never recorded stays cold even when its entry
        // is held by someone else.
        assert!(lookup_with(&mut buf, RegionId(4), 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Cold));
        assert_causes(&buf, &[(MissCause::Conflict, 1), (MissCause::Cold, 1)]);
    }

    #[test]
    fn invalidation_is_classified_invalidated() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(7);
        buf.record(r, inst(1, 10, true));
        buf.invalidate(r);
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Invalidated));
        // With a stateless sibling alive, an unrelated input set is a
        // mismatch while the killed set still blames the invalidate.
        buf.record(r, inst(2, 20, false));
        assert!(lookup_with(&mut buf, r, 3).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Invalidated));
        assert_causes(
            &buf,
            &[(MissCause::Invalidated, 2), (MissCause::Mismatch, 1)],
        );
    }

    #[test]
    fn rerecorded_inputs_shed_their_ghost() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // ghost for input set 1
        buf.record(r, inst(1, 10, false)); // input set 1 live again, ghost gone
        buf.record(r, inst(3, 30, false)); // new ghost for input set 1
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Capacity));
        assert_causes(&buf, &[(MissCause::Capacity, 1)]);
    }

    #[test]
    fn cause_counters_sum_to_misses_across_a_mixed_history() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 1,
            ..CrbConfig::paper()
        });
        let _ = lookup_with(&mut buf, RegionId(0), 1); // cold
        buf.record(RegionId(0), inst(1, 10, false));
        let _ = lookup_with(&mut buf, RegionId(0), 2); // mismatch
        buf.record(RegionId(0), inst(2, 20, false)); // evicts set 1
        let _ = lookup_with(&mut buf, RegionId(0), 1); // capacity
        buf.record(RegionId(2), inst(7, 70, true)); // conflict on entry 0
        let _ = lookup_with(&mut buf, RegionId(0), 2); // conflict
        buf.invalidate(RegionId(2));
        let _ = lookup_with(&mut buf, RegionId(2), 7); // invalidated
        let _ = lookup_with(&mut buf, RegionId(0), 1); // conflict again
        let s = buf.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 6);
        assert_causes(
            &buf,
            &[
                (MissCause::Cold, 1),
                (MissCause::Mismatch, 1),
                (MissCause::Capacity, 1),
                (MissCause::Conflict, 2),
                (MissCause::Invalidated, 1),
            ],
        );
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut buf = ReuseBuffer::new(CrbConfig {
                entries: 2,
                instances: 2,
                input_bank: 8,
                output_bank: 8,
                replacement: Replacement::Random,
                nonuniform: None,
            });
            let r = RegionId(0);
            for v in 0..10 {
                buf.record(r, inst(v, v, false));
            }
            (0..10)
                .map(|v| lookup_with(&mut buf, r, v).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}

//! The Computation Reuse Buffer (Section 3.1 of the paper).
//!
//! A direct-mapped array of *computation entries* indexed by the
//! region identifier carried in the `reuse` instruction. Each entry
//! holds the computation tag (the region id), a valid bit, an array of
//! *computation instances*, and LRU state for instance replacement.
//! Each instance has an input bank and an output bank of eight
//! register entries, a valid bit, and a memory-valid field. A
//! computation instance is reusable when its input register values
//! match the current architectural state and its memory state has not
//! been invalidated.

use std::collections::{HashSet, VecDeque};

use ccr_ir::{Reg, RegionId, Value};
use ccr_profile::{CrbModel, MissCause, RecordedInstance, ReuseLookup};

use crate::snapshot::{
    cause_from_index, cause_index, CrbEntrySnapshot, CrbGhostSnapshot, CrbInstanceSnapshot,
    CrbSnapshot,
};
use crate::stats::CrbStats;

/// FNV-1a fold of one `(register, value)` pair into a running hash.
/// Folds whole words rather than bytes: the fingerprint is a
/// host-side filter that never leaves the process, so xor-multiply
/// mixing per word gives the same reject power at a fraction of the
/// cost.
#[inline]
fn fnv1a_pair(mut h: u64, r: Reg, v: Value) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    h = (h ^ u64::from(r.0)).wrapping_mul(PRIME);
    h = (h ^ v.0 as u64).wrapping_mul(PRIME);
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a fingerprint of a recorded input bank.
fn fingerprint(inputs: &[(Reg, Value)]) -> u64 {
    inputs
        .iter()
        .fold(FNV_OFFSET, |h, &(r, v)| fnv1a_pair(h, r, v))
}

/// Reads `r` through a per-lookup memo so each distinct register is
/// fetched from architectural state exactly once per lookup, no
/// matter how many instances and ghosts are scanned. Input banks hold
/// at most 8 registers, so linear search beats any map.
#[inline]
fn cached_read(
    cache: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    r: Reg,
) -> Value {
    if let Some(&(_, v)) = cache.iter().find(|&&(cr, _)| cr == r) {
        return v;
    }
    let v = read_reg(r);
    cache.push((r, v));
    v
}

/// Fingerprint the *current* architectural values of an input bank's
/// registers, using the same fold as [`fingerprint`]. Equal recorded
/// and live values therefore produce equal hashes, so a hash mismatch
/// proves at least one value differs — the filter can only reject
/// banks the full compare would reject too.
fn live_fingerprint(
    cache: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    inputs: &[(Reg, Value)],
) -> u64 {
    let mut h = FNV_OFFSET;
    for &(r, _) in inputs {
        h = fnv1a_pair(h, r, cached_read(cache, read_reg, r));
    }
    h
}

/// [`live_fingerprint`] memoized on the input bank's register
/// sequence: all instances (and ghosts) of an entry share the
/// region's input register set, so in practice the fold runs once per
/// lookup and every further bank costs one sequence compare. Banks
/// with a different register sequence (defensive — they should not
/// occur within an entry) fall back to a fresh fold, so the cache can
/// never produce a wrong fingerprint.
fn cached_live_fp(
    fp_regs: &mut Vec<Reg>,
    fp: &mut Option<u64>,
    reads: &mut Vec<(Reg, Value)>,
    read_reg: &mut dyn FnMut(Reg) -> Value,
    inputs: &[(Reg, Value)],
) -> u64 {
    let cached = fp.filter(|_| {
        fp_regs.len() == inputs.len() && fp_regs.iter().zip(inputs).all(|(a, (b, _))| a == b)
    });
    match cached {
        Some(h) => h,
        None => {
            let h = live_fingerprint(reads, read_reg, inputs);
            fp_regs.clear();
            fp_regs.extend(inputs.iter().map(|(r, _)| *r));
            *fp = Some(h);
            h
        }
    }
}

/// Instance replacement policy within a computation entry (the paper
/// specifies LRU; the alternatives support the ablation benches).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Replacement {
    /// Least-recently-used instance (the paper's policy).
    Lru,
    /// Oldest-inserted instance.
    Fifo,
    /// Uniformly random instance (deterministic xorshift stream).
    Random,
}

/// Nonuniform entry capacities (the paper's future-work item:
/// "reuse buffers with nonuniform capacities", and Section 5.2's
/// observation that "the CRB could be designed to have only a portion
/// of the computation entries with memory reuse capabilities").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NonuniformConfig {
    /// Every `boost_every`-th entry holds `boosted_instances`
    /// computation instances instead of the base count.
    pub boost_every: usize,
    /// Instance count of the boosted entries.
    pub boosted_instances: usize,
    /// Percentage of entries (from index 0 upward) capable of holding
    /// memory-dependent instances; the rest silently drop them.
    pub mem_capable_percent: u8,
}

/// Buffer geometry.
#[derive(Clone, Copy, Debug)]
pub struct CrbConfig {
    /// Number of computation entries (32 / 64 / 128 in the paper).
    pub entries: usize,
    /// Computation instances per entry (4 / 8 / 16 in the paper).
    pub instances: usize,
    /// Register entries in each instance's input bank.
    pub input_bank: usize,
    /// Register entries in each instance's output bank.
    pub output_bank: usize,
    /// Instance replacement policy.
    pub replacement: Replacement,
    /// Optional nonuniform entry capacities.
    pub nonuniform: Option<NonuniformConfig>,
}

impl CrbConfig {
    /// The paper's cost-effective configuration: 128 entries × 8
    /// instances, 8-entry banks, LRU.
    pub fn paper() -> CrbConfig {
        CrbConfig {
            entries: 128,
            instances: 8,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        }
    }

    /// The paper's configuration with a different entry count.
    pub fn with_entries(entries: usize) -> CrbConfig {
        CrbConfig {
            entries,
            ..CrbConfig::paper()
        }
    }

    /// The paper's configuration with a different instance count.
    pub fn with_instances(instances: usize) -> CrbConfig {
        CrbConfig {
            instances,
            ..CrbConfig::paper()
        }
    }

    /// Canonical `(field, value)` enumeration of the buffer geometry,
    /// in declaration order (the optional nonuniform block flattened
    /// as `nonuniform.*`, `"-"` when absent).
    ///
    /// The experiment planner keys simulation units by hashing these
    /// pairs and labels sweep axes by diffing them, so the list must
    /// stay exhaustive — a missing field would alias two distinct
    /// buffer geometries.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        let (boost_every, boosted, mem_pct) = match self.nonuniform {
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
            Some(nu) => (
                nu.boost_every.to_string(),
                nu.boosted_instances.to_string(),
                nu.mem_capable_percent.to_string(),
            ),
        };
        vec![
            ("entries", self.entries.to_string()),
            ("instances", self.instances.to_string()),
            ("input_bank", self.input_bank.to_string()),
            ("output_bank", self.output_bank.to_string()),
            (
                "replacement",
                match self.replacement {
                    Replacement::Lru => "lru",
                    Replacement::Fifo => "fifo",
                    Replacement::Random => "random",
                }
                .to_string(),
            ),
            ("nonuniform.boost_every", boost_every),
            ("nonuniform.boosted_instances", boosted),
            ("nonuniform.mem_capable_percent", mem_pct),
        ]
    }
}

/// Kind of a logged buffer event (see [`ReuseBuffer::set_event_logging`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrbEventKind {
    /// A valid computation instance was overwritten by capacity
    /// replacement within its entry.
    Evict,
    /// An entry was reassigned to a different region (direct-mapped
    /// tag conflict), discarding the previous region's instances.
    Conflict,
    /// An `invalidate` killed one or more memory-dependent instances.
    Invalidate,
}

/// One logged buffer event. Recorded only while event logging is on;
/// the default-off log keeps the hot path allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrbEvent {
    /// Buffer clock at the event (advances on every lookup and record).
    pub clock: u64,
    /// What happened.
    pub kind: CrbEventKind,
    /// Region whose record or invalidate triggered the event.
    pub region: RegionId,
    /// Direct-mapped entry index involved.
    pub entry: usize,
    /// Valid instances in the entry after the event.
    pub occupancy: usize,
    /// Instances lost: 1 for an eviction, the cleared count for a
    /// conflict, the killed count for an invalidation.
    pub lost: usize,
}

#[derive(Clone, Debug)]
struct Instance {
    valid: bool,
    inputs: Vec<(Reg, Value)>,
    /// FNV-1a fingerprint of `inputs`, maintained as a cheap reject
    /// filter for `lookup` (see [`fingerprint`]).
    fp: u64,
    outputs: Vec<(Reg, Value)>,
    accesses_memory: bool,
    body_instrs: u64,
    last_use: u64,
    inserted: u64,
}

impl Instance {
    fn empty() -> Instance {
        Instance {
            valid: false,
            inputs: Vec::new(),
            fp: 0,
            outputs: Vec::new(),
            accesses_memory: false,
            body_instrs: 0,
            last_use: 0,
            inserted: 0,
        }
    }
}

/// Observational remnant of an instance that left the entry while its
/// region kept the tag: the input bank it matched on and why it died.
/// Ghosts let a later miss on the same inputs be classified as a
/// capacity or invalidation casualty instead of a plain mismatch.
/// Purely diagnostic — never consulted by hit/replacement decisions.
#[derive(Clone, Debug)]
struct Ghost {
    inputs: Vec<(Reg, Value)>,
    /// FNV-1a fingerprint of `inputs`, same filter role as
    /// [`Instance::fp`].
    fp: u64,
    cause: MissCause,
}

#[derive(Clone, Debug)]
struct Entry {
    tag: Option<RegionId>,
    instances: Vec<Instance>,
    ghosts: VecDeque<Ghost>,
}

impl Entry {
    /// Remembers a departed instance's input bank, keeping at most
    /// twice the entry's instance count (oldest dropped first).
    fn push_ghost(&mut self, inputs: Vec<(Reg, Value)>, fp: u64, cause: MissCause) {
        let cap = self.instances.len() * 2;
        if self.ghosts.len() >= cap {
            self.ghosts.pop_front();
        }
        self.ghosts.push_back(Ghost { inputs, fp, cause });
    }
}

/// The hardware buffer. Implements [`CrbModel`] so the emulator can
/// consult it during execution-driven simulation.
///
/// ```
/// use ccr_ir::{Reg, RegionId, Value};
/// use ccr_profile::{CrbModel, RecordedInstance};
/// use ccr_sim::{CrbConfig, ReuseBuffer};
///
/// let mut buf = ReuseBuffer::new(CrbConfig::paper());
/// buf.record(RegionId(3), RecordedInstance {
///     inputs: vec![(Reg(1), Value::from_int(17))],
///     outputs: vec![(Reg(2), Value::from_int(289))],
///     accesses_memory: false,
///     body_instrs: 12,
/// });
/// // A lookup with r1 = 17 replays the recorded outputs.
/// let hit = buf.lookup(RegionId(3), &mut |_| Value::from_int(17)).unwrap();
/// assert_eq!(hit.outputs[0].1.as_int(), 289);
/// assert_eq!(hit.skipped_instrs, 12);
/// // A different input misses.
/// assert!(buf.lookup(RegionId(3), &mut |_| Value::from_int(18)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ReuseBuffer {
    config: CrbConfig,
    entries: Vec<Entry>,
    clock: u64,
    rng: u64,
    stats: CrbStats,
    log_events: bool,
    events: Vec<CrbEvent>,
    /// Regions that ever had an instance actually inserted (dropped
    /// records — oversized banks, mem-incapable entries — don't
    /// count). Misses on regions outside this set are cold.
    ever_recorded: HashSet<RegionId>,
    /// Cause of the most recent miss; `None` after a hit.
    last_miss_cause: Option<MissCause>,
    /// When on (the default), `lookup` rejects instances and ghosts
    /// whose stored fingerprint differs from the fingerprint of the
    /// current register values before doing the full bank compare.
    /// Host-speed filter only — outcomes are identical either way
    /// (enforced by a property test).
    fp_filter: bool,
    /// Per-lookup register-read memo, kept on the buffer so the hot
    /// path never allocates after warmup.
    read_scratch: Vec<(Reg, Value)>,
    /// Register sequence of the last live-fingerprint fold (see
    /// [`cached_live_fp`]); same allocation-reuse rationale.
    fp_regs_scratch: Vec<Reg>,
}

impl ReuseBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries or instances.
    pub fn new(config: CrbConfig) -> ReuseBuffer {
        assert!(config.entries > 0 && config.instances > 0);
        if let Some(nu) = config.nonuniform {
            assert!(nu.boost_every > 0 && nu.boosted_instances > 0);
            assert!(nu.mem_capable_percent <= 100);
        }
        ReuseBuffer {
            entries: (0..config.entries)
                .map(|idx| {
                    let count = match config.nonuniform {
                        Some(nu) if idx % nu.boost_every == 0 => nu.boosted_instances,
                        _ => config.instances,
                    };
                    Entry {
                        tag: None,
                        instances: vec![Instance::empty(); count],
                        ghosts: VecDeque::new(),
                    }
                })
                .collect(),
            config,
            clock: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: CrbStats::default(),
            log_events: false,
            events: Vec::new(),
            ever_recorded: HashSet::new(),
            last_miss_cause: None,
            fp_filter: true,
            read_scratch: Vec::new(),
            fp_regs_scratch: Vec::new(),
        }
    }

    /// Enables or disables the fingerprint reject filter in `lookup`.
    /// On by default; turning it off forces the full bank compare for
    /// every instance and ghost. Exists so tests and benches can pit
    /// the filtered path against the reference path — simulated
    /// outcomes are identical either way.
    pub fn set_fingerprint_filter(&mut self, on: bool) {
        self.fp_filter = on;
    }

    /// The buffer's counters.
    pub fn stats(&self) -> CrbStats {
        self.stats.check();
        self.stats
    }

    /// Turns the eviction/conflict/invalidation event log on or off.
    /// Off by default: the log allocates, and most simulations never
    /// read it.
    pub fn set_event_logging(&mut self, on: bool) {
        self.log_events = on;
    }

    /// Drains the logged events, oldest first.
    pub fn take_events(&mut self) -> Vec<CrbEvent> {
        std::mem::take(&mut self.events)
    }

    /// Valid instances currently held by the entry at `idx`.
    fn occupancy(&self, idx: usize) -> usize {
        self.entries[idx]
            .instances
            .iter()
            .filter(|i| i.valid)
            .count()
    }

    /// The buffer's geometry.
    pub fn config(&self) -> CrbConfig {
        self.config
    }

    fn entry_index(&self, region: RegionId) -> usize {
        region.index() % self.config.entries
    }

    /// True if the entry at `idx` may hold memory-dependent instances.
    fn mem_capable(&self, idx: usize) -> bool {
        match self.config.nonuniform {
            None => true,
            Some(nu) => idx * 100 < self.config.entries * nu.mem_capable_percent as usize,
        }
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, seedless-reproducible.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Captures the complete buffer state as plain data.
    ///
    /// # Errors
    ///
    /// Event-logging buffers cannot be snapshotted: the event log is
    /// diagnostic state the snapshot format deliberately excludes.
    pub fn snapshot(&self) -> Result<CrbSnapshot, String> {
        if self.log_events {
            return Err("cannot snapshot a reuse buffer with event logging enabled".to_string());
        }
        let mut ever: Vec<u32> = self.ever_recorded.iter().map(|r| r.0).collect();
        ever.sort_unstable();
        Ok(CrbSnapshot {
            clock: self.clock,
            rng: self.rng,
            stats: self.stats,
            last_miss_cause: self.last_miss_cause.map(cause_index),
            ever_recorded: ever,
            entries: self
                .entries
                .iter()
                .map(|e| CrbEntrySnapshot {
                    tag: e.tag.map(|r| r.0),
                    instances: e
                        .instances
                        .iter()
                        .map(|i| CrbInstanceSnapshot {
                            valid: i.valid,
                            inputs: i.inputs.iter().map(|(r, v)| (r.0, v.0 as u64)).collect(),
                            fp: i.fp,
                            outputs: i.outputs.iter().map(|(r, v)| (r.0, v.0 as u64)).collect(),
                            accesses_memory: i.accesses_memory,
                            body_instrs: i.body_instrs,
                            last_use: i.last_use,
                            inserted: i.inserted,
                        })
                        .collect(),
                    ghosts: e
                        .ghosts
                        .iter()
                        .map(|g| CrbGhostSnapshot {
                            inputs: g.inputs.iter().map(|(r, v)| (r.0, v.0 as u64)).collect(),
                            fp: g.fp,
                            cause: cause_index(g.cause),
                        })
                        .collect(),
                })
                .collect(),
        })
    }

    /// Rebuilds a mid-run buffer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a one-line description when the snapshot geometry does
    /// not match `config` or a miss-cause index is out of range.
    pub fn restore(config: CrbConfig, snap: &CrbSnapshot) -> Result<ReuseBuffer, String> {
        let mut buf = ReuseBuffer::new(config);
        if snap.entries.len() != buf.entries.len() {
            return Err(format!(
                "crb snapshot has {} entries, config wants {}",
                snap.entries.len(),
                buf.entries.len()
            ));
        }
        for (idx, (es, entry)) in snap.entries.iter().zip(buf.entries.iter_mut()).enumerate() {
            if es.instances.len() != entry.instances.len() {
                return Err(format!(
                    "crb entry {idx} has {} instances, config wants {}",
                    es.instances.len(),
                    entry.instances.len()
                ));
            }
            if es.ghosts.len() > es.instances.len() * 2 {
                return Err(format!(
                    "crb entry {idx} has {} ghosts, capacity is {}",
                    es.ghosts.len(),
                    es.instances.len() * 2
                ));
            }
            entry.tag = es.tag.map(RegionId);
            entry.instances = es
                .instances
                .iter()
                .map(|i| Instance {
                    valid: i.valid,
                    inputs: i
                        .inputs
                        .iter()
                        .map(|(r, v)| (Reg(*r), Value(*v as i64)))
                        .collect(),
                    fp: i.fp,
                    outputs: i
                        .outputs
                        .iter()
                        .map(|(r, v)| (Reg(*r), Value(*v as i64)))
                        .collect(),
                    accesses_memory: i.accesses_memory,
                    body_instrs: i.body_instrs,
                    last_use: i.last_use,
                    inserted: i.inserted,
                })
                .collect();
            entry.ghosts = es
                .ghosts
                .iter()
                .map(|g| {
                    Ok(Ghost {
                        inputs: g
                            .inputs
                            .iter()
                            .map(|(r, v)| (Reg(*r), Value(*v as i64)))
                            .collect(),
                        fp: g.fp,
                        cause: cause_from_index(g.cause)?,
                    })
                })
                .collect::<Result<_, String>>()?;
        }
        buf.clock = snap.clock;
        buf.rng = snap.rng;
        buf.stats = snap.stats;
        buf.last_miss_cause = snap.last_miss_cause.map(cause_from_index).transpose()?;
        buf.ever_recorded = snap.ever_recorded.iter().map(|r| RegionId(*r)).collect();
        Ok(buf)
    }

    /// Folds the full buffer state into `push` in a deterministic
    /// order (the `ever_recorded` set is sorted first). The event log,
    /// the fingerprint-filter switch, and the two scratch vectors are
    /// excluded: none of them alters simulated outcomes.
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.clock);
        push(self.rng);
        self.stats.fold_state(push);
        match self.last_miss_cause {
            None => push(0),
            Some(c) => {
                push(1);
                push(cause_index(c));
            }
        }
        let mut ever: Vec<u32> = self.ever_recorded.iter().map(|r| r.0).collect();
        ever.sort_unstable();
        push(ever.len() as u64);
        for r in ever {
            push(u64::from(r));
        }
        push(self.entries.len() as u64);
        for e in &self.entries {
            match e.tag {
                None => push(0),
                Some(r) => {
                    push(1);
                    push(u64::from(r.0));
                }
            }
            push(e.instances.len() as u64);
            for i in &e.instances {
                push(u64::from(i.valid));
                push(i.inputs.len() as u64);
                for (r, v) in &i.inputs {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(i.fp);
                push(i.outputs.len() as u64);
                for (r, v) in &i.outputs {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(u64::from(i.accesses_memory));
                push(i.body_instrs);
                push(i.last_use);
                push(i.inserted);
            }
            push(e.ghosts.len() as u64);
            for g in &e.ghosts {
                push(g.inputs.len() as u64);
                for (r, v) in &g.inputs {
                    push(u64::from(r.0));
                    push(v.0 as u64);
                }
                push(g.fp);
                push(cause_index(g.cause));
            }
        }
    }

    /// Test hook: XORs the replacement RNG stream with a constant,
    /// deterministically disturbing internal state so fingerprint
    /// divergence can be injected at a chosen point.
    #[doc(hidden)]
    pub fn perturb_for_tests(&mut self) {
        self.rng ^= 0xdead_beef_0bad_f00d;
    }

    fn victim_slot(&mut self, idx: usize) -> usize {
        let entry = &self.entries[idx];
        if let Some(free) = entry.instances.iter().position(|i| !i.valid) {
            return free;
        }
        let n = entry.instances.len();
        match self.config.replacement {
            Replacement::Lru => entry
                .instances
                .iter()
                .enumerate()
                .min_by_key(|(_, i)| i.last_use)
                .map(|(k, _)| k)
                .expect("non-empty instances"),
            Replacement::Fifo => entry
                .instances
                .iter()
                .enumerate()
                .min_by_key(|(_, i)| i.inserted)
                .map(|(k, _)| k)
                .expect("non-empty instances"),
            Replacement::Random => (self.next_random() % n as u64) as usize,
        }
    }
}

impl CrbModel for ReuseBuffer {
    fn lookup(
        &mut self,
        region: RegionId,
        read_reg: &mut dyn FnMut(Reg) -> Value,
    ) -> Option<ReuseLookup> {
        self.stats.lookups += 1;
        self.clock += 1;
        let idx = self.entry_index(region);
        let clock = self.clock;
        let recorded_before = self.ever_recorded.contains(&region);
        let entry = &mut self.entries[idx];
        if entry.tag != Some(region) {
            // The tag only moves away from a recorded region via a
            // direct-mapped reassignment, so a tag miss on a known
            // region is a conflict casualty.
            let cause = if recorded_before {
                MissCause::Conflict
            } else {
                MissCause::Cold
            };
            self.stats.misses += 1;
            self.stats.count_miss_cause(cause);
            self.last_miss_cause = Some(cause);
            return None;
        }
        // All instances of an entry share the region's input register
        // set, so a small per-lookup memo makes repeated scans read
        // each architectural register once. The memo vector lives on
        // the buffer so the hot path never allocates after warmup.
        let mut reads = std::mem::take(&mut self.read_scratch);
        reads.clear();
        let mut fp_regs = std::mem::take(&mut self.fp_regs_scratch);
        fp_regs.clear();
        let mut live_fp: Option<u64> = None;
        let fp_filter = self.fp_filter;
        for inst in &mut entry.instances {
            if !inst.valid {
                continue;
            }
            if fp_filter
                && cached_live_fp(
                    &mut fp_regs,
                    &mut live_fp,
                    &mut reads,
                    read_reg,
                    &inst.inputs,
                ) != inst.fp
            {
                continue; // some input value differs — cannot match
            }
            if inst
                .inputs
                .iter()
                .all(|&(r, v)| cached_read(&mut reads, read_reg, r) == v)
            {
                inst.last_use = clock;
                let hit = ReuseLookup {
                    outputs: inst.outputs.clone(),
                    inputs: inst.inputs.iter().map(|(r, _)| *r).collect(),
                    skipped_instrs: inst.body_instrs,
                };
                self.stats.hits += 1;
                self.last_miss_cause = None;
                self.read_scratch = reads;
                self.fp_regs_scratch = fp_regs;
                return Some(hit);
            }
        }
        // No live instance matched. If a ghost of this entry matches
        // the current register values, the instance that would have
        // hit was lost — blame its recorded cause (most recent ghost
        // first). A tagged entry with no live instances at all was
        // emptied by invalidation (records always leave one instance).
        let cause = if let Some(ghost) = entry.ghosts.iter().rev().find(|g| {
            (!fp_filter
                || cached_live_fp(&mut fp_regs, &mut live_fp, &mut reads, read_reg, &g.inputs)
                    == g.fp)
                && g.inputs
                    .iter()
                    .all(|&(r, v)| cached_read(&mut reads, read_reg, r) == v)
        }) {
            ghost.cause
        } else if entry.instances.iter().all(|i| !i.valid) {
            MissCause::Invalidated
        } else {
            MissCause::Mismatch
        };
        self.stats.misses += 1;
        self.stats.count_miss_cause(cause);
        self.last_miss_cause = Some(cause);
        self.read_scratch = reads;
        self.fp_regs_scratch = fp_regs;
        None
    }

    fn record(&mut self, region: RegionId, instance: RecordedInstance) {
        if instance.inputs.len() > self.config.input_bank
            || instance.outputs.len() > self.config.output_bank
        {
            return; // exceeds bank capacity: drop (defensive)
        }
        self.clock += 1;
        let idx = self.entry_index(region);
        if instance.accesses_memory && !self.mem_capable(idx) {
            return; // this entry has no memory-validation hardware
        }
        self.stats.records += 1;
        if self.entries[idx].tag != Some(region) {
            if self.entries[idx].tag.is_some() {
                self.stats.entry_conflicts += 1;
                if self.log_events {
                    self.events.push(CrbEvent {
                        clock: self.clock,
                        kind: CrbEventKind::Conflict,
                        region,
                        entry: idx,
                        occupancy: 0,
                        lost: self.occupancy(idx),
                    });
                }
            }
            let entry = &mut self.entries[idx];
            entry.tag = Some(region);
            for inst in &mut entry.instances {
                *inst = Instance::empty();
            }
            entry.ghosts.clear();
        }
        // An instance with the identical input bank is refreshed in
        // place rather than duplicated (duplicates would waste
        // capacity and let a replacement evict live input sets).
        // Equal banks hash equal, so the fingerprint pre-check below
        // never changes which slot is found — it only skips compares.
        let fp = fingerprint(&instance.inputs);
        let existing = self.entries[idx]
            .instances
            .iter()
            .position(|i| i.valid && i.fp == fp && i.inputs == instance.inputs);
        let slot = match existing {
            Some(k) => k,
            None => {
                let k = self.victim_slot(idx);
                if self.entries[idx].instances[k].valid {
                    if self.log_events {
                        self.events.push(CrbEvent {
                            clock: self.clock,
                            kind: CrbEventKind::Evict,
                            region,
                            entry: idx,
                            // The victim is overwritten by the incoming
                            // instance, so occupancy is unchanged.
                            occupancy: self.occupancy(idx),
                            lost: 1,
                        });
                    }
                    let victim = &self.entries[idx].instances[k];
                    let (victim_inputs, victim_fp) = (victim.inputs.clone(), victim.fp);
                    self.entries[idx].push_ghost(victim_inputs, victim_fp, MissCause::Capacity);
                }
                k
            }
        };
        let clock = self.clock;
        let entry = &mut self.entries[idx];
        entry
            .ghosts
            .retain(|g| g.fp != fp || g.inputs != instance.inputs);
        entry.instances[slot] = Instance {
            valid: true,
            inputs: instance.inputs,
            fp,
            outputs: instance.outputs,
            accesses_memory: instance.accesses_memory,
            body_instrs: instance.body_instrs,
            last_use: clock,
            inserted: clock,
        };
        self.ever_recorded.insert(region);
    }

    fn invalidate(&mut self, region: RegionId) {
        self.stats.invalidations += 1;
        let idx = self.entry_index(region);
        let entry = &mut self.entries[idx];
        let mut killed = 0;
        if entry.tag == Some(region) {
            let mut dead_inputs = Vec::new();
            for inst in &mut entry.instances {
                if inst.valid && inst.accesses_memory {
                    inst.valid = false;
                    killed += 1;
                    dead_inputs.push((inst.inputs.clone(), inst.fp));
                }
            }
            for (inputs, fp) in dead_inputs {
                entry.push_ghost(inputs, fp, MissCause::Invalidated);
            }
        }
        if self.log_events && killed > 0 {
            self.events.push(CrbEvent {
                clock: self.clock,
                kind: CrbEventKind::Invalidate,
                region,
                entry: idx,
                occupancy: self.occupancy(idx),
                lost: killed,
            });
        }
    }

    fn input_capacity(&self) -> usize {
        self.config.input_bank
    }

    fn output_capacity(&self) -> usize {
        self.config.output_bank
    }

    fn last_miss_cause(&self) -> Option<MissCause> {
        self.last_miss_cause
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(input: i64, output: i64, mem: bool) -> RecordedInstance {
        RecordedInstance {
            inputs: vec![(Reg(0), Value::from_int(input))],
            outputs: vec![(Reg(1), Value::from_int(output))],
            accesses_memory: mem,
            body_instrs: 10,
        }
    }

    fn lookup_with(buf: &mut ReuseBuffer, region: RegionId, r0: i64) -> Option<ReuseLookup> {
        buf.lookup(region, &mut |r| {
            assert_eq!(r, Reg(0));
            Value::from_int(r0)
        })
    }

    #[test]
    fn record_then_hit_on_matching_inputs() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(3);
        assert!(lookup_with(&mut buf, r, 5).is_none());
        buf.record(r, inst(5, 50, false));
        let hit = lookup_with(&mut buf, r, 5).expect("hit");
        assert_eq!(hit.outputs, vec![(Reg(1), Value::from_int(50))]);
        assert_eq!(hit.skipped_instrs, 10);
        assert!(lookup_with(&mut buf, r, 6).is_none(), "different input");
        let s = buf.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.records, 1);
    }

    #[test]
    fn multiple_instances_capture_multiple_input_sets() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(4));
        let r = RegionId(0);
        for v in 0..4 {
            buf.record(r, inst(v, v * 10, false));
        }
        for v in 0..4 {
            let hit = lookup_with(&mut buf, r, v).expect("all four retained");
            assert_eq!(hit.outputs[0].1, Value::from_int(v * 10));
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false));
        // Touch instance 1, making instance 2 the LRU.
        assert!(lookup_with(&mut buf, r, 1).is_some());
        buf.record(r, inst(3, 30, false));
        assert!(lookup_with(&mut buf, r, 1).is_some(), "recently used kept");
        assert!(lookup_with(&mut buf, r, 2).is_none(), "LRU evicted");
        assert!(lookup_with(&mut buf, r, 3).is_some());
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Fifo,
            nonuniform: None,
        });
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false));
        assert!(lookup_with(&mut buf, r, 1).is_some()); // touch 1
        buf.record(r, inst(3, 30, false));
        // FIFO ignores the touch: instance 1 (oldest) is evicted.
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert!(lookup_with(&mut buf, r, 2).is_some());
    }

    #[test]
    fn entry_conflict_replaces_tag_and_clears_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 4,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        // Regions 0 and 2 collide on entry 0.
        buf.record(RegionId(0), inst(1, 10, false));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_some());
        buf.record(RegionId(2), inst(1, 99, false));
        assert!(
            lookup_with(&mut buf, RegionId(0), 1).is_none(),
            "tag conflict evicts the old region"
        );
        let hit = lookup_with(&mut buf, RegionId(2), 1).unwrap();
        assert_eq!(hit.outputs[0].1, Value::from_int(99));
        assert_eq!(buf.stats().entry_conflicts, 1);
    }

    #[test]
    fn invalidate_kills_only_memory_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(7);
        buf.record(r, inst(1, 10, true)); // memory-dependent
        buf.record(r, inst(2, 20, false)); // stateless
        buf.invalidate(r);
        assert!(lookup_with(&mut buf, r, 1).is_none(), "md instance dead");
        assert!(lookup_with(&mut buf, r, 2).is_some(), "sl instance alive");
        assert_eq!(buf.stats().invalidations, 1);
    }

    #[test]
    fn oversized_banks_are_rejected() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 2,
            input_bank: 1,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        let too_big = RecordedInstance {
            inputs: vec![(Reg(0), Value::from_int(1)), (Reg(1), Value::from_int(2))],
            outputs: vec![],
            accesses_memory: false,
            body_instrs: 5,
        };
        buf.record(RegionId(0), too_big);
        assert_eq!(buf.stats().records, 0);
    }

    #[test]
    fn nonuniform_boosted_entries_hold_more_instances() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 8,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: Some(NonuniformConfig {
                boost_every: 4,
                boosted_instances: 4,
                mem_capable_percent: 100,
            }),
        });
        // Region 0 maps to a boosted entry (4 instances): all four
        // input sets survive.
        for v in 0..4 {
            buf.record(RegionId(0), inst(v, v, false));
        }
        for v in 0..4 {
            assert!(lookup_with(&mut buf, RegionId(0), v).is_some(), "v={v}");
        }
        // Region 1 maps to a base entry (2 instances): only the two
        // most recent survive.
        for v in 0..4 {
            buf.record(RegionId(1), inst(v, v, false));
        }
        assert!(lookup_with(&mut buf, RegionId(1), 0).is_none());
        assert!(lookup_with(&mut buf, RegionId(1), 3).is_some());
    }

    #[test]
    fn nonuniform_mem_capability_partitions_entries() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances: 2,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: Some(NonuniformConfig {
                boost_every: 1,
                boosted_instances: 2,
                mem_capable_percent: 50,
            }),
        });
        // Entries 0-1 are memory-capable; entries 2-3 are not.
        buf.record(RegionId(0), inst(1, 10, true));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_some());
        buf.record(RegionId(3), inst(1, 10, true));
        assert!(
            lookup_with(&mut buf, RegionId(3), 1).is_none(),
            "memory instance dropped by a mem-incapable entry"
        );
        // Stateless instances are fine anywhere.
        buf.record(RegionId(3), inst(2, 20, false));
        assert!(lookup_with(&mut buf, RegionId(3), 2).is_some());
    }

    #[test]
    fn event_log_is_off_by_default() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // evicts instance 1
        assert!(buf.take_events().is_empty());
    }

    #[test]
    fn event_log_captures_evictions_conflicts_and_invalidations() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 2,
            ..CrbConfig::paper()
        });
        buf.set_event_logging(true);
        // Fill entry 0 for region 0, then overflow it: one eviction.
        buf.record(RegionId(0), inst(1, 10, false));
        buf.record(RegionId(0), inst(2, 20, false));
        buf.record(RegionId(0), inst(3, 30, false));
        // Region 2 collides with region 0 on entry 0: one conflict.
        buf.record(RegionId(2), inst(4, 40, true));
        // Kill region 2's memory-dependent instance: one invalidation.
        buf.invalidate(RegionId(2));
        // A no-op invalidate (nothing memory-dependent left) logs nothing.
        buf.invalidate(RegionId(2));

        let events = buf.take_events();
        let kinds: Vec<CrbEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CrbEventKind::Evict,
                CrbEventKind::Conflict,
                CrbEventKind::Invalidate
            ],
            "{events:?}"
        );
        let evict = &events[0];
        assert_eq!(evict.entry, 0);
        assert_eq!(evict.occupancy, 2, "entry stays full across an eviction");
        assert_eq!(evict.lost, 1);
        let conflict = &events[1];
        assert_eq!(conflict.region, RegionId(2));
        assert_eq!(conflict.occupancy, 0);
        assert_eq!(conflict.lost, 2, "both of region 0's instances cleared");
        let inval = &events[2];
        assert_eq!(inval.occupancy, 0);
        assert_eq!(inval.lost, 1);
        // Clocks are monotonically non-decreasing.
        assert!(events.windows(2).all(|w| w[0].clock <= w[1].clock));
        // The log drains.
        assert!(buf.take_events().is_empty());
    }

    fn assert_causes(buf: &ReuseBuffer, expected: &[(MissCause, u64)]) {
        let s = buf.stats();
        for &(cause, want) in expected {
            let got = match cause {
                MissCause::Cold => s.miss_cold,
                MissCause::Mismatch => s.miss_mismatch,
                MissCause::Capacity => s.miss_capacity,
                MissCause::Conflict => s.miss_conflict,
                MissCause::Invalidated => s.miss_invalidated,
            };
            assert_eq!(got, want, "{cause:?}: {s:?}");
        }
        assert_eq!(s.miss_cause_total(), s.misses, "{s:?}");
    }

    #[test]
    fn cold_miss_is_classified_cold() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        assert!(lookup_with(&mut buf, RegionId(3), 5).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Cold));
        assert_causes(&buf, &[(MissCause::Cold, 1)]);
    }

    #[test]
    fn input_mismatch_is_classified_mismatch() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(3);
        buf.record(r, inst(5, 50, false));
        assert!(lookup_with(&mut buf, r, 6).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert!(lookup_with(&mut buf, r, 5).is_some());
        assert_eq!(buf.last_miss_cause(), None, "hits clear the cause");
        assert_causes(&buf, &[(MissCause::Mismatch, 1), (MissCause::Cold, 0)]);
    }

    #[test]
    fn capacity_eviction_is_classified_capacity() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // evicts input set 1
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Capacity));
        // Inputs never recorded at all are a mismatch, not capacity.
        assert!(lookup_with(&mut buf, r, 9).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert_causes(&buf, &[(MissCause::Capacity, 1), (MissCause::Mismatch, 1)]);
    }

    #[test]
    fn entry_conflict_is_classified_conflict() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 4,
            ..CrbConfig::paper()
        });
        // Regions 0 and 2 collide on entry 0.
        buf.record(RegionId(0), inst(1, 10, false));
        buf.record(RegionId(2), inst(1, 99, false));
        assert!(lookup_with(&mut buf, RegionId(0), 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Conflict));
        // A region that never recorded stays cold even when its entry
        // is held by someone else.
        assert!(lookup_with(&mut buf, RegionId(4), 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Cold));
        assert_causes(&buf, &[(MissCause::Conflict, 1), (MissCause::Cold, 1)]);
    }

    #[test]
    fn invalidation_is_classified_invalidated() {
        let mut buf = ReuseBuffer::new(CrbConfig::paper());
        let r = RegionId(7);
        buf.record(r, inst(1, 10, true));
        buf.invalidate(r);
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Invalidated));
        // With a stateless sibling alive, an unrelated input set is a
        // mismatch while the killed set still blames the invalidate.
        buf.record(r, inst(2, 20, false));
        assert!(lookup_with(&mut buf, r, 3).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Mismatch));
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Invalidated));
        assert_causes(
            &buf,
            &[(MissCause::Invalidated, 2), (MissCause::Mismatch, 1)],
        );
    }

    #[test]
    fn rerecorded_inputs_shed_their_ghost() {
        let mut buf = ReuseBuffer::new(CrbConfig::with_instances(1));
        let r = RegionId(0);
        buf.record(r, inst(1, 10, false));
        buf.record(r, inst(2, 20, false)); // ghost for input set 1
        buf.record(r, inst(1, 10, false)); // input set 1 live again, ghost gone
        buf.record(r, inst(3, 30, false)); // new ghost for input set 1
        assert!(lookup_with(&mut buf, r, 1).is_none());
        assert_eq!(buf.last_miss_cause(), Some(MissCause::Capacity));
        assert_causes(&buf, &[(MissCause::Capacity, 1)]);
    }

    #[test]
    fn cause_counters_sum_to_misses_across_a_mixed_history() {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 2,
            instances: 1,
            ..CrbConfig::paper()
        });
        let _ = lookup_with(&mut buf, RegionId(0), 1); // cold
        buf.record(RegionId(0), inst(1, 10, false));
        let _ = lookup_with(&mut buf, RegionId(0), 2); // mismatch
        buf.record(RegionId(0), inst(2, 20, false)); // evicts set 1
        let _ = lookup_with(&mut buf, RegionId(0), 1); // capacity
        buf.record(RegionId(2), inst(7, 70, true)); // conflict on entry 0
        let _ = lookup_with(&mut buf, RegionId(0), 2); // conflict
        buf.invalidate(RegionId(2));
        let _ = lookup_with(&mut buf, RegionId(2), 7); // invalidated
        let _ = lookup_with(&mut buf, RegionId(0), 1); // conflict again
        let s = buf.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 6);
        assert_causes(
            &buf,
            &[
                (MissCause::Cold, 1),
                (MissCause::Mismatch, 1),
                (MissCause::Capacity, 1),
                (MissCause::Conflict, 2),
                (MissCause::Invalidated, 1),
            ],
        );
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut buf = ReuseBuffer::new(CrbConfig {
                entries: 2,
                instances: 2,
                input_bank: 8,
                output_bank: 8,
                replacement: Replacement::Random,
                nonuniform: None,
            });
            let r = RegionId(0);
            for v in 0..10 {
                buf.record(r, inst(v, v, false));
            }
            (0..10)
                .map(|v| lookup_with(&mut buf, r, v).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}

//! Streaming determinism fingerprints.
//!
//! A fingerprint is an incremental FNV-1a hash folded over the
//! complete simulated state — architectural (emulator memory, call
//! stack, register files) plus microarchitectural (pipeline scoreboard,
//! caches, BTB, reuse buffer) — every `window` cycles. The running
//! hash never resets, so the value sealed at each window boundary
//! *chains*: two runs agree on window `i` only if they agreed on every
//! window before it, which is what lets [`ccr_analyze`]'s digest
//! comparison bisect a divergence to the first bad window.
//!
//! The fold definition is fixed by [`Fold::push`]: starting from the
//! FNV-1a 64-bit offset basis, each state word `w` updates the hash as
//! `h = (h ^ w) * FNV_PRIME (mod 2^64)`. Component `fold_state`
//! methods define the word streams; changing any of them changes every
//! fingerprint and requires regenerating the committed goldens.

/// FNV-1a 64-bit offset basis (the hash of an empty stream).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Default fingerprint window in cycles.
pub const DEFAULT_FINGERPRINT_WINDOW: u64 = 65_536;

/// Incremental FNV-1a over a stream of `u64` words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fold(pub u64);

impl Fold {
    /// A fold of the empty stream.
    pub fn new() -> Fold {
        Fold(FNV_OFFSET)
    }

    /// Absorbs one word.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(FNV_PRIME);
    }
}

impl Default for Fold {
    fn default() -> Fold {
        Fold::new()
    }
}

/// The hash chain value sealed at one window boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowDigest {
    /// Zero-based window index.
    pub index: u64,
    /// The cycle boundary the window was sealed at: `(index + 1) *
    /// window`. Run-invariant: boundaries depend only on the window
    /// size, never on when the observer happened to look.
    pub cycle: u64,
    /// Running chain hash after folding the full state at this
    /// boundary.
    pub hash: u64,
}

/// The per-run fingerprint stream: a running [`Fold`] plus the chain
/// of sealed [`WindowDigest`]s.
///
/// Drive it with [`FingerprintStream::observe`] after every simulated
/// step; it folds the state once per crossed window boundary (state is
/// observed at the first step on or past the boundary, which both a
/// cold run and a replay reach at the same dynamic instruction, so the
/// chains match bit for bit). Seal the run with
/// [`FingerprintStream::finalize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FingerprintStream {
    window: u64,
    next_boundary: u64,
    fold: Fold,
    windows: Vec<WindowDigest>,
}

impl FingerprintStream {
    /// Creates a stream sealing a window every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(window: u64) -> FingerprintStream {
        assert!(window > 0, "fingerprint window must be nonzero");
        FingerprintStream {
            window,
            next_boundary: window,
            fold: Fold::new(),
            windows: Vec::new(),
        }
    }

    /// Rebuilds a mid-run stream from snapshot state.
    ///
    /// # Errors
    ///
    /// Returns a one-line description when the window is zero or the
    /// digest chain is not the contiguous prefix a real run produces.
    pub fn restore(
        window: u64,
        hash: u64,
        windows: Vec<WindowDigest>,
    ) -> Result<FingerprintStream, String> {
        if window == 0 {
            return Err("fingerprint window must be nonzero".to_string());
        }
        for (i, d) in windows.iter().enumerate() {
            let expect_cycle = (i as u64 + 1) * window;
            if d.index != i as u64 || d.cycle != expect_cycle {
                return Err(format!(
                    "fingerprint window {i} has index {} cycle {}, expected index {i} cycle {expect_cycle}",
                    d.index, d.cycle
                ));
            }
        }
        if let Some(last) = windows.last() {
            if last.hash != hash {
                return Err(format!(
                    "fingerprint hash {:016x} does not match last window {:016x}",
                    hash, last.hash
                ));
            }
        }
        Ok(FingerprintStream {
            window,
            next_boundary: (windows.len() as u64 + 1) * window,
            fold: Fold(hash),
            windows,
        })
    }

    /// The window size in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The running chain hash (the last sealed value, or the FNV
    /// offset basis before the first window).
    pub fn hash(&self) -> u64 {
        self.fold.0
    }

    /// The sealed window chain so far.
    pub fn windows(&self) -> &[WindowDigest] {
        &self.windows
    }

    /// True when `cycle` has reached the next unsealed boundary —
    /// cheap pre-check so callers skip the fold closure entirely on
    /// the (vastly common) non-boundary step.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_boundary
    }

    /// Seals every window boundary at or below `cycle`: for each one,
    /// `fold_state` is invoked to push the full state word stream into
    /// the running fold, and the resulting chain value is recorded.
    pub fn observe(&mut self, cycle: u64, mut fold_state: impl FnMut(&mut dyn FnMut(u64))) {
        while cycle >= self.next_boundary {
            let boundary = self.next_boundary;
            let mut fold = self.fold;
            fold_state(&mut |w| fold.push(w));
            self.fold = fold;
            self.windows.push(WindowDigest {
                index: self.windows.len() as u64,
                cycle: boundary,
                hash: fold.0,
            });
            self.next_boundary += self.window;
        }
    }

    /// Folds the final state once (no window is sealed — the run ended
    /// between boundaries) and returns the final chain hash.
    pub fn finalize(&mut self, fold_state: impl FnOnce(&mut dyn FnMut(u64))) -> u64 {
        let mut fold = self.fold;
        fold_state(&mut |w| fold.push(w));
        self.fold = fold;
        self.fold.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_reference_fnv1a() {
        let mut f = Fold::new();
        assert_eq!(f.0, FNV_OFFSET);
        f.push(0);
        assert_eq!(f.0, FNV_OFFSET.wrapping_mul(FNV_PRIME));
        let mut g = Fold::new();
        for w in [1u64, u64::MAX, 42] {
            g.push(w);
        }
        let mut h = FNV_OFFSET;
        for w in [1u64, u64::MAX, 42] {
            h = (h ^ w).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(g.0, h);
    }

    #[test]
    fn boundaries_are_run_invariant() {
        // Two observers with different step granularities seal the
        // same chain as long as they see the same states at each
        // boundary crossing.
        let state = |push: &mut dyn FnMut(u64)| push(7);
        let mut a = FingerprintStream::new(10);
        for c in 0..35 {
            a.observe(c, state);
        }
        let mut b = FingerprintStream::new(10);
        b.observe(34, state); // jumps three boundaries at once
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.windows().len(), 3);
        assert_eq!(a.windows()[2].cycle, 30);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn chain_detects_any_prefix_change() {
        let mut a = FingerprintStream::new(5);
        let mut b = FingerprintStream::new(5);
        a.observe(5, |push| push(1));
        b.observe(5, |push| push(2));
        a.observe(10, |push| push(3));
        b.observe(10, |push| push(3));
        // Same state in window 1, but the chains differ forever after
        // the window-0 divergence.
        assert_ne!(a.windows()[1].hash, b.windows()[1].hash);
    }

    #[test]
    fn restore_resumes_the_chain() {
        let mut cold = FingerprintStream::new(8);
        cold.observe(8, |push| push(11));
        let resumed = FingerprintStream::restore(8, cold.hash(), cold.windows().to_vec()).unwrap();
        let mut cold2 = cold.clone();
        let mut warm = resumed;
        cold2.observe(16, |push| push(13));
        warm.observe(16, |push| push(13));
        assert_eq!(cold2.windows(), warm.windows());
        assert_eq!(
            cold2.finalize(|push| push(99)),
            warm.finalize(|push| push(99))
        );
    }

    #[test]
    fn restore_rejects_inconsistent_chains() {
        let bad = vec![WindowDigest {
            index: 0,
            cycle: 9,
            hash: 1,
        }];
        let err = FingerprintStream::restore(8, 1, bad).unwrap_err();
        assert!(err.contains("expected index 0 cycle 8"), "{err}");
        let err = FingerprintStream::restore(0, FNV_OFFSET, Vec::new()).unwrap_err();
        assert!(err.contains("nonzero"), "{err}");
        let chain = vec![WindowDigest {
            index: 0,
            cycle: 8,
            hash: 5,
        }];
        let err = FingerprintStream::restore(8, 6, chain).unwrap_err();
        assert!(err.contains("does not match last window"), "{err}");
    }

    #[test]
    fn finalize_differs_from_last_window() {
        let mut s = FingerprintStream::new(4);
        s.observe(4, |push| push(1));
        let sealed = s.hash();
        let fin = s.finalize(|push| push(1));
        assert_ne!(sealed, fin, "final fold must extend the chain");
    }
}

//! Versioned simulation snapshots.
//!
//! A [`SimSnapshot`] is the complete state of a mid-run simulation as
//! plain data: emulator architectural state ([`ccr_profile::EmuSnapshot`]),
//! pipeline timing state ([`PipelineSnapshot`]), reuse-buffer contents
//! ([`CrbSnapshot`], when the CCR hardware is present), and the
//! fingerprint chain ([`FingerprintSnapshot`]). Restoring one into a
//! [`crate::session::SimSession`] and running to completion produces
//! **bit-identical** [`crate::SimStats`] and an identical fingerprint
//! chain to the uninterrupted run.
//!
//! # On-disk format
//!
//! Line-tolerant JSONL, following the run-store conventions: the first
//! line is a `{"snap_v":1,...}` header, each following line is one
//! `{"kind":...}` record, and the final `{"kind":"end","lines":N}`
//! trailer detects truncation. Lines with an unknown `kind` are
//! skipped, so additive extensions never break old readers; an unknown
//! `snap_v` is a hard, one-line error naming the known versions.

use std::collections::HashMap;
use std::path::Path;

use ccr_ir::RegionId;
use ccr_profile::{EmuFrameSnapshot, EmuMemoSnapshot, EmuSnapshot, MissCause};
use ccr_telemetry::value::{self, Value};
use ccr_telemetry::JsonWriter;

use crate::fingerprint::WindowDigest;
use crate::stats::{CrbStats, RegionDynStats, SimStats};

/// Snapshot format version. Bumped only on incompatible changes;
/// additive fields ride under the same version.
pub const SNAP_VERSION: u64 = 1;

/// One cache's snapshot state: the tag array (`None` = invalid line)
/// plus hit/miss counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Tag per line, `None` for invalid lines.
    pub tags: Vec<Option<u64>>,
    /// Hits so far.
    pub hits: u64,
    /// Misses so far.
    pub misses: u64,
}

/// BTB snapshot state: 2-bit counters plus outcome counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BtbSnapshot {
    /// Saturating counters, one per entry, each in `0..=3`.
    pub counters: Vec<u8>,
    /// Correct predictions so far.
    pub correct: u64,
    /// Mispredictions so far.
    pub mispredicts: u64,
}

/// One pipeline call frame: the register-ready scoreboard and the
/// caller's return registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineFrameSnapshot {
    /// Ready-at cycle per register index.
    pub ready: Vec<u64>,
    /// Return registers to make ready when the frame pops.
    pub ret_regs: Vec<u32>,
}

/// Complete timing-pipeline state (unprofiled runs only).
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineSnapshot {
    /// Cycle of the most recent issue.
    pub last_issue: u64,
    /// Cycle the current issue group belongs to.
    pub slot_cycle: u64,
    /// Issue slots consumed in `slot_cycle`.
    pub slots_used: u32,
    /// Functional units consumed in `slot_cycle`:
    /// `[int, mem, fp, branch]`.
    pub fu_used: [u32; 4],
    /// Earliest cycle the fetch stream can deliver.
    pub fetch_ready: u64,
    /// I-cache line of the last fetch, if the stream is sequential.
    pub last_fetch_line: Option<u64>,
    /// Call-frame scoreboards, outermost first.
    pub frames: Vec<PipelineFrameSnapshot>,
    /// A call issued but not yet entered: `(params_ready_at,
    /// return_registers)`.
    pub pending_call: Option<(u64, Vec<u32>)>,
    /// High-water mark of scheduled completion cycles.
    pub horizon: u64,
    /// Mid-run statistics accumulated so far.
    pub stats: SimStats,
    /// Instruction cache state.
    pub icache: CacheSnapshot,
    /// Data cache state.
    pub dcache: CacheSnapshot,
    /// Branch predictor state.
    pub btb: BtbSnapshot,
}

/// One recorded computation instance of a [`CrbEntrySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrbInstanceSnapshot {
    /// Valid bit.
    pub valid: bool,
    /// Input bank: `(register, value bit pattern)` pairs.
    pub inputs: Vec<(u32, u64)>,
    /// Input-bank fingerprint (the buffer's internal match filter).
    pub fp: u64,
    /// Output bank: `(register, value bit pattern)` pairs.
    pub outputs: Vec<(u32, u64)>,
    /// Memory-valid flag: the body loaded from memory.
    pub accesses_memory: bool,
    /// Dynamic instructions a hit on this instance skips.
    pub body_instrs: u64,
    /// LRU timestamp of the last hit or record.
    pub last_use: u64,
    /// FIFO timestamp of insertion.
    pub inserted: u64,
}

/// One ghost (recently evicted instance) of a [`CrbEntrySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrbGhostSnapshot {
    /// The evicted instance's input bank.
    pub inputs: Vec<(u32, u64)>,
    /// The evicted instance's input fingerprint.
    pub fp: u64,
    /// Eviction cause, as an index into [`MissCause::ALL`].
    pub cause: u64,
}

/// One direct-mapped CRB entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrbEntrySnapshot {
    /// Owning region, if any.
    pub tag: Option<u32>,
    /// Instance slots (geometry fixed by the buffer config).
    pub instances: Vec<CrbInstanceSnapshot>,
    /// Ghost list, oldest first.
    pub ghosts: Vec<CrbGhostSnapshot>,
}

/// Complete reuse-buffer state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrbSnapshot {
    /// LRU/FIFO clock.
    pub clock: u64,
    /// Replacement RNG state (xorshift64*).
    pub rng: u64,
    /// Buffer-level counters.
    pub stats: CrbStats,
    /// Cause of the most recent miss, as an index into
    /// [`MissCause::ALL`].
    pub last_miss_cause: Option<u64>,
    /// Regions that ever recorded an instance, sorted.
    pub ever_recorded: Vec<u32>,
    /// Entries in index order.
    pub entries: Vec<CrbEntrySnapshot>,
}

/// Mid-run fingerprint-chain state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FingerprintSnapshot {
    /// Window size in cycles.
    pub window: u64,
    /// Running chain hash.
    pub hash: u64,
    /// Sealed windows so far.
    pub windows: Vec<WindowDigest>,
}

/// The complete state of a mid-run simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSnapshot {
    /// Workload name the snapshot was taken from (preflight check on
    /// restore; empty = unknown).
    pub workload: String,
    /// Config hash of the producing run (preflight check on restore;
    /// empty = unknown).
    pub config_hash: String,
    /// Simulated cycle at capture.
    pub cycle: u64,
    /// Emulator architectural state.
    pub emu: EmuSnapshot,
    /// Pipeline timing state.
    pub pipeline: PipelineSnapshot,
    /// Reuse-buffer state (`None` = baseline machine without CCR
    /// hardware).
    pub crb: Option<CrbSnapshot>,
    /// Fingerprint chain state.
    pub fingerprint: FingerprintSnapshot,
}

/// Maps a miss cause to its stable index in [`MissCause::ALL`].
pub(crate) fn cause_index(c: MissCause) -> u64 {
    MissCause::ALL
        .iter()
        .position(|x| *x == c)
        .expect("every cause is in ALL") as u64
}

/// Inverse of [`cause_index`].
pub(crate) fn cause_from_index(i: u64) -> Result<MissCause, String> {
    usize::try_from(i)
        .ok()
        .and_then(|i| MissCause::ALL.get(i).copied())
        .ok_or_else(|| {
            format!(
                "miss-cause index {i} out of range (0..={})",
                MissCause::ALL.len() - 1
            )
        })
}

fn write_pairs(w: &mut JsonWriter, pairs: &[(u32, u64)]) {
    w.arr_begin();
    for (r, v) in pairs {
        w.u64_val(u64::from(*r));
        w.u64_val(*v);
    }
    w.arr_end();
}

fn write_cache(w: &mut JsonWriter, c: &CacheSnapshot) {
    w.obj_begin();
    w.key("tags").arr_begin();
    for t in &c.tags {
        match t {
            None => w.null_val(),
            Some(t) => w.u64_val(*t),
        };
    }
    w.arr_end();
    w.key("hits").u64_val(c.hits);
    w.key("misses").u64_val(c.misses);
    w.obj_end();
}

fn write_crb_stats(w: &mut JsonWriter, s: &CrbStats) {
    w.obj_begin();
    w.key("lookups").u64_val(s.lookups);
    w.key("hits").u64_val(s.hits);
    w.key("misses").u64_val(s.misses);
    w.key("miss_cold").u64_val(s.miss_cold);
    w.key("miss_mismatch").u64_val(s.miss_mismatch);
    w.key("miss_capacity").u64_val(s.miss_capacity);
    w.key("miss_conflict").u64_val(s.miss_conflict);
    w.key("miss_invalidated").u64_val(s.miss_invalidated);
    w.key("records").u64_val(s.records);
    w.key("invalidations").u64_val(s.invalidations);
    w.key("entry_conflicts").u64_val(s.entry_conflicts);
    w.obj_end();
}

/// Serializes mid-run [`SimStats`] as a JSON object (the per-region
/// map in sorted key order; `attribution` is excluded per the
/// snapshot contract). Also reused by experiment checkpoints.
pub fn write_sim_stats(w: &mut JsonWriter, s: &SimStats) {
    w.obj_begin();
    w.key("cycles").u64_val(s.cycles);
    w.key("dyn_instrs").u64_val(s.dyn_instrs);
    w.key("skipped_instrs").u64_val(s.skipped_instrs);
    w.key("icache_hits").u64_val(s.icache_hits);
    w.key("icache_misses").u64_val(s.icache_misses);
    w.key("dcache_hits").u64_val(s.dcache_hits);
    w.key("dcache_misses").u64_val(s.dcache_misses);
    w.key("branch_correct").u64_val(s.branch_correct);
    w.key("branch_mispredicts").u64_val(s.branch_mispredicts);
    w.key("reuse_hits").u64_val(s.reuse_hits);
    w.key("reuse_misses").u64_val(s.reuse_misses);
    w.key("crb");
    write_crb_stats(w, &s.crb);
    let mut regions: Vec<(&RegionId, &RegionDynStats)> = s.regions.iter().collect();
    regions.sort_by_key(|(r, _)| r.index());
    w.key("regions").arr_begin();
    for (r, rs) in regions {
        w.obj_begin();
        w.key("region").u64_val(r.index() as u64);
        w.key("hits").u64_val(rs.hits);
        w.key("misses").u64_val(rs.misses);
        w.key("miss_cold").u64_val(rs.miss_cold);
        w.key("miss_mismatch").u64_val(rs.miss_mismatch);
        w.key("miss_capacity").u64_val(rs.miss_capacity);
        w.key("miss_conflict").u64_val(rs.miss_conflict);
        w.key("miss_invalidated").u64_val(rs.miss_invalidated);
        w.key("skipped_instrs").u64_val(rs.skipped_instrs);
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
}

fn emu_line(e: &EmuSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("emu");
    w.key("dyn_instrs").u64_val(e.dyn_instrs);
    w.key("skipped_instrs").u64_val(e.skipped_instrs);
    w.key("reuse_hits").u64_val(e.reuse_hits);
    w.key("reuse_misses").u64_val(e.reuse_misses);
    w.key("memory").arr_begin();
    for obj in &e.memory {
        w.arr_begin();
        for word in obj {
            w.u64_val(*word);
        }
        w.arr_end();
    }
    w.arr_end();
    w.key("frames").arr_begin();
    for f in &e.frames {
        w.obj_begin();
        w.key("func").u64_val(u64::from(f.func));
        w.key("block").u64_val(u64::from(f.block));
        w.key("pos").u64_val(f.pos);
        w.key("regs").arr_begin();
        for r in &f.regs {
            w.u64_val(*r);
        }
        w.arr_end();
        w.obj_end();
    }
    w.arr_end();
    w.key("memo");
    match &e.memo {
        None => {
            w.null_val();
        }
        Some(m) => {
            w.obj_begin();
            w.key("depth").u64_val(m.depth);
            w.key("region").u64_val(u64::from(m.region));
            w.key("inputs");
            write_pairs(&mut w, &m.inputs);
            w.key("outputs").arr_begin();
            for r in &m.outputs {
                w.u64_val(u64::from(*r));
            }
            w.arr_end();
            w.key("written").arr_begin();
            for r in &m.written {
                w.u64_val(u64::from(*r));
            }
            w.arr_end();
            w.key("accesses_memory").bool_val(m.accesses_memory);
            w.key("body_instrs").u64_val(m.body_instrs);
            w.obj_end();
        }
    }
    w.obj_end();
    w.finish()
}

fn pipeline_line(p: &PipelineSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("pipeline");
    w.key("last_issue").u64_val(p.last_issue);
    w.key("slot_cycle").u64_val(p.slot_cycle);
    w.key("slots_used").u64_val(u64::from(p.slots_used));
    w.key("fu_used").arr_begin();
    for u in p.fu_used {
        w.u64_val(u64::from(u));
    }
    w.arr_end();
    w.key("fetch_ready").u64_val(p.fetch_ready);
    w.key("last_fetch_line");
    match p.last_fetch_line {
        None => {
            w.null_val();
        }
        Some(line) => {
            w.u64_val(line);
        }
    }
    w.key("horizon").u64_val(p.horizon);
    w.key("frames").arr_begin();
    for f in &p.frames {
        w.obj_begin();
        w.key("ready").arr_begin();
        for r in &f.ready {
            w.u64_val(*r);
        }
        w.arr_end();
        w.key("ret_regs").arr_begin();
        for r in &f.ret_regs {
            w.u64_val(u64::from(*r));
        }
        w.arr_end();
        w.obj_end();
    }
    w.arr_end();
    w.key("pending_call");
    match &p.pending_call {
        None => {
            w.null_val();
        }
        Some((at, regs)) => {
            w.obj_begin();
            w.key("ready_at").u64_val(*at);
            w.key("ret_regs").arr_begin();
            for r in regs {
                w.u64_val(u64::from(*r));
            }
            w.arr_end();
            w.obj_end();
        }
    }
    w.key("icache");
    write_cache(&mut w, &p.icache);
    w.key("dcache");
    write_cache(&mut w, &p.dcache);
    w.key("btb").obj_begin();
    w.key("counters").arr_begin();
    for c in &p.btb.counters {
        w.u64_val(u64::from(*c));
    }
    w.arr_end();
    w.key("correct").u64_val(p.btb.correct);
    w.key("mispredicts").u64_val(p.btb.mispredicts);
    w.obj_end();
    w.key("stats");
    write_sim_stats(&mut w, &p.stats);
    w.obj_end();
    w.finish()
}

fn crb_line(c: &CrbSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("crb");
    w.key("clock").u64_val(c.clock);
    w.key("rng").u64_val(c.rng);
    w.key("last_miss_cause");
    match c.last_miss_cause {
        None => {
            w.null_val();
        }
        Some(i) => {
            w.u64_val(i);
        }
    }
    w.key("ever_recorded").arr_begin();
    for r in &c.ever_recorded {
        w.u64_val(u64::from(*r));
    }
    w.arr_end();
    w.key("stats");
    write_crb_stats(&mut w, &c.stats);
    w.key("entries").arr_begin();
    for e in &c.entries {
        w.obj_begin();
        w.key("tag");
        match e.tag {
            None => {
                w.null_val();
            }
            Some(t) => {
                w.u64_val(u64::from(t));
            }
        }
        w.key("instances").arr_begin();
        for i in &e.instances {
            w.obj_begin();
            w.key("valid").bool_val(i.valid);
            w.key("inputs");
            write_pairs(&mut w, &i.inputs);
            w.key("fp").u64_val(i.fp);
            w.key("outputs");
            write_pairs(&mut w, &i.outputs);
            w.key("accesses_memory").bool_val(i.accesses_memory);
            w.key("body_instrs").u64_val(i.body_instrs);
            w.key("last_use").u64_val(i.last_use);
            w.key("inserted").u64_val(i.inserted);
            w.obj_end();
        }
        w.arr_end();
        w.key("ghosts").arr_begin();
        for g in &e.ghosts {
            w.obj_begin();
            w.key("inputs");
            write_pairs(&mut w, &g.inputs);
            w.key("fp").u64_val(g.fp);
            w.key("cause").u64_val(g.cause);
            w.obj_end();
        }
        w.arr_end();
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
    w.finish()
}

fn fingerprint_line(f: &FingerprintSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("fingerprint");
    w.key("window").u64_val(f.window);
    w.key("hash").u64_val(f.hash);
    w.key("windows").arr_begin();
    for d in &f.windows {
        w.obj_begin();
        w.key("index").u64_val(d.index);
        w.key("cycle").u64_val(d.cycle);
        w.key("hash").u64_val(d.hash);
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
    w.finish()
}

/// Serializes a snapshot as versioned JSONL (header, one record per
/// section, `end` trailer).
pub fn write_snapshot(snap: &SimSnapshot) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("snap_v").u64_val(SNAP_VERSION);
    w.key("workload").str_val(&snap.workload);
    w.key("config_hash").str_val(&snap.config_hash);
    w.key("cycle").u64_val(snap.cycle);
    w.obj_end();
    lines.push(w.finish());
    lines.push(emu_line(&snap.emu));
    lines.push(pipeline_line(&snap.pipeline));
    if let Some(crb) = &snap.crb {
        lines.push(crb_line(crb));
    }
    lines.push(fingerprint_line(&snap.fingerprint));
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("kind").str_val("end");
    w.key("lines").u64_val(lines.len() as u64);
    w.obj_end();
    lines.push(w.finish());
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn req<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

fn req_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    req(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not an unsigned integer"))
}

fn req_u32(v: &Value, key: &str, ctx: &str) -> Result<u32, String> {
    u32::try_from(req_u64(v, key, ctx)?).map_err(|_| format!("{ctx}: `{key}` exceeds u32"))
}

fn req_bool(v: &Value, key: &str, ctx: &str) -> Result<bool, String> {
    req(v, key, ctx)?
        .as_bool()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a boolean"))
}

fn req_arr<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a [Value], String> {
    req(v, key, ctx)?
        .as_arr()
        .ok_or_else(|| format!("{ctx}: `{key}` is not an array"))
}

fn elem_u64(v: &Value, ctx: &str, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{ctx}: {what} is not an unsigned integer"))
}

fn elem_u32(v: &Value, ctx: &str, what: &str) -> Result<u32, String> {
    u32::try_from(elem_u64(v, ctx, what)?).map_err(|_| format!("{ctx}: {what} exceeds u32"))
}

/// `null` or missing maps to `None`; anything else must be a u64.
fn opt_u64(v: &Value, key: &str, ctx: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{ctx}: `{key}` is not null or an unsigned integer")),
    }
}

fn parse_pairs(v: &Value, key: &str, ctx: &str) -> Result<Vec<(u32, u64)>, String> {
    let arr = req_arr(v, key, ctx)?;
    if arr.len() % 2 != 0 {
        return Err(format!("{ctx}: `{key}` has odd length {}", arr.len()));
    }
    arr.chunks_exact(2)
        .map(|c| {
            Ok((
                elem_u32(&c[0], ctx, &format!("`{key}` register"))?,
                elem_u64(&c[1], ctx, &format!("`{key}` value"))?,
            ))
        })
        .collect()
}

fn parse_u64_list(v: &Value, key: &str, ctx: &str) -> Result<Vec<u64>, String> {
    req_arr(v, key, ctx)?
        .iter()
        .map(|x| elem_u64(x, ctx, &format!("`{key}` element")))
        .collect()
}

fn parse_u32_list(v: &Value, key: &str, ctx: &str) -> Result<Vec<u32>, String> {
    req_arr(v, key, ctx)?
        .iter()
        .map(|x| elem_u32(x, ctx, &format!("`{key}` element")))
        .collect()
}

fn parse_emu(v: &Value, ctx: &str) -> Result<EmuSnapshot, String> {
    let memory = req_arr(v, "memory", ctx)?
        .iter()
        .map(|obj| {
            obj.as_arr()
                .ok_or_else(|| format!("{ctx}: memory object is not an array"))?
                .iter()
                .map(|x| elem_u64(x, ctx, "memory word"))
                .collect()
        })
        .collect::<Result<Vec<Vec<u64>>, String>>()?;
    let frames = req_arr(v, "frames", ctx)?
        .iter()
        .map(|f| {
            Ok(EmuFrameSnapshot {
                func: req_u32(f, "func", ctx)?,
                block: req_u32(f, "block", ctx)?,
                pos: req_u64(f, "pos", ctx)?,
                regs: parse_u64_list(f, "regs", ctx)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let memo = match v.get("memo") {
        None | Some(Value::Null) => None,
        Some(m) => Some(EmuMemoSnapshot {
            depth: req_u64(m, "depth", ctx)?,
            region: req_u32(m, "region", ctx)?,
            inputs: parse_pairs(m, "inputs", ctx)?,
            outputs: parse_u32_list(m, "outputs", ctx)?,
            written: parse_u32_list(m, "written", ctx)?,
            accesses_memory: req_bool(m, "accesses_memory", ctx)?,
            body_instrs: req_u64(m, "body_instrs", ctx)?,
        }),
    };
    Ok(EmuSnapshot {
        memory,
        frames,
        dyn_instrs: req_u64(v, "dyn_instrs", ctx)?,
        skipped_instrs: req_u64(v, "skipped_instrs", ctx)?,
        reuse_hits: req_u64(v, "reuse_hits", ctx)?,
        reuse_misses: req_u64(v, "reuse_misses", ctx)?,
        memo,
    })
}

fn parse_cache(v: &Value, key: &str, ctx: &str) -> Result<CacheSnapshot, String> {
    let c = req(v, key, ctx)?;
    let tags = req_arr(c, "tags", ctx)?
        .iter()
        .map(|t| match t {
            Value::Null => Ok(None),
            t => elem_u64(t, ctx, "cache tag").map(Some),
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CacheSnapshot {
        tags,
        hits: req_u64(c, "hits", ctx)?,
        misses: req_u64(c, "misses", ctx)?,
    })
}

fn parse_crb_stats(v: &Value) -> CrbStats {
    CrbStats {
        lookups: v.u64_field("lookups"),
        hits: v.u64_field("hits"),
        misses: v.u64_field("misses"),
        miss_cold: v.u64_field("miss_cold"),
        miss_mismatch: v.u64_field("miss_mismatch"),
        miss_capacity: v.u64_field("miss_capacity"),
        miss_conflict: v.u64_field("miss_conflict"),
        miss_invalidated: v.u64_field("miss_invalidated"),
        records: v.u64_field("records"),
        invalidations: v.u64_field("invalidations"),
        entry_conflicts: v.u64_field("entry_conflicts"),
    }
}

/// Parses a [`SimStats`] object written by [`write_sim_stats`].
/// Missing counters read as zero (additive tolerance, matching the
/// run-store conventions); `attribution` is always `None`.
///
/// # Errors
///
/// Returns a `{ctx}:`-prefixed one-line description on a structurally
/// invalid region row.
pub fn parse_sim_stats(v: &Value, ctx: &str) -> Result<SimStats, String> {
    let mut regions = HashMap::new();
    if let Some(arr) = v.get("regions").and_then(Value::as_arr) {
        for r in arr {
            let id = req_u32(r, "region", ctx)?;
            regions.insert(
                RegionId(id),
                RegionDynStats {
                    hits: r.u64_field("hits"),
                    misses: r.u64_field("misses"),
                    miss_cold: r.u64_field("miss_cold"),
                    miss_mismatch: r.u64_field("miss_mismatch"),
                    miss_capacity: r.u64_field("miss_capacity"),
                    miss_conflict: r.u64_field("miss_conflict"),
                    miss_invalidated: r.u64_field("miss_invalidated"),
                    skipped_instrs: r.u64_field("skipped_instrs"),
                },
            );
        }
    }
    Ok(SimStats {
        cycles: v.u64_field("cycles"),
        dyn_instrs: v.u64_field("dyn_instrs"),
        skipped_instrs: v.u64_field("skipped_instrs"),
        icache_hits: v.u64_field("icache_hits"),
        icache_misses: v.u64_field("icache_misses"),
        dcache_hits: v.u64_field("dcache_hits"),
        dcache_misses: v.u64_field("dcache_misses"),
        branch_correct: v.u64_field("branch_correct"),
        branch_mispredicts: v.u64_field("branch_mispredicts"),
        reuse_hits: v.u64_field("reuse_hits"),
        reuse_misses: v.u64_field("reuse_misses"),
        crb: v.get("crb").map(parse_crb_stats).unwrap_or_default(),
        regions,
        attribution: None,
    })
}

fn parse_pipeline(v: &Value, ctx: &str) -> Result<PipelineSnapshot, String> {
    let fu = parse_u64_list(v, "fu_used", ctx)?;
    if fu.len() != 4 {
        return Err(format!("{ctx}: `fu_used` has {} entries, want 4", fu.len()));
    }
    let mut fu_used = [0u32; 4];
    for (slot, x) in fu_used.iter_mut().zip(&fu) {
        *slot = u32::try_from(*x).map_err(|_| format!("{ctx}: `fu_used` exceeds u32"))?;
    }
    let frames = req_arr(v, "frames", ctx)?
        .iter()
        .map(|f| {
            Ok(PipelineFrameSnapshot {
                ready: parse_u64_list(f, "ready", ctx)?,
                ret_regs: parse_u32_list(f, "ret_regs", ctx)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pending_call = match v.get("pending_call") {
        None | Some(Value::Null) => None,
        Some(pc) => Some((
            req_u64(pc, "ready_at", ctx)?,
            parse_u32_list(pc, "ret_regs", ctx)?,
        )),
    };
    let btb = req(v, "btb", ctx)?;
    let counters = req_arr(btb, "counters", ctx)?
        .iter()
        .map(|c| {
            u8::try_from(elem_u64(c, ctx, "btb counter")?)
                .map_err(|_| format!("{ctx}: btb counter exceeds u8"))
        })
        .collect::<Result<Vec<u8>, String>>()?;
    Ok(PipelineSnapshot {
        last_issue: req_u64(v, "last_issue", ctx)?,
        slot_cycle: req_u64(v, "slot_cycle", ctx)?,
        slots_used: req_u32(v, "slots_used", ctx)?,
        fu_used,
        fetch_ready: req_u64(v, "fetch_ready", ctx)?,
        last_fetch_line: opt_u64(v, "last_fetch_line", ctx)?,
        frames,
        pending_call,
        horizon: req_u64(v, "horizon", ctx)?,
        stats: parse_sim_stats(req(v, "stats", ctx)?, ctx)?,
        icache: parse_cache(v, "icache", ctx)?,
        dcache: parse_cache(v, "dcache", ctx)?,
        btb: BtbSnapshot {
            counters,
            correct: req_u64(btb, "correct", ctx)?,
            mispredicts: req_u64(btb, "mispredicts", ctx)?,
        },
    })
}

fn parse_crb(v: &Value, ctx: &str) -> Result<CrbSnapshot, String> {
    let entries = req_arr(v, "entries", ctx)?
        .iter()
        .map(|e| {
            let instances = req_arr(e, "instances", ctx)?
                .iter()
                .map(|i| {
                    Ok(CrbInstanceSnapshot {
                        valid: req_bool(i, "valid", ctx)?,
                        inputs: parse_pairs(i, "inputs", ctx)?,
                        fp: req_u64(i, "fp", ctx)?,
                        outputs: parse_pairs(i, "outputs", ctx)?,
                        accesses_memory: req_bool(i, "accesses_memory", ctx)?,
                        body_instrs: req_u64(i, "body_instrs", ctx)?,
                        last_use: req_u64(i, "last_use", ctx)?,
                        inserted: req_u64(i, "inserted", ctx)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let ghosts = req_arr(e, "ghosts", ctx)?
                .iter()
                .map(|g| {
                    Ok(CrbGhostSnapshot {
                        inputs: parse_pairs(g, "inputs", ctx)?,
                        fp: req_u64(g, "fp", ctx)?,
                        cause: req_u64(g, "cause", ctx)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(CrbEntrySnapshot {
                tag: opt_u64(e, "tag", ctx)?
                    .map(|t| u32::try_from(t).map_err(|_| format!("{ctx}: `tag` exceeds u32")))
                    .transpose()?,
                instances,
                ghosts,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CrbSnapshot {
        clock: req_u64(v, "clock", ctx)?,
        rng: req_u64(v, "rng", ctx)?,
        stats: parse_crb_stats(req(v, "stats", ctx)?),
        last_miss_cause: opt_u64(v, "last_miss_cause", ctx)?,
        ever_recorded: parse_u32_list(v, "ever_recorded", ctx)?,
        entries,
    })
}

fn parse_fingerprint(v: &Value, ctx: &str) -> Result<FingerprintSnapshot, String> {
    let windows = req_arr(v, "windows", ctx)?
        .iter()
        .map(|d| {
            Ok(WindowDigest {
                index: req_u64(d, "index", ctx)?,
                cycle: req_u64(d, "cycle", ctx)?,
                hash: req_u64(d, "hash", ctx)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FingerprintSnapshot {
        window: req_u64(v, "window", ctx)?,
        hash: req_u64(v, "hash", ctx)?,
        windows,
    })
}

/// Parses a snapshot serialized by [`write_snapshot`]. `path` labels
/// error messages only.
///
/// # Errors
///
/// Returns a one-line `{path}[:{line}]: ...` description for an
/// unknown `snap_v`, a malformed line, a missing section, or a
/// missing/mismatched `end` trailer (truncation).
pub fn parse_snapshot(path: &str, text: &str) -> Result<SimSnapshot, String> {
    let mut header: Option<(String, String, u64)> = None;
    let mut emu = None;
    let mut pipeline = None;
    let mut crb = None;
    let mut fingerprint = None;
    let mut seen = 0u64;
    let mut ended = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let ctx = format!("{path}:{lineno}");
        if ended {
            return Err(format!("{ctx}: data after the end record"));
        }
        let v = value::parse(line).map_err(|e| format!("{ctx}: {}", e.message))?;
        if header.is_none() {
            let ver = v
                .get("snap_v")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ctx}: missing snap_v header"))?;
            if ver != SNAP_VERSION {
                return Err(format!(
                    "{ctx}: unknown snap_v {ver} (known: [{SNAP_VERSION}])"
                ));
            }
            header = Some((
                v.str_field("workload").to_string(),
                v.str_field("config_hash").to_string(),
                req_u64(&v, "cycle", &ctx)?,
            ));
            seen += 1;
            continue;
        }
        match v.str_field("kind") {
            "emu" => emu = Some(parse_emu(&v, &ctx)?),
            "pipeline" => pipeline = Some(parse_pipeline(&v, &ctx)?),
            "crb" => crb = Some(parse_crb(&v, &ctx)?),
            "fingerprint" => fingerprint = Some(parse_fingerprint(&v, &ctx)?),
            "end" => {
                let lines = req_u64(&v, "lines", &ctx)?;
                if lines != seen {
                    return Err(format!(
                        "{ctx}: end record says {lines} lines, found {seen}"
                    ));
                }
                ended = true;
                continue;
            }
            // Unknown kinds are additive extensions: skip.
            _ => {}
        }
        seen += 1;
    }
    if !ended {
        return Err(format!("{path}: truncated snapshot (missing end record)"));
    }
    let (workload, config_hash, cycle) = header.ok_or_else(|| format!("{path}: empty snapshot"))?;
    Ok(SimSnapshot {
        workload,
        config_hash,
        cycle,
        emu: emu.ok_or_else(|| format!("{path}: snapshot missing emu record"))?,
        pipeline: pipeline.ok_or_else(|| format!("{path}: snapshot missing pipeline record"))?,
        crb,
        fingerprint: fingerprint
            .ok_or_else(|| format!("{path}: snapshot missing fingerprint record"))?,
    })
}

/// Writes `snap` to `path`.
///
/// # Errors
///
/// Returns a one-line `{path}: {io error}` description.
pub fn save_snapshot(path: &Path, snap: &SimSnapshot) -> Result<(), String> {
    std::fs::write(path, write_snapshot(snap)).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads and parses the snapshot at `path`.
///
/// # Errors
///
/// Returns a one-line description for a missing/unreadable file or any
/// [`parse_snapshot`] failure.
pub fn load_snapshot(path: &Path) -> Result<SimSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_snapshot(&path.display().to_string(), &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimSnapshot {
        let mut stats = SimStats {
            cycles: 1000,
            dyn_instrs: 900,
            skipped_instrs: 50,
            icache_hits: 800,
            icache_misses: 100,
            dcache_hits: 70,
            dcache_misses: 30,
            branch_correct: 60,
            branch_mispredicts: 4,
            reuse_hits: 5,
            reuse_misses: 2,
            crb: CrbStats {
                lookups: 7,
                hits: 5,
                misses: 2,
                miss_cold: 2,
                records: 2,
                ..CrbStats::default()
            },
            ..SimStats::default()
        };
        stats.regions.insert(
            RegionId(3),
            RegionDynStats {
                hits: 5,
                misses: 2,
                miss_cold: 2,
                skipped_instrs: 50,
                ..RegionDynStats::default()
            },
        );
        SimSnapshot {
            workload: "lex".to_string(),
            config_hash: "abc123".to_string(),
            cycle: 1000,
            emu: EmuSnapshot {
                memory: vec![vec![1, 2, u64::MAX], vec![]],
                frames: vec![EmuFrameSnapshot {
                    func: 0,
                    block: 2,
                    pos: 4,
                    regs: vec![17, (-3i64) as u64],
                }],
                dyn_instrs: 900,
                skipped_instrs: 50,
                reuse_hits: 5,
                reuse_misses: 2,
                memo: Some(EmuMemoSnapshot {
                    depth: 0,
                    region: 3,
                    inputs: vec![(1, 17)],
                    outputs: vec![2],
                    written: vec![2, 5],
                    accesses_memory: true,
                    body_instrs: 9,
                }),
            },
            pipeline: PipelineSnapshot {
                last_issue: 999,
                slot_cycle: 999,
                slots_used: 2,
                fu_used: [1, 0, 0, 1],
                fetch_ready: 1001,
                last_fetch_line: Some(42),
                frames: vec![PipelineFrameSnapshot {
                    ready: vec![0, 1000],
                    ret_regs: vec![7],
                }],
                pending_call: Some((1002, vec![1, 2])),
                horizon: 1005,
                stats,
                icache: CacheSnapshot {
                    tags: vec![None, Some(9)],
                    hits: 800,
                    misses: 100,
                },
                dcache: CacheSnapshot {
                    tags: vec![Some(1), None],
                    hits: 70,
                    misses: 30,
                },
                btb: BtbSnapshot {
                    counters: vec![0, 3, 2, 1],
                    correct: 60,
                    mispredicts: 4,
                },
            },
            crb: Some(CrbSnapshot {
                clock: 7,
                rng: 0x9e37_79b9_7f4a_7c15,
                stats: CrbStats {
                    lookups: 7,
                    hits: 5,
                    misses: 2,
                    miss_cold: 2,
                    records: 2,
                    ..CrbStats::default()
                },
                last_miss_cause: Some(0),
                ever_recorded: vec![3],
                entries: vec![CrbEntrySnapshot {
                    tag: Some(3),
                    instances: vec![CrbInstanceSnapshot {
                        valid: true,
                        inputs: vec![(1, 17)],
                        fp: 0xdead,
                        outputs: vec![(2, 34)],
                        accesses_memory: false,
                        body_instrs: 9,
                        last_use: 6,
                        inserted: 2,
                    }],
                    ghosts: vec![CrbGhostSnapshot {
                        inputs: vec![(1, 99)],
                        fp: 0xbeef,
                        cause: 2,
                    }],
                }],
            }),
            fingerprint: FingerprintSnapshot {
                window: 512,
                hash: 0x1234_5678_9abc_def0,
                windows: vec![WindowDigest {
                    index: 0,
                    cycle: 512,
                    hash: 0x1234_5678_9abc_def0,
                }],
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let text = write_snapshot(&snap);
        assert!(text.starts_with(r#"{"snap_v":1"#));
        let back = parse_snapshot("mem", &text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn baseline_snapshot_without_crb_round_trips() {
        let mut snap = sample();
        snap.crb = None;
        let back = parse_snapshot("mem", &write_snapshot(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncated_snapshot_is_an_error() {
        let text = write_snapshot(&sample());
        let cut: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        let err = parse_snapshot("snap.jsonl", &cut).unwrap_err();
        assert_eq!(err, "snap.jsonl: truncated snapshot (missing end record)");
    }

    #[test]
    fn unknown_version_is_an_error() {
        let err = parse_snapshot("s", "{\"snap_v\":9}\n").unwrap_err();
        assert_eq!(err, "s:1: unknown snap_v 9 (known: [1])");
    }

    #[test]
    fn corrupt_line_reports_path_and_line() {
        let mut text = write_snapshot(&sample());
        text = text.replacen("\"kind\":\"pipeline\"", "\"kind\":\"pipeline", 1);
        let err = parse_snapshot("s", &text).unwrap_err();
        assert!(err.starts_with("s:3: "), "{err}");
    }

    #[test]
    fn unknown_kind_lines_are_skipped() {
        let text = write_snapshot(&sample());
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, r#"{"kind":"future-extension","x":1}"#);
        // The end trailer counts one more line now.
        let patched = lines
            .join("\n")
            .replace(r#"{"kind":"end","lines":5}"#, r#"{"kind":"end","lines":6}"#);
        let back = parse_snapshot("mem", &patched).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn end_count_mismatch_is_an_error() {
        let text = write_snapshot(&sample())
            .replace(r#"{"kind":"end","lines":5}"#, r#"{"kind":"end","lines":9}"#);
        let err = parse_snapshot("s", &text).unwrap_err();
        assert!(err.contains("end record says 9 lines, found 5"), "{err}");
    }

    #[test]
    fn cause_index_round_trips() {
        for c in MissCause::ALL {
            assert_eq!(cause_from_index(cause_index(c)).unwrap(), c);
        }
        let err = cause_from_index(99).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_files() {
        let dir = std::env::temp_dir().join(format!("ccr-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.snap.jsonl");
        let snap = sample();
        save_snapshot(&path, &snap).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), snap);
        let missing = dir.join("missing.snap.jsonl");
        let err = load_snapshot(&missing).unwrap_err();
        assert!(err.starts_with(&missing.display().to_string()), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Machine (processor) configuration.

use crate::cache::CacheConfig;

/// The modeled processor, defaulting to the paper's evaluation
/// machine (Section 5.1).
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Integer ALUs (also execute multiplies/divides).
    pub int_alus: u32,
    /// Memory ports shared by loads and stores.
    pub mem_ports: u32,
    /// Floating-point ALUs.
    pub fp_alus: u32,
    /// Branch units (branches, jumps, calls, returns, reuse).
    pub branch_units: u32,
    /// Integer ALU latency (cycles).
    pub int_latency: u64,
    /// Integer multiply/divide latency (HP PA-7100 approximation; the
    /// paper only pins integer = 1 and load = 2).
    pub mul_latency: u64,
    /// Floating-point latency (PA-7100 approximation).
    pub fp_latency: u64,
    /// Load-use latency on a D-cache hit.
    pub load_latency: u64,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// BTB entries (2-bit counters).
    pub btb_entries: usize,
    /// Branch misprediction penalty (cycles).
    pub mispredict_penalty: u64,
    /// Pipeline delay of a successful reuse (CRB access + state read +
    /// validation) before live-outs start committing.
    pub reuse_hit_latency: u64,
    /// Penalty of a failed reuse ("a delay similar to the branch
    /// misprediction penalty").
    pub reuse_miss_penalty: u64,
    /// Value-speculate across reuse validation (the paper's
    /// future-work item: "the use of value speculation techniques to
    /// hide the latency of validating reuse opportunities"). When set,
    /// a hit's live-outs are forwarded without waiting for the input
    /// registers to be architecturally ready; validation completes off
    /// the critical path.
    pub speculative_validation: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

impl MachineConfig {
    /// The paper's 6-issue in-order machine.
    pub fn paper() -> MachineConfig {
        MachineConfig {
            issue_width: 6,
            int_alus: 4,
            mem_ports: 2,
            fp_alus: 2,
            branch_units: 1,
            int_latency: 1,
            mul_latency: 3,
            fp_latency: 2,
            load_latency: 2,
            icache: CacheConfig::paper(),
            dcache: CacheConfig::paper(),
            btb_entries: 4096,
            mispredict_penalty: 8,
            reuse_hit_latency: 2,
            reuse_miss_penalty: 8,
            speculative_validation: false,
        }
    }
}

impl MachineConfig {
    /// The paper machine plus speculative reuse validation.
    pub fn with_speculative_validation() -> MachineConfig {
        MachineConfig {
            speculative_validation: true,
            ..MachineConfig::paper()
        }
    }

    /// Canonical `(field, value)` enumeration of the machine model, in
    /// declaration order (caches flattened as `icache.size_bytes`
    /// etc.).
    ///
    /// The experiment planner keys simulation units by hashing these
    /// pairs and labels sweep axes by diffing them, so the list must
    /// stay exhaustive — a missing field would alias two distinct
    /// machines.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        let mut out = vec![
            ("issue_width", self.issue_width.to_string()),
            ("int_alus", self.int_alus.to_string()),
            ("mem_ports", self.mem_ports.to_string()),
            ("fp_alus", self.fp_alus.to_string()),
            ("branch_units", self.branch_units.to_string()),
            ("int_latency", self.int_latency.to_string()),
            ("mul_latency", self.mul_latency.to_string()),
            ("fp_latency", self.fp_latency.to_string()),
            ("load_latency", self.load_latency.to_string()),
        ];
        for (name, cache) in [
            (
                [
                    "icache.size_bytes",
                    "icache.line_bytes",
                    "icache.miss_penalty",
                ],
                &self.icache,
            ),
            (
                [
                    "dcache.size_bytes",
                    "dcache.line_bytes",
                    "dcache.miss_penalty",
                ],
                &self.dcache,
            ),
        ] {
            out.push((name[0], cache.size_bytes.to_string()));
            out.push((name[1], cache.line_bytes.to_string()));
            out.push((name[2], cache.miss_penalty.to_string()));
        }
        out.extend([
            ("btb_entries", self.btb_entries.to_string()),
            ("mispredict_penalty", self.mispredict_penalty.to_string()),
            ("reuse_hit_latency", self.reuse_hit_latency.to_string()),
            ("reuse_miss_penalty", self.reuse_miss_penalty.to_string()),
            (
                "speculative_validation",
                self.speculative_validation.to_string(),
            ),
        ]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_section_5_1() {
        let m = MachineConfig::paper();
        assert_eq!(m.issue_width, 6);
        assert_eq!(m.int_alus, 4);
        assert_eq!(m.mem_ports, 2);
        assert_eq!(m.fp_alus, 2);
        assert_eq!(m.branch_units, 1);
        assert_eq!(m.int_latency, 1);
        assert_eq!(m.load_latency, 2);
        assert_eq!(m.icache.size_bytes, 32 * 1024);
        assert_eq!(m.icache.line_bytes, 32);
        assert_eq!(m.icache.miss_penalty, 12);
        assert_eq!(m.btb_entries, 4096);
        assert_eq!(m.mispredict_penalty, 8);
        assert_eq!(m.reuse_miss_penalty, 8);
    }

    #[test]
    fn machine_fields_enumeration_is_exhaustive() {
        let fields = MachineConfig::paper().fields();
        // 9 scalar units/latencies + 2×3 cache fields + 5 trailing
        // knobs. Update together with the struct.
        assert_eq!(fields.len(), 20);
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "field names must be unique");
        let wide = MachineConfig {
            issue_width: 8,
            ..MachineConfig::paper()
        };
        assert_ne!(fields, wide.fields());
    }

    #[test]
    fn crb_fields_enumeration_flattens_nonuniform() {
        use crate::{CrbConfig, NonuniformConfig};
        let uniform = CrbConfig::paper().fields();
        assert_eq!(uniform.len(), 8);
        assert!(uniform.contains(&("nonuniform.boost_every", "-".to_string())));
        let skewed = CrbConfig {
            nonuniform: Some(NonuniformConfig {
                boost_every: 4,
                boosted_instances: 20,
                mem_capable_percent: 100,
            }),
            ..CrbConfig::paper()
        };
        let fields = skewed.fields();
        assert!(fields.contains(&("nonuniform.boosted_instances", "20".to_string())));
        assert_ne!(uniform, fields);
        assert_ne!(uniform, CrbConfig::with_entries(32).fields());
    }
}

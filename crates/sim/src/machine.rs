//! Machine (processor) configuration.

use crate::cache::CacheConfig;

/// The modeled processor, defaulting to the paper's evaluation
/// machine (Section 5.1).
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Integer ALUs (also execute multiplies/divides).
    pub int_alus: u32,
    /// Memory ports shared by loads and stores.
    pub mem_ports: u32,
    /// Floating-point ALUs.
    pub fp_alus: u32,
    /// Branch units (branches, jumps, calls, returns, reuse).
    pub branch_units: u32,
    /// Integer ALU latency (cycles).
    pub int_latency: u64,
    /// Integer multiply/divide latency (HP PA-7100 approximation; the
    /// paper only pins integer = 1 and load = 2).
    pub mul_latency: u64,
    /// Floating-point latency (PA-7100 approximation).
    pub fp_latency: u64,
    /// Load-use latency on a D-cache hit.
    pub load_latency: u64,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// BTB entries (2-bit counters).
    pub btb_entries: usize,
    /// Branch misprediction penalty (cycles).
    pub mispredict_penalty: u64,
    /// Pipeline delay of a successful reuse (CRB access + state read +
    /// validation) before live-outs start committing.
    pub reuse_hit_latency: u64,
    /// Penalty of a failed reuse ("a delay similar to the branch
    /// misprediction penalty").
    pub reuse_miss_penalty: u64,
    /// Value-speculate across reuse validation (the paper's
    /// future-work item: "the use of value speculation techniques to
    /// hide the latency of validating reuse opportunities"). When set,
    /// a hit's live-outs are forwarded without waiting for the input
    /// registers to be architecturally ready; validation completes off
    /// the critical path.
    pub speculative_validation: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

impl MachineConfig {
    /// The paper's 6-issue in-order machine.
    pub fn paper() -> MachineConfig {
        MachineConfig {
            issue_width: 6,
            int_alus: 4,
            mem_ports: 2,
            fp_alus: 2,
            branch_units: 1,
            int_latency: 1,
            mul_latency: 3,
            fp_latency: 2,
            load_latency: 2,
            icache: CacheConfig::paper(),
            dcache: CacheConfig::paper(),
            btb_entries: 4096,
            mispredict_penalty: 8,
            reuse_hit_latency: 2,
            reuse_miss_penalty: 8,
            speculative_validation: false,
        }
    }
}

impl MachineConfig {
    /// The paper machine plus speculative reuse validation.
    pub fn with_speculative_validation() -> MachineConfig {
        MachineConfig {
            speculative_validation: true,
            ..MachineConfig::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_section_5_1() {
        let m = MachineConfig::paper();
        assert_eq!(m.issue_width, 6);
        assert_eq!(m.int_alus, 4);
        assert_eq!(m.mem_ports, 2);
        assert_eq!(m.fp_alus, 2);
        assert_eq!(m.branch_units, 1);
        assert_eq!(m.int_latency, 1);
        assert_eq!(m.load_latency, 2);
        assert_eq!(m.icache.size_bytes, 32 * 1024);
        assert_eq!(m.icache.line_bytes, 32);
        assert_eq!(m.icache.miss_penalty, 12);
        assert_eq!(m.btb_entries, 4096);
        assert_eq!(m.mispredict_penalty, 8);
        assert_eq!(m.reuse_miss_penalty, 8);
    }
}

//! Simulation statistics.

use std::collections::HashMap;

use ccr_ir::RegionId;
use ccr_profile::MissCause;

/// Counters kept by the Computation Reuse Buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrbStats {
    /// Reuse-instruction lookups.
    pub lookups: u64,
    /// Lookups that matched a valid computation instance.
    pub hits: u64,
    /// Lookups that found no usable instance.
    pub misses: u64,
    /// Misses against a region that never recorded an instance.
    pub miss_cold: u64,
    /// Misses where live instances existed but no input bank matched.
    pub miss_mismatch: u64,
    /// Misses where the matching instance was evicted by same-region
    /// replacement pressure.
    pub miss_capacity: u64,
    /// Misses where the entry had been reassigned to another region.
    pub miss_conflict: u64,
    /// Misses where the matching memory-dependent instance was killed
    /// by an `invalidate` instruction.
    pub miss_invalidated: u64,
    /// Computation instances recorded.
    pub records: u64,
    /// `invalidate` instructions executed against this buffer.
    pub invalidations: u64,
    /// Entry reassignments caused by region-id conflicts (two regions
    /// mapping to the same direct-mapped entry).
    pub entry_conflicts: u64,
}

impl CrbStats {
    /// Hit ratio over all lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Counts one classified miss (the `misses` total itself is bumped
    /// separately, at the lookup site).
    pub fn count_miss_cause(&mut self, cause: MissCause) {
        match cause {
            MissCause::Cold => self.miss_cold += 1,
            MissCause::Mismatch => self.miss_mismatch += 1,
            MissCause::Capacity => self.miss_capacity += 1,
            MissCause::Conflict => self.miss_conflict += 1,
            MissCause::Invalidated => self.miss_invalidated += 1,
        }
    }

    /// Folds every counter into `push` (fingerprint support).
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.lookups);
        push(self.hits);
        push(self.misses);
        push(self.miss_cold);
        push(self.miss_mismatch);
        push(self.miss_capacity);
        push(self.miss_conflict);
        push(self.miss_invalidated);
        push(self.records);
        push(self.invalidations);
        push(self.entry_conflicts);
    }

    /// Sum of the per-cause miss counters; must equal `misses`.
    pub fn miss_cause_total(&self) -> u64 {
        self.miss_cold
            + self.miss_mismatch
            + self.miss_capacity
            + self.miss_conflict
            + self.miss_invalidated
    }

    /// Checks the accounting invariants: every lookup resolves to
    /// exactly one hit or miss, and every miss to exactly one cause.
    /// Debug builds assert; a violation means the buffer model itself
    /// miscounted, not the workload.
    pub fn check(&self) {
        debug_assert!(
            self.hits + self.misses == self.lookups,
            "CRB stats out of balance: {} hits + {} misses != {} lookups",
            self.hits,
            self.misses,
            self.lookups,
        );
        debug_assert!(
            self.miss_cause_total() == self.misses,
            "CRB miss causes out of balance: {} classified != {} misses \
             (cold {} + mismatch {} + capacity {} + conflict {} + invalidated {})",
            self.miss_cause_total(),
            self.misses,
            self.miss_cold,
            self.miss_mismatch,
            self.miss_capacity,
            self.miss_conflict,
            self.miss_invalidated,
        );
    }
}

/// Per-region dynamic reuse statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionDynStats {
    /// Reuse hits attributed to the region.
    pub hits: u64,
    /// Reuse misses attributed to the region.
    pub misses: u64,
    /// Region misses classified as cold.
    pub miss_cold: u64,
    /// Region misses classified as input mismatch.
    pub miss_mismatch: u64,
    /// Region misses classified as capacity eviction.
    pub miss_capacity: u64,
    /// Region misses classified as entry conflict.
    pub miss_conflict: u64,
    /// Region misses classified as invalidation.
    pub miss_invalidated: u64,
    /// Dynamic instructions eliminated by the region's hits.
    pub skipped_instrs: u64,
}

impl RegionDynStats {
    /// Folds every counter into `push` (fingerprint support).
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.hits);
        push(self.misses);
        push(self.miss_cold);
        push(self.miss_mismatch);
        push(self.miss_capacity);
        push(self.miss_conflict);
        push(self.miss_invalidated);
        push(self.skipped_instrs);
    }

    /// Counts one classified miss for the region (the `misses` total is
    /// bumped separately).
    pub fn count_miss_cause(&mut self, cause: MissCause) {
        match cause {
            MissCause::Cold => self.miss_cold += 1,
            MissCause::Mismatch => self.miss_mismatch += 1,
            MissCause::Capacity => self.miss_capacity += 1,
            MissCause::Conflict => self.miss_conflict += 1,
            MissCause::Invalidated => self.miss_invalidated += 1,
        }
    }
}

/// Attribution buckets: where a simulated cycle went. Every cycle of a
/// profiled run is charged to exactly one bucket (see
/// `Pipeline::enable_profiling`), so the five counters sum to the
/// run's total cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBuckets {
    /// Cycles spent issuing, waiting on ALU-produced operands, or
    /// stalled on issue-width/functional-unit structural limits.
    pub issue: u64,
    /// Cycles lost to the front end: I-cache miss fill, branch
    /// mispredict redirect, reuse-miss flush.
    pub fetch: u64,
    /// Cycles waiting on load-produced operands (D-cache latency).
    pub memory: u64,
    /// Cycles spent in reuse-hit commit: output writeback groups,
    /// validation-read waits, and the hit's fetch redirect.
    pub reuse_hit: u64,
    /// End-of-run drain: cycles after the last issue while in-flight
    /// results complete.
    pub drain: u64,
}

impl CycleBuckets {
    /// Total cycles across all buckets.
    pub fn total(&self) -> u64 {
        self.issue + self.fetch + self.memory + self.reuse_hit + self.drain
    }

    /// Adds `n` cycles to one bucket.
    pub fn charge(&mut self, bucket: AttrBucket, n: u64) {
        match bucket {
            AttrBucket::Issue => self.issue += n,
            AttrBucket::Fetch => self.fetch += n,
            AttrBucket::Memory => self.memory += n,
            AttrBucket::ReuseHit => self.reuse_hit += n,
            AttrBucket::Drain => self.drain += n,
        }
    }
}

/// Identifies one [`CycleBuckets`] bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrBucket {
    /// Issue / ALU-operand / structural.
    Issue,
    /// Front-end (I-cache, mispredict, reuse-miss flush).
    Fetch,
    /// Load-operand (memory) wait.
    Memory,
    /// Reuse-hit commit and redirect.
    ReuseHit,
    /// End-of-run drain.
    Drain,
}

/// Cycle breakdown for one function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuncCycles {
    /// Function name.
    pub name: String,
    /// Cycles charged while this function was executing.
    pub buckets: CycleBuckets,
}

/// Cycle-attribution profile of one simulated run, present only when
/// profiling was enabled. The bucket totals, the per-function rows,
/// and the per-region rows each sum to the run's total cycles resp.
/// the cycles spent inside regions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attribution {
    /// Whole-run bucket totals (sum == `SimStats::cycles`).
    pub total: CycleBuckets,
    /// Per-function breakdown, sorted by descending total cycles then
    /// name for determinism.
    pub functions: Vec<FuncCycles>,
    /// Cycles charged while a reuse region was active (between its
    /// `reuse` instruction and its region end), keyed by region,
    /// sorted by region id.
    pub regions: Vec<(RegionId, u64)>,
}

/// Whole-run statistics from the timing pipeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub dyn_instrs: u64,
    /// Dynamic instructions eliminated by reuse hits.
    pub skipped_instrs: u64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache hits.
    pub dcache_hits: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Correctly predicted conditional branches.
    pub branch_correct: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Reuse-instruction hits.
    pub reuse_hits: u64,
    /// Reuse-instruction misses.
    pub reuse_misses: u64,
    /// Buffer-level counters.
    pub crb: CrbStats,
    /// Per-region dynamics.
    pub regions: HashMap<RegionId, RegionDynStats>,
    /// Cycle attribution (profiled runs only).
    pub attribution: Option<Attribution>,
}

impl SimStats {
    /// Instructions (issued + skipped) per cycle — the useful work
    /// rate including eliminated execution.
    pub fn effective_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.dyn_instrs + self.skipped_instrs) as f64 / self.cycles as f64
        }
    }

    /// Folds every simulated counter into `push` in a deterministic
    /// order (the per-region map is folded in sorted key order).
    /// `attribution` is deliberately excluded: it exists only on
    /// profiled runs, which the snapshot/fingerprint paths reject.
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.cycles);
        push(self.dyn_instrs);
        push(self.skipped_instrs);
        push(self.icache_hits);
        push(self.icache_misses);
        push(self.dcache_hits);
        push(self.dcache_misses);
        push(self.branch_correct);
        push(self.branch_mispredicts);
        push(self.reuse_hits);
        push(self.reuse_misses);
        self.crb.fold_state(push);
        let mut regions: Vec<(&RegionId, &RegionDynStats)> = self.regions.iter().collect();
        regions.sort_by_key(|(r, _)| r.index());
        push(regions.len() as u64);
        for (r, s) in regions {
            push(r.index() as u64);
            s.fold_state(push);
        }
    }

    /// Fraction of baseline-equivalent instructions eliminated by
    /// reuse.
    pub fn eliminated_fraction(&self) -> f64 {
        let total = self.dyn_instrs + self.skipped_instrs;
        if total == 0 {
            0.0
        } else {
            self.skipped_instrs as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = SimStats {
            cycles: 100,
            dyn_instrs: 300,
            skipped_instrs: 100,
            ..SimStats::default()
        };
        assert_eq!(s.effective_ipc(), 4.0);
        assert_eq!(s.eliminated_fraction(), 0.25);
        s.cycles = 0;
        assert_eq!(s.effective_ipc(), 0.0);
        let empty = SimStats::default();
        assert_eq!(empty.eliminated_fraction(), 0.0);
    }

    #[test]
    fn crb_hit_ratio() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            miss_cold: 3,
            ..CrbStats::default()
        };
        assert!((c.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CrbStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn balanced_crb_stats_pass_check() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            miss_cold: 1,
            miss_mismatch: 2,
            ..CrbStats::default()
        };
        c.check();
        CrbStats::default().check();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of balance")]
    fn unbalanced_crb_stats_fail_check() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 2,
            miss_cold: 2,
            ..CrbStats::default()
        };
        c.check();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "miss causes out of balance")]
    fn unclassified_misses_fail_check() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            miss_cold: 1,
            miss_capacity: 1,
            ..CrbStats::default()
        };
        c.check();
    }

    #[test]
    fn cause_counting_covers_every_cause() {
        let mut c = CrbStats::default();
        let mut r = RegionDynStats::default();
        for cause in MissCause::ALL {
            c.misses += 1;
            c.lookups += 1;
            c.count_miss_cause(cause);
            r.misses += 1;
            r.count_miss_cause(cause);
        }
        c.check();
        assert_eq!(c.miss_cause_total(), 5);
        assert_eq!(
            (
                r.miss_cold,
                r.miss_mismatch,
                r.miss_capacity,
                r.miss_conflict,
                r.miss_invalidated
            ),
            (1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn cycle_buckets_sum_and_charge() {
        let mut b = CycleBuckets::default();
        b.charge(AttrBucket::Issue, 3);
        b.charge(AttrBucket::Fetch, 2);
        b.charge(AttrBucket::Memory, 4);
        b.charge(AttrBucket::ReuseHit, 1);
        b.charge(AttrBucket::Drain, 5);
        assert_eq!(b.total(), 15);
        assert_eq!(b.memory, 4);
    }
}

//! Simulation statistics.

use std::collections::HashMap;

use ccr_ir::RegionId;

/// Counters kept by the Computation Reuse Buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrbStats {
    /// Reuse-instruction lookups.
    pub lookups: u64,
    /// Lookups that matched a valid computation instance.
    pub hits: u64,
    /// Lookups that found no usable instance.
    pub misses: u64,
    /// Computation instances recorded.
    pub records: u64,
    /// `invalidate` instructions executed against this buffer.
    pub invalidations: u64,
    /// Entry reassignments caused by region-id conflicts (two regions
    /// mapping to the same direct-mapped entry).
    pub entry_conflicts: u64,
}

impl CrbStats {
    /// Hit ratio over all lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Checks the accounting invariant: every lookup resolves to
    /// exactly one hit or miss. Debug builds assert; a violation means
    /// the buffer model itself miscounted, not the workload.
    pub fn check(&self) {
        debug_assert!(
            self.hits + self.misses == self.lookups,
            "CRB stats out of balance: {} hits + {} misses != {} lookups",
            self.hits,
            self.misses,
            self.lookups,
        );
    }
}

/// Per-region dynamic reuse statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionDynStats {
    /// Reuse hits attributed to the region.
    pub hits: u64,
    /// Reuse misses attributed to the region.
    pub misses: u64,
    /// Dynamic instructions eliminated by the region's hits.
    pub skipped_instrs: u64,
}

/// Whole-run statistics from the timing pipeline.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub dyn_instrs: u64,
    /// Dynamic instructions eliminated by reuse hits.
    pub skipped_instrs: u64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache hits.
    pub dcache_hits: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Correctly predicted conditional branches.
    pub branch_correct: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Reuse-instruction hits.
    pub reuse_hits: u64,
    /// Reuse-instruction misses.
    pub reuse_misses: u64,
    /// Buffer-level counters.
    pub crb: CrbStats,
    /// Per-region dynamics.
    pub regions: HashMap<RegionId, RegionDynStats>,
}

impl SimStats {
    /// Instructions (issued + skipped) per cycle — the useful work
    /// rate including eliminated execution.
    pub fn effective_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.dyn_instrs + self.skipped_instrs) as f64 / self.cycles as f64
        }
    }

    /// Fraction of baseline-equivalent instructions eliminated by
    /// reuse.
    pub fn eliminated_fraction(&self) -> f64 {
        let total = self.dyn_instrs + self.skipped_instrs;
        if total == 0 {
            0.0
        } else {
            self.skipped_instrs as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = SimStats {
            cycles: 100,
            dyn_instrs: 300,
            skipped_instrs: 100,
            ..SimStats::default()
        };
        assert_eq!(s.effective_ipc(), 4.0);
        assert_eq!(s.eliminated_fraction(), 0.25);
        s.cycles = 0;
        assert_eq!(s.effective_ipc(), 0.0);
        let empty = SimStats::default();
        assert_eq!(empty.eliminated_fraction(), 0.0);
    }

    #[test]
    fn crb_hit_ratio() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            ..CrbStats::default()
        };
        assert!((c.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CrbStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn balanced_crb_stats_pass_check() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            ..CrbStats::default()
        };
        c.check();
        CrbStats::default().check();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of balance")]
    fn unbalanced_crb_stats_fail_check() {
        let c = CrbStats {
            lookups: 10,
            hits: 7,
            misses: 2,
            ..CrbStats::default()
        };
        c.check();
    }
}

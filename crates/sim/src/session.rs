//! Resumable, observable simulation sessions.
//!
//! [`SimSession`] is the stepwise form of [`crate::simulate`]: the
//! same emulator/pipeline/reuse-buffer composition, driven one dynamic
//! instruction at a time so a driver can interleave state
//! fingerprinting ([`crate::fingerprint::FingerprintStream`]) and
//! snapshotting ([`crate::snapshot::SimSnapshot`]) at exact
//! instruction boundaries. A session run to completion produces
//! **bit-identical** [`SimStats`] to [`crate::simulate`], and a
//! session restored from a mid-run snapshot completes with
//! bit-identical stats and an identical fingerprint chain to the
//! uninterrupted run — the replay contract the `ccr fingerprint` and
//! `ccr snapshot` commands are built on.

use ccr_ir::{CodeLayout, Program};
use ccr_profile::{EmuConfig, EmuError, EmuRun, Emulator, NullCrb, RunOutcome};

use crate::crb::{CrbConfig, ReuseBuffer};
use crate::fingerprint::{FingerprintStream, WindowDigest};
use crate::machine::MachineConfig;
use crate::pipeline::Pipeline;
use crate::simulator::SimOutcome;
use crate::snapshot::{FingerprintSnapshot, SimSnapshot};

/// A stepwise simulation with streaming fingerprints and snapshot
/// support. See the module docs for the replay contract.
pub struct SimSession<'p> {
    run: EmuRun<'p>,
    pipeline: Pipeline,
    buffer: Option<ReuseBuffer>,
    stream: FingerprintStream,
    workload: String,
    config_hash: String,
    outcome: Option<RunOutcome>,
    final_hash: Option<u64>,
}

impl<'p> SimSession<'p> {
    /// Starts a fresh session — the stepwise equivalent of
    /// [`crate::simulate`] with the same first three arguments, plus
    /// the fingerprint window in cycles
    /// ([`crate::fingerprint::DEFAULT_FINGERPRINT_WINDOW`] is the
    /// conventional choice).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(
        program: &'p Program,
        machine: &MachineConfig,
        crb: Option<CrbConfig>,
        emu: EmuConfig,
        window: u64,
    ) -> SimSession<'p> {
        let layout = CodeLayout::of(program);
        let mut pipeline = Pipeline::new(*machine, layout);
        let run = Emulator::with_config(program, emu).start(&mut pipeline);
        SimSession {
            run,
            pipeline,
            buffer: crb.map(ReuseBuffer::new),
            stream: FingerprintStream::new(window),
            workload: String::new(),
            config_hash: String::new(),
            outcome: None,
            final_hash: None,
        }
    }

    /// Rebuilds a session from a mid-run snapshot. The caller supplies
    /// the same program and configuration the snapshot was taken
    /// under; structural mismatches are rejected with one-line errors.
    ///
    /// # Errors
    ///
    /// Returns a one-line description when any component of the
    /// snapshot is inconsistent with `program`, `machine`, or `crb`
    /// (including a CRB record present/absent mismatch).
    pub fn restore(
        program: &'p Program,
        machine: &MachineConfig,
        crb: Option<CrbConfig>,
        emu: EmuConfig,
        snap: &SimSnapshot,
    ) -> Result<SimSession<'p>, String> {
        let layout = CodeLayout::of(program);
        let pipeline = Pipeline::restore(*machine, layout, &snap.pipeline)?;
        let run = Emulator::with_config(program, emu).resume(&snap.emu)?;
        let buffer = match (crb, &snap.crb) {
            (Some(config), Some(cs)) => Some(ReuseBuffer::restore(config, cs)?),
            (None, None) => None,
            (Some(_), None) => {
                return Err(
                    "snapshot has no crb record but the configuration enables the CCR".to_string(),
                )
            }
            (None, Some(_)) => {
                return Err(
                    "snapshot has a crb record but the configuration disables the CCR".to_string(),
                )
            }
        };
        let stream = FingerprintStream::restore(
            snap.fingerprint.window,
            snap.fingerprint.hash,
            snap.fingerprint.windows.clone(),
        )?;
        Ok(SimSession {
            run,
            pipeline,
            buffer,
            stream,
            workload: snap.workload.clone(),
            config_hash: snap.config_hash.clone(),
            outcome: None,
            final_hash: None,
        })
    }

    /// Labels future snapshots with the producing workload and config
    /// hash (preflight checks on restore; both default to empty).
    pub fn set_provenance(&mut self, workload: &str, config_hash: &str) {
        self.workload = workload.to_string();
        self.config_hash = config_hash.to_string();
    }

    /// True once the program has returned.
    pub fn finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// Simulated cycles so far (the quantity window boundaries are
    /// measured against).
    pub fn cycles_so_far(&self) -> u64 {
        self.pipeline.cycles_so_far()
    }

    /// Dynamic instructions executed so far.
    pub fn dyn_instrs(&self) -> u64 {
        self.run.dyn_instrs()
    }

    /// The running fingerprint chain hash.
    pub fn fingerprint_hash(&self) -> u64 {
        self.stream.hash()
    }

    /// The sealed window chain so far.
    pub fn windows(&self) -> &[WindowDigest] {
        self.stream.windows()
    }

    /// The final chain hash, once the run has completed.
    pub fn final_hash(&self) -> Option<u64> {
        self.final_hash
    }

    /// Executes one dynamic instruction, sealing any crossed
    /// fingerprint windows; on completion, folds the final state.
    ///
    /// # Errors
    ///
    /// Propagates emulator limit violations ([`EmuError`]).
    ///
    /// # Panics
    ///
    /// Panics if called after the run finished.
    pub fn step(&mut self) -> Result<(), EmuError> {
        assert!(!self.finished(), "step after the run finished");
        let out = match self.buffer.as_mut() {
            Some(buf) => self.run.step(buf, &mut self.pipeline)?,
            None => self.run.step(&mut NullCrb, &mut self.pipeline)?,
        };
        let cycle = self.pipeline.cycles_so_far();
        if self.stream.due(cycle) {
            let (run, pipeline, buffer) = (&self.run, &self.pipeline, &self.buffer);
            self.stream.observe(cycle, |push| {
                run.fold_state(push);
                pipeline.fold_state(push);
                if let Some(b) = buffer {
                    b.fold_state(push);
                }
            });
        }
        if let Some(out) = out {
            let (run, pipeline, buffer) = (&self.run, &self.pipeline, &self.buffer);
            let hash = self.stream.finalize(|push| {
                run.fold_state(push);
                pipeline.fold_state(push);
                if let Some(b) = buffer {
                    b.fold_state(push);
                }
            });
            self.final_hash = Some(hash);
            self.outcome = Some(out);
        }
        Ok(())
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Propagates emulator limit violations ([`EmuError`]).
    pub fn run_to_end(&mut self) -> Result<(), EmuError> {
        while !self.finished() {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until the simulated cycle count reaches `cycle` (or the
    /// program finishes first).
    ///
    /// # Errors
    ///
    /// Propagates emulator limit violations ([`EmuError`]).
    pub fn run_until_cycle(&mut self, cycle: u64) -> Result<(), EmuError> {
        while !self.finished() && self.pipeline.cycles_so_far() < cycle {
            self.step()?;
        }
        Ok(())
    }

    /// Captures the complete session state as a [`SimSnapshot`].
    ///
    /// # Errors
    ///
    /// Returns a one-line description for a finished run (there is no
    /// state left to resume).
    pub fn snapshot(&self) -> Result<SimSnapshot, String> {
        if self.finished() {
            return Err("cannot snapshot a finished run".to_string());
        }
        Ok(SimSnapshot {
            workload: self.workload.clone(),
            config_hash: self.config_hash.clone(),
            cycle: self.pipeline.cycles_so_far(),
            emu: self.run.snapshot(),
            pipeline: self.pipeline.snapshot()?,
            crb: self
                .buffer
                .as_ref()
                .map(ReuseBuffer::snapshot)
                .transpose()?,
            fingerprint: FingerprintSnapshot {
                window: self.stream.window(),
                hash: self.stream.hash(),
                windows: self.stream.windows().to_vec(),
            },
        })
    }

    /// Finalizes a completed run into the same [`SimOutcome`] that
    /// [`crate::simulate`] returns (bit-identical stats).
    ///
    /// # Panics
    ///
    /// Panics if the run has not completed.
    pub fn into_outcome(self) -> SimOutcome {
        let run = self.outcome.expect("run completed");
        let mut stats = self.pipeline.into_stats();
        if let Some(buffer) = self.buffer {
            stats.crb = buffer.stats();
        }
        SimOutcome { run, stats }
    }

    /// Test hook: deterministically disturbs reuse-buffer state so
    /// fingerprint-divergence machinery can be exercised. Returns
    /// `false` (and does nothing) on a baseline session without CCR
    /// hardware.
    #[doc(hidden)]
    pub fn perturb_for_tests(&mut self) -> bool {
        match self.buffer.as_mut() {
            Some(b) => {
                b.perturb_for_tests();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use crate::snapshot::{parse_snapshot, write_snapshot};
    use ccr_ir::{BinKind, CmpPred, InstrExt, Op, Operand, ProgramBuilder};

    /// A hand-annotated reusing loop: one region, `trips` iterations,
    /// an input that changes every 8 trips so the CRB sees both hits
    /// and mismatch misses.
    fn annotated_program(trips: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(17);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body);
        f.switch_to(body);
        f.bin_into(BinKind::Mul, y, x, x);
        for _ in 0..10 {
            f.bin_into(BinKind::Add, y, y, 1);
        }
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, y);
        f.inc(count, 1);
        let shifted = f.div(count, 8);
        f.bin_into(BinKind::Add, x, x, 0);
        f.bin_into(BinKind::Add, x, shifted, 17);
        f.br(CmpPred::Lt, count, trips, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(ccr_ir::BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: ccr_ir::BlockId(2),
            cont: ccr_ir::BlockId(3),
        };
        let blen = func.block(ccr_ir::BlockId(2)).len();
        for k in 0..blen - 1 {
            func.block_mut(ccr_ir::BlockId(2)).instrs[k].ext = InstrExt::LIVE_OUT;
        }
        func.block_mut(ccr_ir::BlockId(2)).instrs[blen - 1].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();
        p
    }

    fn paper() -> (MachineConfig, Option<CrbConfig>, EmuConfig) {
        (
            MachineConfig::paper(),
            Some(CrbConfig::paper()),
            EmuConfig::default(),
        )
    }

    #[test]
    fn session_matches_simulate_bit_for_bit() {
        let p = annotated_program(300);
        let (m, crb, emu) = paper();
        let direct = simulate(&p, &m, crb, emu).unwrap();
        let mut s = SimSession::new(&p, &m, crb, emu, 64);
        s.run_to_end().unwrap();
        assert!(s.final_hash().is_some());
        assert!(!s.windows().is_empty(), "the run must cross windows");
        let out = s.into_outcome();
        assert_eq!(out.stats, direct.stats);
        assert_eq!(out.run.returned, direct.run.returned);
        assert_eq!(out.run.dyn_instrs, direct.run.dyn_instrs);
    }

    #[test]
    fn baseline_session_matches_simulate() {
        let p = annotated_program(100);
        let (m, _, emu) = paper();
        let direct = simulate(&p, &m, None, emu).unwrap();
        let mut s = SimSession::new(&p, &m, None, emu, 128);
        s.run_to_end().unwrap();
        let out = s.into_outcome();
        assert_eq!(out.stats, direct.stats);
    }

    #[test]
    fn fingerprints_are_deterministic_across_runs() {
        let p = annotated_program(200);
        let (m, crb, emu) = paper();
        let mut a = SimSession::new(&p, &m, crb, emu, 64);
        let mut b = SimSession::new(&p, &m, crb, emu, 64);
        a.run_to_end().unwrap();
        b.run_to_end().unwrap();
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.final_hash(), b.final_hash());
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        let p = annotated_program(300);
        let (m, crb, emu) = paper();

        // Cold reference run.
        let mut cold = SimSession::new(&p, &m, crb, emu, 64);
        cold.run_to_end().unwrap();
        let cold_windows = cold.windows().to_vec();
        let cold_final = cold.final_hash().unwrap();
        let cold_out = cold.into_outcome();

        // Interrupted run: snapshot mid-flight, round-trip the
        // serialized form, resume, and finish.
        let mut first = SimSession::new(&p, &m, crb, emu, 64);
        first.set_provenance("annotated", "cfg");
        first.run_until_cycle(cold_out.stats.cycles / 2).unwrap();
        assert!(!first.finished(), "must interrupt mid-run");
        let snap = first.snapshot().unwrap();
        let snap = parse_snapshot("mem", &write_snapshot(&snap)).unwrap();
        assert_eq!(snap.workload, "annotated");

        let mut resumed = SimSession::restore(&p, &m, crb, emu, &snap).unwrap();
        resumed.run_to_end().unwrap();
        assert_eq!(resumed.windows(), &cold_windows[..]);
        assert_eq!(resumed.final_hash().unwrap(), cold_final);
        let out = resumed.into_outcome();
        assert_eq!(out.stats, cold_out.stats);
        assert_eq!(out.run.returned, cold_out.run.returned);
    }

    #[test]
    fn restore_rejects_configuration_mismatches() {
        let p = annotated_program(50);
        let (m, crb, emu) = paper();
        let mut s = SimSession::new(&p, &m, crb, emu, 64);
        s.run_until_cycle(100).unwrap();
        let snap = s.snapshot().unwrap();
        let err = SimSession::restore(&p, &m, None, emu, &snap)
            .err()
            .expect("restore must fail");
        assert!(err.contains("configuration disables the CCR"), "{err}");
        let small_crb = CrbConfig::with_entries(32);
        let err = SimSession::restore(&p, &m, Some(small_crb), emu, &snap)
            .err()
            .expect("restore must fail");
        assert!(err.contains("entries"), "{err}");
    }

    #[test]
    fn finished_runs_cannot_be_snapshotted() {
        let p = annotated_program(20);
        let (m, crb, emu) = paper();
        let mut s = SimSession::new(&p, &m, crb, emu, 64);
        s.run_to_end().unwrap();
        let err = s.snapshot().unwrap_err();
        assert_eq!(err, "cannot snapshot a finished run");
    }

    #[test]
    fn perturbation_pins_the_first_divergent_window() {
        let p = annotated_program(400);
        let (m, crb, emu) = paper();
        let mut cold = SimSession::new(&p, &m, crb, emu, 64);
        cold.run_to_end().unwrap();

        let mut twin = SimSession::new(&p, &m, crb, emu, 64);
        twin.run_until_cycle(cold.cycles_so_far() / 2).unwrap();
        let sealed_before = twin.windows().len();
        assert!(twin.perturb_for_tests(), "CCR session must perturb");
        twin.run_to_end().unwrap();

        assert_eq!(twin.windows().len(), cold.windows().len());
        let first_divergent = cold
            .windows()
            .iter()
            .zip(twin.windows())
            .position(|(a, b)| a.hash != b.hash)
            .expect("the chains must diverge");
        assert_eq!(
            first_divergent, sealed_before,
            "divergence must surface in the first window sealed after the perturbation"
        );
        assert_ne!(cold.final_hash(), twin.final_hash());
    }
}

//! A direct-mapped cache timing model.

/// Cache geometry and timing.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// The paper's 32 KB direct-mapped cache with 32-byte lines and a
    /// 12-cycle miss penalty.
    pub fn paper() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            miss_penalty: 12,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// A direct-mapped cache: tag array only (timing model, no data).
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics unless line size and line count are nonzero powers of
    /// two.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two() && config.line_bytes > 0);
        assert!(config.lines().is_power_of_two() && config.lines() > 0);
        Cache {
            tags: vec![None; config.lines() as usize],
            config,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`, returning the extra cycles charged (0 on hit,
    /// the miss penalty on miss). The line is installed on a miss.
    pub fn access(&mut self, addr: u64) -> u64 {
        let line = addr / self.config.line_bytes;
        let index = (line % self.config.lines()) as usize;
        let tag = line / self.config.lines();
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.tags[index] = Some(tag);
            self.config.miss_penalty
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The tag array (snapshot support). `None` = invalid line.
    pub fn tags(&self) -> &[Option<u64>] {
        &self.tags
    }

    /// Rebuilds a cache from snapshot state.
    ///
    /// # Errors
    ///
    /// Returns a one-line description if the tag array does not match
    /// the configured line count.
    pub fn restore(
        config: CacheConfig,
        tags: Vec<Option<u64>>,
        hits: u64,
        misses: u64,
    ) -> Result<Cache, String> {
        if tags.len() as u64 != config.lines() {
            return Err(format!(
                "cache snapshot has {} lines, config wants {}",
                tags.len(),
                config.lines()
            ));
        }
        let mut cache = Cache::new(config);
        cache.tags = tags;
        cache.hits = hits;
        cache.misses = misses;
        Ok(cache)
    }

    /// Folds the full cache state into `push` (fingerprint support).
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.hits);
        push(self.misses);
        push(self.tags.len() as u64);
        for tag in &self.tags {
            match tag {
                None => push(0),
                Some(t) => {
                    push(1);
                    push(*t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            miss_penalty: 12,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0), 12);
        assert_eq!(c.access(4), 0, "same line");
        assert_eq!(c.access(31), 0);
        assert_eq!(c.access(32), 12, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.miss_ratio(), 0.5);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = tiny(); // 4 lines
        assert_eq!(c.access(0), 12);
        assert_eq!(c.access(128), 12, "maps to same index, evicts");
        assert_eq!(c.access(0), 12, "evicted line misses again");
    }

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper();
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.miss_penalty, 12);
        let mut cache = Cache::new(c);
        // Distinct lines across the whole cache all miss cold.
        for i in 0..1024 {
            assert_eq!(cache.access(i * 32), 12);
        }
        for i in 0..1024 {
            assert_eq!(cache.access(i * 32), 0);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 32,
            miss_penalty: 1,
        });
    }
}

//! The top-level simulator: execution-driven timing of a program with
//! or without CCR hardware.

use ccr_ir::{CodeLayout, Program};
use ccr_profile::{EmuConfig, EmuError, Emulator, NullCrb, RunOutcome};

use crate::crb::{CrbConfig, ReuseBuffer};
use crate::machine::MachineConfig;
use crate::pipeline::Pipeline;
use crate::stats::SimStats;

/// Result of a simulated run: functional outcome plus timing.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Functional result (returned values, dynamic counts).
    pub run: RunOutcome,
    /// Timing and microarchitectural statistics.
    pub stats: SimStats,
}

impl SimOutcome {
    /// Speedup of this run relative to a baseline cycle count.
    pub fn speedup_over(&self, baseline_cycles: u64) -> f64 {
        if self.stats.cycles == 0 {
            0.0
        } else {
            baseline_cycles as f64 / self.stats.cycles as f64
        }
    }
}

/// Simulates `program` on `machine`. With `crb = Some(config)` the CCR
/// hardware is present; with `None` every reuse instruction misses
/// and nothing is recorded (this also serves as the baseline when the
/// program carries no annotations at all).
///
/// ```
/// use ccr_ir::{Operand, ProgramBuilder};
/// use ccr_profile::EmuConfig;
/// use ccr_sim::{simulate_baseline, MachineConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0, 1);
/// let a = f.movi(20);
/// let b = f.add(a, 22);
/// f.ret(&[Operand::Reg(b)]);
/// let id = pb.finish_function(f);
/// pb.set_main(id);
/// let program = pb.finish();
///
/// let out = simulate_baseline(&program, &MachineConfig::paper(), EmuConfig::default())?;
/// assert_eq!(out.run.returned[0].as_int(), 42);
/// assert!(out.stats.cycles >= 1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates emulator limit violations ([`EmuError`]).
pub fn simulate(
    program: &Program,
    machine: &MachineConfig,
    crb: Option<CrbConfig>,
    emu: EmuConfig,
) -> Result<SimOutcome, EmuError> {
    let layout = CodeLayout::of(program);
    let mut pipeline = Pipeline::new(*machine, layout);
    let emulator = Emulator::with_config(program, emu);
    let run = match crb {
        Some(config) => {
            let mut buffer = ReuseBuffer::new(config);
            let run = emulator.run(&mut buffer, &mut pipeline)?;
            let mut stats = pipeline.into_stats();
            stats.crb = buffer.stats();
            return Ok(SimOutcome { run, stats });
        }
        None => emulator.run(&mut NullCrb, &mut pipeline)?,
    };
    Ok(SimOutcome {
        run,
        stats: pipeline.into_stats(),
    })
}

/// Simulates the baseline machine (no CCR hardware).
///
/// # Errors
///
/// Propagates emulator limit violations ([`EmuError`]).
pub fn simulate_baseline(
    program: &Program,
    machine: &MachineConfig,
    emu: EmuConfig,
) -> Result<SimOutcome, EmuError> {
    simulate(program, machine, None, emu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};

    fn sum_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let t = pb.table("t", (0..16).collect());
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let m = f.and(i, 15);
        let v = f.load(t, m);
        f.bin_into(BinKind::Add, acc, acc, v);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, n, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        pb.finish()
    }

    #[test]
    fn baseline_simulation_reports_consistent_counts() {
        let p = sum_loop(1000);
        let out = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
        assert_eq!(out.run.dyn_instrs, out.stats.dyn_instrs);
        assert!(out.stats.cycles > 0);
        assert!(out.stats.cycles <= out.stats.dyn_instrs * 4);
        assert_eq!(out.stats.reuse_hits, 0);
        assert_eq!(out.stats.skipped_instrs, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = sum_loop(500);
        let a = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
        let b = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.run.returned, b.run.returned);
    }

    #[test]
    fn crb_presence_does_not_change_architectural_results() {
        let p = sum_loop(800);
        let base = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
        let ccr = simulate(
            &p,
            &MachineConfig::paper(),
            Some(CrbConfig::paper()),
            EmuConfig::default(),
        )
        .unwrap();
        // No annotations: identical timing, identical results.
        assert_eq!(base.run.returned, ccr.run.returned);
        assert_eq!(base.stats.cycles, ccr.stats.cycles);
        assert_eq!(ccr.stats.crb.lookups, 0);
    }

    #[test]
    fn speculative_validation_never_slows_a_run() {
        // Build a hand-annotated reusing program and compare timing
        // with and without validation speculation.
        use ccr_ir::{BinKind, InstrExt, Op};
        let mut pb = ccr_ir::ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(9);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body);
        f.switch_to(body);
        f.bin_into(BinKind::Mul, y, x, x);
        for _ in 0..10 {
            f.bin_into(BinKind::Add, y, y, 3);
        }
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, y);
        f.inc(count, 1);
        f.br(ccr_ir::CmpPred::Lt, count, 200, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(ccr_ir::BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: ccr_ir::BlockId(2),
            cont: ccr_ir::BlockId(3),
        };
        let blen = func.block(ccr_ir::BlockId(2)).len();
        func.block_mut(ccr_ir::BlockId(2)).instrs[0].ext = InstrExt::LIVE_OUT;
        func.block_mut(ccr_ir::BlockId(2)).instrs[blen - 1].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();

        let normal = simulate(
            &p,
            &MachineConfig::paper(),
            Some(CrbConfig::paper()),
            EmuConfig::default(),
        )
        .unwrap();
        let spec = simulate(
            &p,
            &MachineConfig::with_speculative_validation(),
            Some(CrbConfig::paper()),
            EmuConfig::default(),
        )
        .unwrap();
        assert_eq!(normal.run.returned, spec.run.returned);
        assert!(spec.stats.reuse_hits > 100);
        assert!(
            spec.stats.cycles <= normal.stats.cycles,
            "speculation must not slow the run: {} vs {}",
            spec.stats.cycles,
            normal.stats.cycles
        );
    }

    #[test]
    fn speedup_over_computes_ratio() {
        let p = sum_loop(100);
        let out = simulate_baseline(&p, &MachineConfig::paper(), EmuConfig::default()).unwrap();
        let s = out.speedup_over(out.stats.cycles * 2);
        assert!((s - 2.0).abs() < 1e-9);
    }
}

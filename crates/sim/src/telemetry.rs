//! Bridging the timing simulation into the telemetry event stream.
//!
//! [`TelemetryBridge`] wraps the [`Pipeline`] as a
//! [`ccr_profile::TraceSink`], forwarding every trace callback
//! unchanged — the pipeline sees the identical event sequence with or
//! without telemetry, so cycle counts cannot drift — while emitting:
//!
//! * a per-region reuse timeline (`reuse` events: region, hit or miss,
//!   instructions skipped, and the pipeline cycle after the lookup),
//! * interval IPC samples (`ipc_window` events, one per window of
//!   dynamic instructions), exposing phase behaviour that the run-wide
//!   mean hides.
//!
//! [`simulate_traced`] runs a full simulation through the bridge and
//! additionally drains the buffer's eviction/conflict/invalidation log
//! (`crb_evict` / `crb_conflict` / `crb_invalidate` events), per-region
//! totals (`region_summary`), and the run totals (`sim_summary`).

use ccr_ir::{BlockId, CodeLayout, FuncId, Program};
use ccr_profile::{EmuConfig, EmuError, Emulator, ExecEvent, NullCrb, TraceSink};
use ccr_telemetry::{emit, TelemetrySink};

use crate::crb::{CrbConfig, CrbEventKind, ReuseBuffer};
use crate::machine::MachineConfig;
use crate::pipeline::Pipeline;
use crate::simulator::SimOutcome;
use crate::stats::SimStats;

/// Default dynamic-instruction window for interval IPC samples.
pub const DEFAULT_IPC_WINDOW: u64 = 4096;

/// Default cycle period between call-stack samples in profiled runs.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 256;

/// Tracing knobs for [`simulate_traced_cfg`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Dynamic-instruction window for interval IPC samples.
    pub window: u64,
    /// Enables cycle attribution ([`Pipeline::enable_profiling`]) and
    /// periodic `cycle_sample` call-stack events. Timing is identical
    /// either way.
    pub profile: bool,
    /// Cycle period between call-stack samples (profiled runs only).
    pub sample_period: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            window: DEFAULT_IPC_WINDOW,
            profile: false,
            sample_period: DEFAULT_SAMPLE_PERIOD,
        }
    }
}

/// Call-stack sampling state (profiled runs only).
struct Sampler {
    /// Function names indexed by `FuncId::index()`.
    names: Vec<String>,
    /// The simulated call stack, outermost first.
    stack: Vec<FuncId>,
    period: u64,
    /// Next cycle at which a sample is due.
    next: u64,
}

/// A [`TraceSink`] that owns the timing [`Pipeline`] and narrates the
/// run to a [`TelemetrySink`]. Strictly pass-through for timing.
pub struct TelemetryBridge<'a> {
    pipeline: Pipeline,
    sink: &'a mut dyn TelemetrySink,
    window: u64,
    window_index: u64,
    window_instrs: u64,
    window_skipped: u64,
    window_start_cycle: u64,
    sampler: Option<Sampler>,
}

impl<'a> TelemetryBridge<'a> {
    /// Wraps `pipeline`, emitting one `ipc_window` event per `window`
    /// dynamic instructions.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(pipeline: Pipeline, sink: &'a mut dyn TelemetrySink, window: u64) -> Self {
        assert!(window > 0, "ipc window must be nonzero");
        TelemetryBridge {
            pipeline,
            sink,
            window,
            window_index: 0,
            window_instrs: 0,
            window_skipped: 0,
            window_start_cycle: 0,
            sampler: None,
        }
    }

    /// Turns on periodic `cycle_sample` call-stack events: one every
    /// `period` cycles, carrying the `;`-joined stack of function
    /// names (outermost first) and the cycles covered since the
    /// previous sample.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn enable_sampling(&mut self, names: Vec<String>, period: u64) {
        assert!(period > 0, "sample period must be nonzero");
        self.sampler = Some(Sampler {
            names,
            stack: Vec::new(),
            period,
            next: period,
        });
    }

    fn maybe_sample(&mut self) {
        let Some(sampler) = self.sampler.as_mut() else {
            return;
        };
        let now = self.pipeline.cycles_so_far();
        if now < sampler.next {
            return;
        }
        // A long-latency gap can straddle several periods; one sample
        // carries the whole covered span so sampled cycles still tile
        // the run.
        let periods = (now - sampler.next) / sampler.period + 1;
        let cycles = periods * sampler.period;
        if self.sink.enabled() {
            let mut stack = String::new();
            for (i, f) in sampler.stack.iter().enumerate() {
                if i > 0 {
                    stack.push(';');
                }
                match sampler.names.get(f.index()) {
                    Some(name) => stack.push_str(name),
                    None => stack.push('?'),
                }
            }
            emit!(self.sink, "cycle_sample", stack: stack.as_str(), cycles: cycles);
        }
        sampler.next += cycles;
    }

    fn flush_window(&mut self) {
        let now = self.pipeline.cycles_so_far();
        let cycles = now.saturating_sub(self.window_start_cycle);
        let work = self.window_instrs + self.window_skipped;
        let ipc = if cycles == 0 {
            0.0
        } else {
            work as f64 / cycles as f64
        };
        emit!(self.sink, "ipc_window",
            index: self.window_index,
            start_cycle: self.window_start_cycle,
            cycles: cycles,
            instrs: self.window_instrs,
            skipped: self.window_skipped,
            ipc: ipc,
        );
        self.window_index += 1;
        self.window_instrs = 0;
        self.window_skipped = 0;
        self.window_start_cycle = now;
    }

    /// Finalizes the run: emits the trailing partial window (if any)
    /// and returns the pipeline's statistics.
    pub fn into_stats(mut self) -> SimStats {
        if self.window_instrs > 0 {
            self.flush_window();
        }
        self.pipeline.into_stats()
    }
}

impl TraceSink for TelemetryBridge<'_> {
    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        self.pipeline.on_exec(event);
        if let Some(outcome) = event.reuse {
            match outcome.miss_cause {
                Some(cause) if !outcome.hit => {
                    emit!(self.sink, "reuse",
                        region: outcome.region.index(),
                        hit: outcome.hit,
                        skipped: outcome.skipped_instrs,
                        cycle: self.pipeline.cycles_so_far(),
                        cause: cause.as_str(),
                    );
                }
                _ => {
                    emit!(self.sink, "reuse",
                        region: outcome.region.index(),
                        hit: outcome.hit,
                        skipped: outcome.skipped_instrs,
                        cycle: self.pipeline.cycles_so_far(),
                    );
                }
            }
            self.window_skipped += outcome.skipped_instrs;
        }
        self.maybe_sample();
        self.window_instrs += 1;
        if self.window_instrs >= self.window {
            self.flush_window();
        }
    }

    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        if let Some(sampler) = self.sampler.as_mut() {
            if sampler.stack.is_empty() {
                sampler.stack.push(func);
            }
        }
        self.pipeline.on_block_enter(func, block);
    }

    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.stack.push(callee);
        }
        self.pipeline.on_call(caller, callee);
    }

    fn on_ret(&mut self, from: FuncId) {
        if let Some(sampler) = self.sampler.as_mut() {
            if sampler.stack.len() > 1 {
                sampler.stack.pop();
            }
        }
        self.pipeline.on_ret(from);
    }
}

/// Like [`crate::simulate`], narrating the run to `sink`: the reuse
/// timeline and interval IPC during execution, then the CRB event log
/// and per-region / whole-run summaries. With a disabled sink (e.g.
/// [`ccr_telemetry::NullSink`]) no event is materialized and the CRB
/// event log stays off, so the overhead is a branch per callback.
///
/// Timing is identical to an untraced [`crate::simulate`] of the same
/// inputs — the bridge never alters what the pipeline observes.
///
/// # Errors
///
/// Propagates emulator limit violations ([`EmuError`]).
pub fn simulate_traced(
    program: &Program,
    machine: &MachineConfig,
    crb: Option<CrbConfig>,
    emu: EmuConfig,
    window: u64,
    sink: &mut dyn TelemetrySink,
) -> Result<SimOutcome, EmuError> {
    let cfg = TraceConfig {
        window,
        ..TraceConfig::default()
    };
    simulate_traced_cfg(program, machine, crb, emu, &cfg, sink)
}

/// [`simulate_traced`] with full [`TraceConfig`] control. With
/// `profile` on, the pipeline additionally attributes every cycle
/// (surfaced as [`SimStats::attribution`]) and the stream gains
/// `cycle_sample` call-stack events and per-miss `cause` fields on
/// `reuse` events — without changing a single cycle of timing.
///
/// # Errors
///
/// Propagates emulator limit violations ([`EmuError`]).
pub fn simulate_traced_cfg(
    program: &Program,
    machine: &MachineConfig,
    crb: Option<CrbConfig>,
    emu: EmuConfig,
    cfg: &TraceConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<SimOutcome, EmuError> {
    let enabled = sink.enabled();
    let layout = CodeLayout::of(program);
    let mut pipeline = Pipeline::new(*machine, layout);
    if cfg.profile {
        pipeline.enable_profiling(
            program
                .functions()
                .iter()
                .map(|f| f.name().to_string())
                .collect(),
        );
    }
    let emulator = Emulator::with_config(program, emu);
    let mut bridge = TelemetryBridge::new(pipeline, &mut *sink, cfg.window);
    if cfg.profile {
        bridge.enable_sampling(
            program
                .functions()
                .iter()
                .map(|f| f.name().to_string())
                .collect(),
            cfg.sample_period,
        );
    }
    let (run, stats) = match crb {
        Some(config) => {
            let mut buffer = ReuseBuffer::new(config);
            buffer.set_event_logging(enabled);
            let run = emulator.run(&mut buffer, &mut bridge)?;
            let mut stats = bridge.into_stats();
            stats.crb = buffer.stats();
            for ev in buffer.take_events() {
                let kind = match ev.kind {
                    CrbEventKind::Evict => "crb_evict",
                    CrbEventKind::Conflict => "crb_conflict",
                    CrbEventKind::Invalidate => "crb_invalidate",
                };
                emit!(sink, kind,
                    clock: ev.clock,
                    region: ev.region.index(),
                    entry: ev.entry,
                    occupancy: ev.occupancy,
                    lost: ev.lost,
                );
            }
            (run, stats)
        }
        None => {
            let run = emulator.run(&mut NullCrb, &mut bridge)?;
            (run, bridge.into_stats())
        }
    };
    let mut regions: Vec<_> = stats.regions.iter().map(|(id, rs)| (*id, *rs)).collect();
    regions.sort_by_key(|(id, _)| id.index());
    for (id, rs) in regions {
        emit!(sink, "region_summary",
            region: id.index(),
            hits: rs.hits,
            misses: rs.misses,
            miss_cold: rs.miss_cold,
            miss_mismatch: rs.miss_mismatch,
            miss_capacity: rs.miss_capacity,
            miss_conflict: rs.miss_conflict,
            miss_invalidated: rs.miss_invalidated,
            skipped: rs.skipped_instrs,
        );
    }
    emit!(sink, "sim_summary",
        cycles: stats.cycles,
        dyn_instrs: stats.dyn_instrs,
        skipped: stats.skipped_instrs,
        reuse_hits: stats.reuse_hits,
        reuse_misses: stats.reuse_misses,
        effective_ipc: stats.effective_ipc(),
    );
    Ok(SimOutcome { run, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use ccr_ir::{BinKind, CmpPred, InstrExt, Op, Operand, ProgramBuilder};
    use ccr_telemetry::{NullSink, SummarySink};

    /// A hand-annotated reusing loop: one recording miss, then 99 hits
    /// each skipping a 13-instruction body.
    fn reusing_program() -> ccr_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(17);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body); // patched to reuse below
        f.switch_to(body);
        f.bin_into(BinKind::Mul, y, x, x);
        for _ in 0..12 {
            f.bin_into(BinKind::Add, y, y, 1);
        }
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, y);
        f.inc(count, 1);
        f.br(CmpPred::Lt, count, 100, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(ccr_ir::BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: ccr_ir::BlockId(2),
            cont: ccr_ir::BlockId(3),
        };
        let blen = func.block(ccr_ir::BlockId(2)).len();
        for k in 0..blen - 1 {
            func.block_mut(ccr_ir::BlockId(2)).instrs[k].ext = InstrExt::LIVE_OUT;
        }
        func.block_mut(ccr_ir::BlockId(2)).instrs[blen - 1].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();
        p
    }

    #[test]
    fn traced_run_matches_untraced_run_exactly() {
        let p = reusing_program();
        let machine = MachineConfig::paper();
        let plain = simulate(&p, &machine, Some(CrbConfig::paper()), EmuConfig::default()).unwrap();
        let mut null = NullSink;
        let traced = simulate_traced(
            &p,
            &machine,
            Some(CrbConfig::paper()),
            EmuConfig::default(),
            256,
            &mut null,
        )
        .unwrap();
        assert_eq!(plain.run.returned, traced.run.returned);
        assert_eq!(plain.stats.cycles, traced.stats.cycles);
        assert_eq!(plain.stats.dyn_instrs, traced.stats.dyn_instrs);
        assert_eq!(plain.stats.skipped_instrs, traced.stats.skipped_instrs);
        assert_eq!(plain.stats.crb, traced.stats.crb);
        assert_eq!(plain.stats.regions, traced.stats.regions);
    }

    #[test]
    fn traced_run_narrates_reuse_windows_and_summaries() {
        let p = reusing_program();
        let machine = MachineConfig::paper();
        let mut summary = SummarySink::new();
        let out = simulate_traced(
            &p,
            &machine,
            Some(CrbConfig::paper()),
            EmuConfig::default(),
            64,
            &mut summary,
        )
        .unwrap();
        // One reuse event per lookup.
        assert_eq!(
            summary.count("reuse"),
            out.stats.reuse_hits + out.stats.reuse_misses
        );
        assert_eq!(
            summary.sum("reuse", "skipped") as u64,
            out.stats.skipped_instrs
        );
        // Windows tile the run: instruction counts add up exactly.
        assert!(summary.count("ipc_window") >= 2);
        assert_eq!(
            summary.sum("ipc_window", "instrs") as u64,
            out.stats.dyn_instrs
        );
        assert_eq!(summary.count("region_summary"), 1);
        assert_eq!(
            summary.sum("region_summary", "hits") as u64,
            out.stats.reuse_hits
        );
        assert_eq!(summary.count("sim_summary"), 1);
        assert_eq!(
            summary.sum("sim_summary", "cycles") as u64,
            out.stats.cycles
        );
    }

    #[test]
    fn profiled_traced_run_is_cycle_identical() {
        let p = reusing_program();
        let machine = MachineConfig::paper();
        let plain = simulate(&p, &machine, Some(CrbConfig::paper()), EmuConfig::default()).unwrap();
        let cfg = TraceConfig {
            window: 256,
            profile: true,
            sample_period: 64,
        };
        let mut null = NullSink;
        let profiled = simulate_traced_cfg(
            &p,
            &machine,
            Some(CrbConfig::paper()),
            EmuConfig::default(),
            &cfg,
            &mut null,
        )
        .unwrap();
        assert_eq!(plain.stats.cycles, profiled.stats.cycles);
        assert_eq!(plain.stats.dyn_instrs, profiled.stats.dyn_instrs);
        assert_eq!(plain.stats.crb, profiled.stats.crb);
        assert_eq!(plain.stats.regions, profiled.stats.regions);
        let attr = profiled.stats.attribution.as_ref().expect("profiled");
        assert_eq!(attr.total.total(), profiled.stats.cycles);
    }

    #[test]
    fn profiled_run_emits_samples_and_miss_causes() {
        let p = reusing_program();
        let machine = MachineConfig::paper();
        let cfg = TraceConfig {
            window: 256,
            profile: true,
            sample_period: 32,
        };
        let mut summary = SummarySink::new();
        let out = simulate_traced_cfg(
            &p,
            &machine,
            Some(CrbConfig::paper()),
            EmuConfig::default(),
            &cfg,
            &mut summary,
        )
        .unwrap();
        // Samples tile the run in whole periods: their covered cycles
        // never exceed the total and reach within one gap of it.
        assert!(summary.count("cycle_sample") >= 1);
        let sampled = summary.sum("cycle_sample", "cycles") as u64;
        assert!(sampled > 0 && sampled <= out.stats.cycles, "{sampled}");
        // The JSONL form carries the stack and the miss cause.
        let mut jsonl = ccr_telemetry::JsonlSink::new(Vec::new());
        simulate_traced_cfg(
            &p,
            &machine,
            Some(CrbConfig::paper()),
            EmuConfig::default(),
            &cfg,
            &mut jsonl,
        )
        .unwrap();
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(
            text.contains("\"ev\":\"cycle_sample\",\"stack\":\"main\""),
            "{text}"
        );
        assert!(text.contains("\"cause\":\"cold\""), "{text}");
        // Hits never carry a cause.
        assert!(
            !text
                .lines()
                .any(|l| l.contains("\"hit\":true") && l.contains("\"cause\"")),
            "{text}"
        );
    }

    #[test]
    fn baseline_traced_run_matches_baseline() {
        let p = reusing_program();
        let machine = MachineConfig::paper();
        let plain = simulate(&p, &machine, None, EmuConfig::default()).unwrap();
        let mut summary = SummarySink::new();
        let traced =
            simulate_traced(&p, &machine, None, EmuConfig::default(), 128, &mut summary).unwrap();
        assert_eq!(plain.stats.cycles, traced.stats.cycles);
        // Without a CRB every reuse misses; the timeline still records
        // each lookup, and no buffer events exist.
        assert_eq!(summary.count("reuse"), traced.stats.reuse_misses);
        assert_eq!(summary.count("crb_evict"), 0);
        assert_eq!(summary.count("crb_conflict"), 0);
    }
}

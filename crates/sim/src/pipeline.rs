//! The in-order timing pipeline.
//!
//! Consumes the emulator's dynamic instruction stream as a
//! [`TraceSink`] and charges cycles: in-order issue of up to
//! `issue_width` operations per cycle, bounded by functional-unit
//! counts and register readiness (a scoreboard per call frame), with
//! an I-cache on the fetch stream, a D-cache under loads and stores, a
//! BTB with a misprediction penalty, and the reuse-instruction timing
//! of Section 3.3: a hit waits for the instance's input registers
//! (the "read state" and "validate" stages), then commits its
//! live-out registers at retirement width; a miss flushes like a
//! branch misprediction.

use std::collections::HashMap;

use ccr_ir::{CodeLayout, FuncId, Op, OpClass, Reg, RegionId};
use ccr_profile::{ExecEvent, TraceSink};

use crate::btb::Btb;
use crate::cache::Cache;
use crate::machine::MachineConfig;
use crate::stats::{RegionDynStats, SimStats};

#[derive(Clone, Copy, Default)]
struct FuUse {
    int: u32,
    mem: u32,
    fp: u32,
    branch: u32,
}

struct Frame {
    ready: HashMap<Reg, u64>,
    ret_regs: Vec<Reg>,
}

/// The timing model. Create one per simulated run, attach it to an
/// emulation, then call [`Pipeline::into_stats`].
pub struct Pipeline {
    machine: MachineConfig,
    layout: CodeLayout,
    icache: Cache,
    dcache: Cache,
    btb: Btb,
    last_issue: u64,
    slot_cycle: u64,
    slots_used: u32,
    fu_used: FuUse,
    fetch_ready: u64,
    last_fetch_line: Option<u64>,
    frames: Vec<Frame>,
    pending_call: Option<(u64, Vec<Reg>)>,
    horizon: u64,
    stats: SimStats,
}

impl Pipeline {
    /// Creates a pipeline for a program laid out by `layout`.
    pub fn new(machine: MachineConfig, layout: CodeLayout) -> Pipeline {
        Pipeline {
            icache: Cache::new(machine.icache),
            dcache: Cache::new(machine.dcache),
            btb: Btb::new(machine.btb_entries),
            machine,
            layout,
            last_issue: 0,
            slot_cycle: 0,
            slots_used: 0,
            fu_used: FuUse::default(),
            fetch_ready: 0,
            last_fetch_line: None,
            frames: vec![Frame {
                ready: HashMap::new(),
                ret_regs: Vec::new(),
            }],
            pending_call: None,
            horizon: 0,
            stats: SimStats::default(),
        }
    }

    /// Cycles accumulated so far — the same quantity
    /// [`Pipeline::into_stats`] reports at the end of the run. Usable
    /// mid-run for interval (windowed) measurements.
    pub fn cycles_so_far(&self) -> u64 {
        self.horizon.max(self.last_issue + 1)
    }

    /// Finalizes the run and returns its statistics.
    pub fn into_stats(mut self) -> SimStats {
        self.stats.cycles = self.cycles_so_far();
        self.stats.icache_hits = self.icache.hits();
        self.stats.icache_misses = self.icache.misses();
        self.stats.dcache_hits = self.dcache.hits();
        self.stats.dcache_misses = self.dcache.misses();
        self.stats.branch_correct = self.btb.correct();
        self.stats.branch_mispredicts = self.btb.mispredicts();
        self.stats
    }

    fn fu_limit(&self, class: OpClass) -> (u32, fn(&mut FuUse) -> &mut u32) {
        match class {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Invalidate => {
                (self.machine.int_alus, |f| &mut f.int)
            }
            OpClass::Load | OpClass::Store => (self.machine.mem_ports, |f| &mut f.mem),
            OpClass::FpAlu => (self.machine.fp_alus, |f| &mut f.fp),
            OpClass::Branch | OpClass::Reuse => (self.machine.branch_units, |f| &mut f.branch),
        }
    }

    fn issue_at(&mut self, earliest: u64, class: OpClass) -> u64 {
        let (limit, slot) = self.fu_limit(class);
        let mut t = earliest.max(self.last_issue);
        loop {
            if t > self.slot_cycle {
                self.slot_cycle = t;
                self.slots_used = 0;
                self.fu_used = FuUse::default();
            }
            if self.slots_used < self.machine.issue_width && *slot(&mut self.fu_used) < limit {
                break;
            }
            t += 1;
        }
        self.slots_used += 1;
        *slot(&mut self.fu_used) += 1;
        self.last_issue = t;
        t
    }

    fn ready_of(&self, reg: Reg) -> u64 {
        self.frames
            .last()
            .expect("frame")
            .ready
            .get(&reg)
            .copied()
            .unwrap_or(0)
    }

    fn set_ready(&mut self, reg: Reg, cycle: u64) {
        self.frames
            .last_mut()
            .expect("frame")
            .ready
            .insert(reg, cycle);
        self.horizon = self.horizon.max(cycle);
    }

    fn redirect_fetch(&mut self, cycle: u64) {
        self.fetch_ready = self.fetch_ready.max(cycle);
        self.last_fetch_line = None;
    }

    fn region_stats(&mut self, region: RegionId) -> &mut RegionDynStats {
        self.stats.regions.entry(region).or_default()
    }
}

impl TraceSink for Pipeline {
    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        let instr = event.instr;
        let addr = self.layout.code_addr(instr.id);
        self.stats.dyn_instrs += 1;

        // Fetch: one I-cache access per new line on the fetch stream.
        let line = addr / self.machine.icache.line_bytes;
        if self.last_fetch_line != Some(line) {
            let extra = self.icache.access(addr);
            self.fetch_ready += extra;
            self.last_fetch_line = Some(line);
        }

        // Operand readiness: a reuse hit waits on the matched
        // instance's input bank (the validate stage) — unless the
        // machine value-speculates across validation, in which case
        // the live-outs are forwarded immediately and validation
        // retires off the critical path.
        let src_regs: Vec<Reg> = match &event.reuse {
            Some(r) if r.hit => {
                if self.machine.speculative_validation {
                    Vec::new()
                } else {
                    r.inputs.clone()
                }
            }
            _ => instr.src_regs(),
        };
        let mut earliest = self.fetch_ready;
        for r in &src_regs {
            earliest = earliest.max(self.ready_of(*r));
        }

        let class = instr.class();
        let t = self.issue_at(earliest, class);
        self.horizon = self.horizon.max(t + 1);

        match &instr.op {
            Op::Binary { dst, .. } => {
                let lat = match class {
                    OpClass::IntMul => self.machine.mul_latency,
                    OpClass::FpAlu => self.machine.fp_latency,
                    _ => self.machine.int_latency,
                };
                self.set_ready(*dst, t + lat);
            }
            Op::Unary { dst, .. } => {
                let lat = if class == OpClass::FpAlu {
                    self.machine.fp_latency
                } else {
                    self.machine.int_latency
                };
                self.set_ready(*dst, t + lat);
            }
            Op::Cmp { dst, .. } => {
                self.set_ready(*dst, t + self.machine.int_latency);
            }
            Op::Load { dst, .. } => {
                let mem = event.mem.expect("load has a memory access");
                let daddr = self.layout.data_addr(mem.object, mem.index);
                let extra = self.dcache.access(daddr);
                self.set_ready(*dst, t + self.machine.load_latency + extra);
            }
            Op::Store { .. } => {
                let mem = event.mem.expect("store has a memory access");
                let daddr = self.layout.data_addr(mem.object, mem.index);
                let _ = self.dcache.access(daddr);
            }
            Op::Branch { .. } => {
                let taken = event.taken.expect("branch outcome");
                let correct = self.btb.update(addr, taken);
                if !correct {
                    self.redirect_fetch(t + 1 + self.machine.mispredict_penalty);
                } else if taken {
                    // Correctly-predicted taken branch: fetch stream
                    // moves to a new line next access.
                    self.last_fetch_line = None;
                }
            }
            Op::Jump { .. } => {
                self.last_fetch_line = None;
            }
            Op::Call { rets, .. } => {
                self.pending_call = Some((t + 1, rets.clone()));
                self.last_fetch_line = None;
            }
            Op::Ret { .. } => {
                self.last_fetch_line = None;
            }
            Op::Reuse { region, .. } => {
                let outcome = event.reuse.expect("reuse outcome");
                if outcome.hit {
                    // Commit live-outs at retirement width after the
                    // validation latency (1 cycle when speculating:
                    // the buffer read itself).
                    let lat = if self.machine.speculative_validation {
                        1
                    } else {
                        self.machine.reuse_hit_latency
                    };
                    let groups =
                        (outcome.outputs.len() as u64).div_ceil(self.machine.issue_width as u64);
                    let done = t + lat + groups;
                    for r in outcome.outputs.iter() {
                        self.set_ready(*r, done);
                    }
                    self.stats.reuse_hits += 1;
                    self.stats.skipped_instrs += outcome.skipped_instrs;
                    let rs = self.region_stats(*region);
                    rs.hits += 1;
                    rs.skipped_instrs += outcome.skipped_instrs;
                    // Fetch redirects to the continuation.
                    let redirect = if self.machine.speculative_validation {
                        1
                    } else {
                        self.machine.reuse_hit_latency
                    };
                    self.redirect_fetch(t + redirect);
                } else {
                    self.stats.reuse_misses += 1;
                    self.region_stats(*region).misses += 1;
                    self.redirect_fetch(t + 1 + self.machine.reuse_miss_penalty);
                }
            }
            Op::Invalidate { .. } | Op::Nop => {}
        }
    }

    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        let (ready_at, ret_regs) = self
            .pending_call
            .take()
            .unwrap_or((self.last_issue + 1, Vec::new()));
        let mut ready = HashMap::new();
        // Parameters become available once the call has issued; the
        // callee numbers them r0..rN.
        for i in 0..64u32 {
            ready.insert(Reg(i), ready_at);
        }
        self.frames.push(Frame { ready, ret_regs });
    }

    fn on_ret(&mut self, _from: FuncId) {
        let done = self.frames.pop().expect("matched call frame");
        let at = self.last_issue + 1;
        if let Some(_caller) = self.frames.last() {
            for r in done.ret_regs {
                self.set_ready(r, at);
            }
        } else {
            // Returning from main: keep a frame for robustness.
            self.frames.push(Frame {
                ready: HashMap::new(),
                ret_regs: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb};

    fn run_cycles(p: &ccr_ir::Program) -> SimStats {
        let layout = CodeLayout::of(p);
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
        Emulator::new(p).run(&mut NullCrb, &mut pipe).unwrap();
        pipe.into_stats()
    }

    /// A dependence chain cannot issue faster than one op per cycle.
    #[test]
    fn dependence_chain_is_serialized() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let mut x = f.movi(1);
        for _ in 0..32 {
            x = f.add(x, 1);
        }
        f.ret(&[Operand::Reg(x)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        assert!(
            stats.cycles >= 32,
            "chain of 32 adds: {} cycles",
            stats.cycles
        );
    }

    /// Independent operations exploit the wide issue once the
    /// I-cache is warm.
    #[test]
    fn independent_ops_issue_in_parallel() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let base = f.movi(1);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let mut last = base;
        // 32 independent adds off the same base register, per
        // iteration.
        for _ in 0..32 {
            last = f.add(base, 7);
        }
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(last)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        // 34 instructions per iteration; 4 int ALUs sustain ≥3 IPC in
        // steady state.
        assert!(stats.effective_ipc() > 2.5, "ipc {}", stats.effective_ipc());
    }

    /// A dependent multiply chain pays the multiply latency per link;
    /// a dependent add chain pays one cycle per link. Measured inside
    /// a loop so the I-cache is warm and the chain dominates.
    #[test]
    fn latencies_scale_dependence_chains() {
        let build = |kind: BinKind| {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main", 0, 1);
            let i = f.movi(0);
            let body = f.block();
            let done = f.block();
            f.jump(body);
            f.switch_to(body);
            let mut x = f.mov(i);
            for _ in 0..20 {
                x = f.bin(kind, x, 3);
            }
            f.inc(i, 1);
            f.br(CmpPred::Lt, i, 100, body, done);
            f.switch_to(done);
            f.ret(&[Operand::Reg(x)]);
            let id = pb.finish_function(f);
            pb.set_main(id);
            pb.finish()
        };
        let adds = run_cycles(&build(BinKind::Add));
        let muls = run_cycles(&build(BinKind::Mul));
        let m = MachineConfig::paper();
        let gap = muls.cycles.saturating_sub(adds.cycles);
        let expect = 100 * 20 * (m.mul_latency - m.int_latency);
        assert!(
            gap.abs_diff(expect) * 10 < expect,
            "latency gap {gap} should be near {expect} (adds {}, muls {})",
            adds.cycles,
            muls.cycles
        );
    }

    /// The single branch unit serializes branch-heavy code.
    #[test]
    fn branch_unit_is_a_bottleneck() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        // 100 iterations × 1 branch/cycle minimum.
        assert!(stats.cycles >= 100, "{}", stats.cycles);
    }

    /// A predictable loop branch trains the BTB; mispredicts stay
    /// near the loop exit count.
    #[test]
    fn predictable_branches_train() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 500, body, done);
        f.switch_to(done);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        assert!(
            stats.branch_mispredicts <= 2,
            "{}",
            stats.branch_mispredicts
        );
        assert!(stats.branch_correct >= 498);
    }

    /// Load misses charge the D-cache penalty on the consumer.
    #[test]
    fn cold_loads_slow_dependent_chains() {
        let build = |stride: i64, n: i64| {
            let mut pb = ProgramBuilder::new();
            let o = pb.object("o", 4096);
            let mut f = pb.function("main", 0, 1);
            let acc = f.movi(0);
            let i = f.movi(0);
            let body = f.block();
            let done = f.block();
            f.jump(body);
            f.switch_to(body);
            let idx = f.mul(i, stride);
            let v = f.load(o, idx);
            f.bin_into(BinKind::Add, acc, acc, v);
            f.inc(i, 1);
            f.br(CmpPred::Lt, i, n, body, done);
            f.switch_to(done);
            f.ret(&[Operand::Reg(acc)]);
            let id = pb.finish_function(f);
            pb.set_main(id);
            pb.finish()
        };
        // Stride 4 elements = 32 bytes = one miss per access; stride 1
        // hits 3 of 4 accesses.
        let miss_heavy = run_cycles(&build(4, 256));
        let hit_heavy = run_cycles(&build(1, 256));
        assert!(miss_heavy.dcache_misses > hit_heavy.dcache_misses);
        assert!(miss_heavy.cycles > hit_heavy.cycles);
    }

    /// Reuse hits cost less than executing the region; misses add the
    /// flush penalty.
    #[test]
    fn reuse_timing_hit_vs_miss() {
        use ccr_ir::{InstrExt, Op, RegionId};
        // Build an annotated region by hand (same shape as the
        // emulator tests) and run with a real buffer.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(17);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body); // patched to reuse
        f.switch_to(body);
        // A deliberately long dependence chain worth skipping.
        f.bin_into(BinKind::Mul, y, x, x);
        for _ in 0..12 {
            f.bin_into(BinKind::Add, y, y, 1);
        }
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, y);
        f.inc(count, 1);
        f.br(CmpPred::Lt, count, 100, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(ccr_ir::BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: ccr_ir::BlockId(2),
            cont: ccr_ir::BlockId(3),
        };
        let blen = func.block(ccr_ir::BlockId(2)).len();
        for k in 0..blen - 1 {
            func.block_mut(ccr_ir::BlockId(2)).instrs[k].ext = InstrExt::LIVE_OUT;
        }
        func.block_mut(ccr_ir::BlockId(2)).instrs[blen - 1].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();
        let _ = RegionId(0);

        // Baseline: no buffer, every reuse misses and pays the flush.
        let layout = CodeLayout::of(&p);
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout.clone());
        Emulator::new(&p).run(&mut NullCrb, &mut pipe).unwrap();
        let nobuf = pipe.into_stats();

        // Real buffer: one miss then 99 hits.
        let mut buf = crate::crb::ReuseBuffer::new(crate::crb::CrbConfig::paper());
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
        Emulator::new(&p).run(&mut buf, &mut pipe).unwrap();
        let with_buf = pipe.into_stats();

        assert_eq!(with_buf.reuse_hits, 99);
        assert_eq!(with_buf.reuse_misses, 1);
        assert!(with_buf.skipped_instrs >= 99 * 13);
        assert!(
            with_buf.cycles < nobuf.cycles,
            "reuse must win: {} vs {}",
            with_buf.cycles,
            nobuf.cycles
        );
        let region_stats = with_buf.regions[&region];
        assert_eq!(region_stats.hits, 99);
        assert_eq!(region_stats.misses, 1);
    }
}

//! The in-order timing pipeline.
//!
//! Consumes the emulator's dynamic instruction stream as a
//! [`TraceSink`] and charges cycles: in-order issue of up to
//! `issue_width` operations per cycle, bounded by functional-unit
//! counts and register readiness (a scoreboard per call frame), with
//! an I-cache on the fetch stream, a D-cache under loads and stores, a
//! BTB with a misprediction penalty, and the reuse-instruction timing
//! of Section 3.3: a hit waits for the instance's input registers
//! (the "read state" and "validate" stages), then commits its
//! live-out registers at retirement width; a miss flushes like a
//! branch misprediction.

use std::collections::HashMap;

use ccr_ir::{CodeLayout, FuncId, InstrExt, Op, OpClass, Reg, RegionId};
use ccr_profile::{ExecEvent, MissCause, TraceSink};

use crate::btb::Btb;
use crate::cache::Cache;
use crate::machine::MachineConfig;
use crate::snapshot::{BtbSnapshot, CacheSnapshot, PipelineFrameSnapshot, PipelineSnapshot};
use crate::stats::{AttrBucket, Attribution, CycleBuckets, FuncCycles, RegionDynStats, SimStats};

#[derive(Clone, Copy, Default)]
struct FuUse {
    int: u32,
    mem: u32,
    fp: u32,
    branch: u32,
}

/// Per-call-frame register scoreboard. The IR numbers registers
/// densely from zero within each function, so readiness and producer
/// kind live in plain vectors indexed by [`Reg::index`] — the hottest
/// structures in the simulator. Both grow on demand; a register past
/// the end reads as ready-at-0 / issue-produced, exactly the defaults
/// the old hash-map representation gave absent keys.
struct Frame {
    ready: Vec<u64>,
    ret_regs: Vec<Reg>,
    /// Attribution bucket of the producer of each ready register
    /// (profiled runs only; empty otherwise). A register absent here
    /// counts as issue-produced.
    src_kind: Vec<AttrBucket>,
}

impl Frame {
    fn new(ready: Vec<u64>, ret_regs: Vec<Reg>) -> Frame {
        Frame {
            ready,
            ret_regs,
            src_kind: Vec::new(),
        }
    }
}

/// Cycle-attribution bookkeeping, present only when profiling is
/// enabled. Strictly write-only with respect to timing: nothing in
/// the issue/readiness/fetch logic reads it, which is what makes a
/// profiled run cycle-identical to an unprofiled one.
struct AttrState {
    /// Function names indexed by `FuncId::index()`.
    names: Vec<String>,
    /// Watermark: every cycle below this has been charged to exactly
    /// one bucket. Advances to `t + 1` as each instruction issues at
    /// `t`, so bucket totals always sum to the cycle count.
    attributed: u64,
    /// What last advanced `fetch_ready` (I-cache fill, mispredict or
    /// reuse-miss flush ⇒ `Fetch`; reuse-hit redirect ⇒ `ReuseHit`).
    fetch_cause: AttrBucket,
    /// Region whose `reuse` instruction is in flight (set at the
    /// lookup, cleared at the hit commit or the region-end marker).
    cur_region: Option<RegionId>,
    /// Function charged most recently — the drain bucket lands here.
    last_func: FuncId,
    funcs: HashMap<FuncId, CycleBuckets>,
    regions: HashMap<RegionId, u64>,
    total: CycleBuckets,
}

impl AttrState {
    fn charge(&mut self, func: FuncId, bucket: AttrBucket, n: u64) {
        if n == 0 {
            return;
        }
        self.total.charge(bucket, n);
        self.funcs.entry(func).or_default().charge(bucket, n);
        if let Some(region) = self.cur_region {
            *self.regions.entry(region).or_default() += n;
        }
        self.last_func = func;
    }
}

/// The timing model. Create one per simulated run, attach it to an
/// emulation, then call [`Pipeline::into_stats`].
pub struct Pipeline {
    machine: MachineConfig,
    layout: CodeLayout,
    icache: Cache,
    dcache: Cache,
    btb: Btb,
    last_issue: u64,
    slot_cycle: u64,
    slots_used: u32,
    fu_used: FuUse,
    fetch_ready: u64,
    last_fetch_line: Option<u64>,
    frames: Vec<Frame>,
    pending_call: Option<(u64, Vec<Reg>)>,
    horizon: u64,
    stats: SimStats,
    attr: Option<Box<AttrState>>,
}

impl Pipeline {
    /// Creates a pipeline for a program laid out by `layout`.
    pub fn new(machine: MachineConfig, layout: CodeLayout) -> Pipeline {
        Pipeline {
            icache: Cache::new(machine.icache),
            dcache: Cache::new(machine.dcache),
            btb: Btb::new(machine.btb_entries),
            machine,
            layout,
            last_issue: 0,
            slot_cycle: 0,
            slots_used: 0,
            fu_used: FuUse::default(),
            fetch_ready: 0,
            last_fetch_line: None,
            frames: vec![Frame::new(Vec::new(), Vec::new())],
            pending_call: None,
            horizon: 0,
            stats: SimStats::default(),
            attr: None,
        }
    }

    /// Turns on cycle attribution. `func_names` is indexed by
    /// [`FuncId::index`] (pass the program's function names in id
    /// order). Profiling is observational only: the cycle counts of a
    /// profiled run are identical to an unprofiled one, and
    /// [`Pipeline::into_stats`] additionally carries an
    /// [`Attribution`] whose buckets sum to the total cycles.
    pub fn enable_profiling(&mut self, func_names: Vec<String>) {
        self.attr = Some(Box::new(AttrState {
            names: func_names,
            attributed: 0,
            fetch_cause: AttrBucket::Fetch,
            cur_region: None,
            last_func: FuncId(0),
            funcs: HashMap::new(),
            regions: HashMap::new(),
            total: CycleBuckets::default(),
        }));
    }

    /// Cycles accumulated so far — the same quantity
    /// [`Pipeline::into_stats`] reports at the end of the run. Usable
    /// mid-run for interval (windowed) measurements.
    pub fn cycles_so_far(&self) -> u64 {
        self.horizon.max(self.last_issue + 1)
    }

    /// Finalizes the run and returns its statistics.
    pub fn into_stats(mut self) -> SimStats {
        self.stats.cycles = self.cycles_so_far();
        self.stats.icache_hits = self.icache.hits();
        self.stats.icache_misses = self.icache.misses();
        self.stats.dcache_hits = self.dcache.hits();
        self.stats.dcache_misses = self.dcache.misses();
        self.stats.branch_correct = self.btb.correct();
        self.stats.branch_mispredicts = self.btb.mispredicts();
        if let Some(mut attr) = self.attr.take() {
            // Cycles past the last issue are the end-of-run drain.
            attr.cur_region = None;
            let drain = self.stats.cycles.saturating_sub(attr.attributed);
            let last = attr.last_func;
            attr.charge(last, AttrBucket::Drain, drain);
            let names = std::mem::take(&mut attr.names);
            let mut functions: Vec<FuncCycles> = attr
                .funcs
                .iter()
                .map(|(f, buckets)| FuncCycles {
                    name: names
                        .get(f.index())
                        .cloned()
                        .unwrap_or_else(|| format!("fn{}", f.index())),
                    buckets: *buckets,
                })
                .collect();
            functions.sort_by(|a, b| {
                b.buckets
                    .total()
                    .cmp(&a.buckets.total())
                    .then_with(|| a.name.cmp(&b.name))
            });
            let mut regions: Vec<(RegionId, u64)> =
                attr.regions.iter().map(|(r, c)| (*r, *c)).collect();
            regions.sort_by_key(|(r, _)| r.index());
            self.stats.attribution = Some(Attribution {
                total: attr.total,
                functions,
                regions,
            });
        }
        self.stats
    }

    fn fu_limit(&self, class: OpClass) -> (u32, fn(&mut FuUse) -> &mut u32) {
        match class {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Invalidate => {
                (self.machine.int_alus, |f| &mut f.int)
            }
            OpClass::Load | OpClass::Store => (self.machine.mem_ports, |f| &mut f.mem),
            OpClass::FpAlu => (self.machine.fp_alus, |f| &mut f.fp),
            OpClass::Branch | OpClass::Reuse => (self.machine.branch_units, |f| &mut f.branch),
        }
    }

    fn issue_at(&mut self, earliest: u64, class: OpClass) -> u64 {
        let (limit, slot) = self.fu_limit(class);
        let mut t = earliest.max(self.last_issue);
        loop {
            if t > self.slot_cycle {
                self.slot_cycle = t;
                self.slots_used = 0;
                self.fu_used = FuUse::default();
            }
            if self.slots_used < self.machine.issue_width && *slot(&mut self.fu_used) < limit {
                break;
            }
            t += 1;
        }
        self.slots_used += 1;
        *slot(&mut self.fu_used) += 1;
        self.last_issue = t;
        t
    }

    fn ready_of(&self, reg: Reg) -> u64 {
        self.frames
            .last()
            .expect("frame")
            .ready
            .get(reg.index())
            .copied()
            .unwrap_or(0)
    }

    fn set_ready(&mut self, reg: Reg, cycle: u64, kind: AttrBucket) {
        let profiled = self.attr.is_some();
        let frame = self.frames.last_mut().expect("frame");
        let idx = reg.index();
        if frame.ready.len() <= idx {
            frame.ready.resize(idx + 1, 0);
        }
        frame.ready[idx] = cycle;
        if profiled {
            if frame.src_kind.len() <= idx {
                frame.src_kind.resize(idx + 1, AttrBucket::Issue);
            }
            frame.src_kind[idx] = kind;
        }
        self.horizon = self.horizon.max(cycle);
    }

    fn redirect_fetch(&mut self, cycle: u64, cause: AttrBucket) {
        if cycle > self.fetch_ready {
            self.fetch_ready = cycle;
            if let Some(attr) = self.attr.as_mut() {
                attr.fetch_cause = cause;
            }
        }
        self.last_fetch_line = None;
    }

    fn region_stats(&mut self, region: RegionId) -> &mut RegionDynStats {
        self.stats.regions.entry(region).or_default()
    }

    /// Charges every cycle in `[attributed, t]` for an instruction
    /// issued at `t`: the stall gap to its dominant constraint
    /// (operand producer kind, or the pending fetch cause), the issue
    /// cycle itself to `Issue`.
    fn charge_cycles(&mut self, func: FuncId, t: u64, ops_ready: u64, bind: Option<Reg>) {
        let Some(attr) = self.attr.as_ref() else {
            return;
        };
        let start = attr.attributed;
        if t < start {
            return; // issued into an already-charged cycle
        }
        let bind_kind = bind
            .and_then(|r| {
                self.frames
                    .last()
                    .expect("frame")
                    .src_kind
                    .get(r.index())
                    .copied()
            })
            .unwrap_or(AttrBucket::Issue);
        let fetch_ready = self.fetch_ready;
        let attr = self.attr.as_mut().expect("profiling on");
        if t > start {
            let bucket = if ops_ready > start && ops_ready >= fetch_ready {
                bind_kind
            } else if fetch_ready > start {
                attr.fetch_cause
            } else {
                AttrBucket::Issue // structural: width or FU contention
            };
            attr.charge(func, bucket, t - start);
        }
        attr.charge(func, AttrBucket::Issue, 1);
        attr.attributed = t + 1;
    }

    /// Captures the complete timing state as plain data.
    ///
    /// # Errors
    ///
    /// Profiled pipelines cannot be snapshotted: attribution is
    /// observational-only state the snapshot format deliberately
    /// excludes (a replay would lose its history).
    pub fn snapshot(&self) -> Result<PipelineSnapshot, String> {
        if self.attr.is_some() {
            return Err("cannot snapshot a profiled pipeline".to_string());
        }
        Ok(PipelineSnapshot {
            last_issue: self.last_issue,
            slot_cycle: self.slot_cycle,
            slots_used: self.slots_used,
            fu_used: [
                self.fu_used.int,
                self.fu_used.mem,
                self.fu_used.fp,
                self.fu_used.branch,
            ],
            fetch_ready: self.fetch_ready,
            last_fetch_line: self.last_fetch_line,
            frames: self
                .frames
                .iter()
                .map(|f| PipelineFrameSnapshot {
                    ready: f.ready.clone(),
                    ret_regs: f.ret_regs.iter().map(|r| r.0).collect(),
                })
                .collect(),
            pending_call: self
                .pending_call
                .as_ref()
                .map(|(c, rs)| (*c, rs.iter().map(|r| r.0).collect())),
            horizon: self.horizon,
            stats: self.stats.clone(),
            icache: CacheSnapshot {
                tags: self.icache.tags().to_vec(),
                hits: self.icache.hits(),
                misses: self.icache.misses(),
            },
            dcache: CacheSnapshot {
                tags: self.dcache.tags().to_vec(),
                hits: self.dcache.hits(),
                misses: self.dcache.misses(),
            },
            btb: BtbSnapshot {
                counters: self.btb.counters().to_vec(),
                correct: self.btb.correct(),
                mispredicts: self.btb.mispredicts(),
            },
        })
    }

    /// Rebuilds a mid-run pipeline from a snapshot. The restored
    /// pipeline is unprofiled (matching the snapshot contract).
    ///
    /// # Errors
    ///
    /// Returns a one-line description when cache/BTB geometry in the
    /// snapshot does not match `machine`, or the frame stack is empty.
    pub fn restore(
        machine: MachineConfig,
        layout: CodeLayout,
        snap: &PipelineSnapshot,
    ) -> Result<Pipeline, String> {
        if snap.frames.is_empty() {
            return Err("pipeline snapshot has no frames".to_string());
        }
        let mut p = Pipeline::new(machine, layout);
        p.icache = Cache::restore(
            machine.icache,
            snap.icache.tags.clone(),
            snap.icache.hits,
            snap.icache.misses,
        )
        .map_err(|e| format!("icache: {e}"))?;
        p.dcache = Cache::restore(
            machine.dcache,
            snap.dcache.tags.clone(),
            snap.dcache.hits,
            snap.dcache.misses,
        )
        .map_err(|e| format!("dcache: {e}"))?;
        p.btb = Btb::restore(
            machine.btb_entries,
            snap.btb.counters.clone(),
            snap.btb.correct,
            snap.btb.mispredicts,
        )?;
        p.last_issue = snap.last_issue;
        p.slot_cycle = snap.slot_cycle;
        p.slots_used = snap.slots_used;
        p.fu_used = FuUse {
            int: snap.fu_used[0],
            mem: snap.fu_used[1],
            fp: snap.fu_used[2],
            branch: snap.fu_used[3],
        };
        p.fetch_ready = snap.fetch_ready;
        p.last_fetch_line = snap.last_fetch_line;
        p.frames = snap
            .frames
            .iter()
            .map(|f| {
                Frame::new(
                    f.ready.clone(),
                    f.ret_regs.iter().map(|r| Reg(*r)).collect(),
                )
            })
            .collect();
        p.pending_call = snap
            .pending_call
            .as_ref()
            .map(|(c, rs)| (*c, rs.iter().map(|r| Reg(*r)).collect()));
        p.horizon = snap.horizon;
        p.stats = snap.stats.clone();
        Ok(p)
    }

    /// Folds the full timing state into `push` (fingerprint support).
    /// Profile-only state (`attr`, per-frame `src_kind`) is excluded:
    /// it is observational and never feeds back into timing.
    pub fn fold_state(&self, push: &mut dyn FnMut(u64)) {
        push(self.last_issue);
        push(self.slot_cycle);
        push(u64::from(self.slots_used));
        push(u64::from(self.fu_used.int));
        push(u64::from(self.fu_used.mem));
        push(u64::from(self.fu_used.fp));
        push(u64::from(self.fu_used.branch));
        push(self.fetch_ready);
        match self.last_fetch_line {
            None => push(0),
            Some(line) => {
                push(1);
                push(line);
            }
        }
        push(self.frames.len() as u64);
        for f in &self.frames {
            push(f.ready.len() as u64);
            for r in &f.ready {
                push(*r);
            }
            push(f.ret_regs.len() as u64);
            for r in &f.ret_regs {
                push(u64::from(r.0));
            }
        }
        match &self.pending_call {
            None => push(0),
            Some((c, rs)) => {
                push(1);
                push(*c);
                push(rs.len() as u64);
                for r in rs {
                    push(u64::from(r.0));
                }
            }
        }
        push(self.horizon);
        self.stats.fold_state(push);
        self.icache.fold_state(push);
        self.dcache.fold_state(push);
        self.btb.fold_state(push);
    }
}

impl TraceSink for Pipeline {
    fn on_exec(&mut self, event: &ExecEvent<'_>) {
        let instr = event.instr;
        let addr = self.layout.code_addr(instr.id);
        self.stats.dyn_instrs += 1;

        // Fetch: one I-cache access per new line on the fetch stream.
        let line = addr / self.machine.icache.line_bytes;
        if self.last_fetch_line != Some(line) {
            let extra = self.icache.access(addr);
            self.fetch_ready += extra;
            self.last_fetch_line = Some(line);
            if extra > 0 {
                if let Some(attr) = self.attr.as_mut() {
                    attr.fetch_cause = AttrBucket::Fetch;
                }
            }
        }

        // Operand readiness: a reuse hit waits on the matched
        // instance's input bank (the validate stage) — unless the
        // machine value-speculates across validation, in which case
        // the live-outs are forwarded immediately and validation
        // retires off the critical path.
        let owned_srcs;
        let src_regs: &[Reg] = match &event.reuse {
            Some(r) if r.hit => {
                if self.machine.speculative_validation {
                    &[]
                } else {
                    // Borrow the lookup's validation read set in place
                    // — the hottest consumer of a reuse hit, so it
                    // must not clone per event.
                    &r.inputs
                }
            }
            _ => {
                owned_srcs = instr.src_regs();
                &owned_srcs
            }
        };
        let mut ops_ready = 0;
        let mut bind: Option<Reg> = None;
        for r in src_regs {
            let at = self.ready_of(*r);
            if at > ops_ready {
                ops_ready = at;
                bind = Some(*r);
            }
        }
        let earliest = self.fetch_ready.max(ops_ready);

        let class = instr.class();
        let t = self.issue_at(earliest, class);
        self.horizon = self.horizon.max(t + 1);

        if self.attr.is_some() {
            if let Op::Reuse { region, .. } = &instr.op {
                self.attr.as_mut().expect("profiling on").cur_region = Some(*region);
            }
            self.charge_cycles(event.func, t, ops_ready, bind);
        }

        match &instr.op {
            Op::Binary { dst, .. } => {
                let lat = match class {
                    OpClass::IntMul => self.machine.mul_latency,
                    OpClass::FpAlu => self.machine.fp_latency,
                    _ => self.machine.int_latency,
                };
                self.set_ready(*dst, t + lat, AttrBucket::Issue);
            }
            Op::Unary { dst, .. } => {
                let lat = if class == OpClass::FpAlu {
                    self.machine.fp_latency
                } else {
                    self.machine.int_latency
                };
                self.set_ready(*dst, t + lat, AttrBucket::Issue);
            }
            Op::Cmp { dst, .. } => {
                self.set_ready(*dst, t + self.machine.int_latency, AttrBucket::Issue);
            }
            Op::Load { dst, .. } => {
                let mem = event.mem.expect("load has a memory access");
                let daddr = self.layout.data_addr(mem.object, mem.index);
                let extra = self.dcache.access(daddr);
                self.set_ready(
                    *dst,
                    t + self.machine.load_latency + extra,
                    AttrBucket::Memory,
                );
            }
            Op::Store { .. } => {
                let mem = event.mem.expect("store has a memory access");
                let daddr = self.layout.data_addr(mem.object, mem.index);
                let _ = self.dcache.access(daddr);
            }
            Op::Branch { .. } => {
                let taken = event.taken.expect("branch outcome");
                let correct = self.btb.update(addr, taken);
                if !correct {
                    self.redirect_fetch(t + 1 + self.machine.mispredict_penalty, AttrBucket::Fetch);
                } else if taken {
                    // Correctly-predicted taken branch: fetch stream
                    // moves to a new line next access.
                    self.last_fetch_line = None;
                }
            }
            Op::Jump { .. } => {
                self.last_fetch_line = None;
            }
            Op::Call { rets, .. } => {
                self.pending_call = Some((t + 1, rets.clone()));
                self.last_fetch_line = None;
            }
            Op::Ret { .. } => {
                self.last_fetch_line = None;
            }
            Op::Reuse { region, .. } => {
                let outcome = event.reuse.expect("reuse outcome");
                if outcome.hit {
                    // Commit live-outs at retirement width after the
                    // validation latency (1 cycle when speculating:
                    // the buffer read itself).
                    let lat = if self.machine.speculative_validation {
                        1
                    } else {
                        self.machine.reuse_hit_latency
                    };
                    let groups =
                        (outcome.outputs.len() as u64).div_ceil(self.machine.issue_width as u64);
                    let done = t + lat + groups;
                    for r in outcome.outputs.iter() {
                        self.set_ready(*r, done, AttrBucket::ReuseHit);
                    }
                    self.stats.reuse_hits += 1;
                    self.stats.skipped_instrs += outcome.skipped_instrs;
                    let rs = self.region_stats(*region);
                    rs.hits += 1;
                    rs.skipped_instrs += outcome.skipped_instrs;
                    // Fetch redirects to the continuation.
                    let redirect = if self.machine.speculative_validation {
                        1
                    } else {
                        self.machine.reuse_hit_latency
                    };
                    self.redirect_fetch(t + redirect, AttrBucket::ReuseHit);
                    if let Some(attr) = self.attr.as_mut() {
                        attr.cur_region = None;
                    }
                } else {
                    self.stats.reuse_misses += 1;
                    let cause = outcome.miss_cause.unwrap_or(MissCause::Cold);
                    let rs = self.region_stats(*region);
                    rs.misses += 1;
                    rs.count_miss_cause(cause);
                    self.redirect_fetch(t + 1 + self.machine.reuse_miss_penalty, AttrBucket::Fetch);
                }
            }
            Op::Invalidate { .. } | Op::Nop => {}
        }

        if instr.ext.contains(InstrExt::REGION_END) {
            if let Some(attr) = self.attr.as_mut() {
                attr.cur_region = None;
            }
        }
    }

    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        let (ready_at, ret_regs) = self
            .pending_call
            .take()
            .unwrap_or((self.last_issue + 1, Vec::new()));
        // Parameters become available once the call has issued; the
        // callee numbers them r0..rN.
        self.frames.push(Frame::new(vec![ready_at; 64], ret_regs));
    }

    fn on_ret(&mut self, _from: FuncId) {
        let done = self.frames.pop().expect("matched call frame");
        let at = self.last_issue + 1;
        if let Some(_caller) = self.frames.last() {
            for r in done.ret_regs {
                self.set_ready(r, at, AttrBucket::Issue);
            }
        } else {
            // Returning from main: keep a frame for robustness.
            self.frames.push(Frame::new(Vec::new(), Vec::new()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_ir::{BinKind, CmpPred, Operand, ProgramBuilder};
    use ccr_profile::{Emulator, NullCrb};

    fn run_cycles(p: &ccr_ir::Program) -> SimStats {
        let layout = CodeLayout::of(p);
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
        Emulator::new(p).run(&mut NullCrb, &mut pipe).unwrap();
        pipe.into_stats()
    }

    /// A dependence chain cannot issue faster than one op per cycle.
    #[test]
    fn dependence_chain_is_serialized() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let mut x = f.movi(1);
        for _ in 0..32 {
            x = f.add(x, 1);
        }
        f.ret(&[Operand::Reg(x)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        assert!(
            stats.cycles >= 32,
            "chain of 32 adds: {} cycles",
            stats.cycles
        );
    }

    /// Independent operations exploit the wide issue once the
    /// I-cache is warm.
    #[test]
    fn independent_ops_issue_in_parallel() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let base = f.movi(1);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let mut last = base;
        // 32 independent adds off the same base register, per
        // iteration.
        for _ in 0..32 {
            last = f.add(base, 7);
        }
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(last)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        // 34 instructions per iteration; 4 int ALUs sustain ≥3 IPC in
        // steady state.
        assert!(stats.effective_ipc() > 2.5, "ipc {}", stats.effective_ipc());
    }

    /// A dependent multiply chain pays the multiply latency per link;
    /// a dependent add chain pays one cycle per link. Measured inside
    /// a loop so the I-cache is warm and the chain dominates.
    #[test]
    fn latencies_scale_dependence_chains() {
        let build = |kind: BinKind| {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main", 0, 1);
            let i = f.movi(0);
            let body = f.block();
            let done = f.block();
            f.jump(body);
            f.switch_to(body);
            let mut x = f.mov(i);
            for _ in 0..20 {
                x = f.bin(kind, x, 3);
            }
            f.inc(i, 1);
            f.br(CmpPred::Lt, i, 100, body, done);
            f.switch_to(done);
            f.ret(&[Operand::Reg(x)]);
            let id = pb.finish_function(f);
            pb.set_main(id);
            pb.finish()
        };
        let adds = run_cycles(&build(BinKind::Add));
        let muls = run_cycles(&build(BinKind::Mul));
        let m = MachineConfig::paper();
        let gap = muls.cycles.saturating_sub(adds.cycles);
        let expect = 100 * 20 * (m.mul_latency - m.int_latency);
        assert!(
            gap.abs_diff(expect) * 10 < expect,
            "latency gap {gap} should be near {expect} (adds {}, muls {})",
            adds.cycles,
            muls.cycles
        );
    }

    /// The single branch unit serializes branch-heavy code.
    #[test]
    fn branch_unit_is_a_bottleneck() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 100, body, done);
        f.switch_to(done);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        // 100 iterations × 1 branch/cycle minimum.
        assert!(stats.cycles >= 100, "{}", stats.cycles);
    }

    /// A predictable loop branch trains the BTB; mispredicts stay
    /// near the loop exit count.
    #[test]
    fn predictable_branches_train() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 500, body, done);
        f.switch_to(done);
        f.ret(&[]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_cycles(&pb.finish());
        assert!(
            stats.branch_mispredicts <= 2,
            "{}",
            stats.branch_mispredicts
        );
        assert!(stats.branch_correct >= 498);
    }

    /// Load misses charge the D-cache penalty on the consumer.
    #[test]
    fn cold_loads_slow_dependent_chains() {
        let build = |stride: i64, n: i64| {
            let mut pb = ProgramBuilder::new();
            let o = pb.object("o", 4096);
            let mut f = pb.function("main", 0, 1);
            let acc = f.movi(0);
            let i = f.movi(0);
            let body = f.block();
            let done = f.block();
            f.jump(body);
            f.switch_to(body);
            let idx = f.mul(i, stride);
            let v = f.load(o, idx);
            f.bin_into(BinKind::Add, acc, acc, v);
            f.inc(i, 1);
            f.br(CmpPred::Lt, i, n, body, done);
            f.switch_to(done);
            f.ret(&[Operand::Reg(acc)]);
            let id = pb.finish_function(f);
            pb.set_main(id);
            pb.finish()
        };
        // Stride 4 elements = 32 bytes = one miss per access; stride 1
        // hits 3 of 4 accesses.
        let miss_heavy = run_cycles(&build(4, 256));
        let hit_heavy = run_cycles(&build(1, 256));
        assert!(miss_heavy.dcache_misses > hit_heavy.dcache_misses);
        assert!(miss_heavy.cycles > hit_heavy.cycles);
    }

    /// A hand-annotated reusing loop (same shape as the emulator
    /// tests): one region, 100 trips, 13-instruction body.
    fn reusing_region_program() -> (ccr_ir::Program, RegionId) {
        use ccr_ir::{InstrExt, Op};
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, 1);
        let x = f.movi(17);
        let count = f.movi(0);
        let acc = f.movi(0);
        let y = f.fresh();
        let reuse_blk = f.block();
        let body = f.block();
        let cont = f.block();
        let done = f.block();
        f.jump(reuse_blk);
        f.switch_to(reuse_blk);
        f.jump(body); // patched to reuse
        f.switch_to(body);
        // A deliberately long dependence chain worth skipping.
        f.bin_into(BinKind::Mul, y, x, x);
        for _ in 0..12 {
            f.bin_into(BinKind::Add, y, y, 1);
        }
        f.jump(cont);
        f.switch_to(cont);
        f.bin_into(BinKind::Add, acc, acc, y);
        f.inc(count, 1);
        f.br(CmpPred::Lt, count, 100, reuse_blk, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let mut p = pb.finish();
        let region = p.fresh_region_id();
        let func = p.function_mut(id);
        func.block_mut(ccr_ir::BlockId(1)).instrs[0].op = Op::Reuse {
            region,
            body: ccr_ir::BlockId(2),
            cont: ccr_ir::BlockId(3),
        };
        let blen = func.block(ccr_ir::BlockId(2)).len();
        for k in 0..blen - 1 {
            func.block_mut(ccr_ir::BlockId(2)).instrs[k].ext = InstrExt::LIVE_OUT;
        }
        func.block_mut(ccr_ir::BlockId(2)).instrs[blen - 1].ext = InstrExt::REGION_END;
        ccr_ir::verify_program(&p).unwrap();
        (p, region)
    }

    /// Reuse hits cost less than executing the region; misses add the
    /// flush penalty.
    #[test]
    fn reuse_timing_hit_vs_miss() {
        let (p, region) = reusing_region_program();

        // Baseline: no buffer, every reuse misses and pays the flush.
        let layout = CodeLayout::of(&p);
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout.clone());
        Emulator::new(&p).run(&mut NullCrb, &mut pipe).unwrap();
        let nobuf = pipe.into_stats();

        // Real buffer: one miss then 99 hits.
        let mut buf = crate::crb::ReuseBuffer::new(crate::crb::CrbConfig::paper());
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
        Emulator::new(&p).run(&mut buf, &mut pipe).unwrap();
        let with_buf = pipe.into_stats();

        assert_eq!(with_buf.reuse_hits, 99);
        assert_eq!(with_buf.reuse_misses, 1);
        assert!(with_buf.skipped_instrs >= 99 * 13);
        assert!(
            with_buf.cycles < nobuf.cycles,
            "reuse must win: {} vs {}",
            with_buf.cycles,
            nobuf.cycles
        );
        let region_stats = with_buf.regions[&region];
        assert_eq!(region_stats.hits, 99);
        assert_eq!(region_stats.misses, 1);
    }

    fn run_profiled(p: &ccr_ir::Program, with_crb: bool) -> SimStats {
        let layout = CodeLayout::of(p);
        let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
        pipe.enable_profiling(p.functions().iter().map(|f| f.name().to_string()).collect());
        if with_crb {
            let mut buf = crate::crb::ReuseBuffer::new(crate::crb::CrbConfig::paper());
            Emulator::new(p).run(&mut buf, &mut pipe).unwrap();
        } else {
            Emulator::new(p).run(&mut NullCrb, &mut pipe).unwrap();
        }
        pipe.into_stats()
    }

    /// Profiling must not perturb timing: cycles (and every other
    /// counter) are identical with attribution on or off.
    #[test]
    fn profiling_is_cycle_invariant() {
        let (p, _region) = reusing_region_program();
        for with_crb in [false, true] {
            let layout = CodeLayout::of(&p);
            let mut pipe = Pipeline::new(MachineConfig::paper(), layout);
            if with_crb {
                let mut buf = crate::crb::ReuseBuffer::new(crate::crb::CrbConfig::paper());
                Emulator::new(&p).run(&mut buf, &mut pipe).unwrap();
            } else {
                Emulator::new(&p).run(&mut NullCrb, &mut pipe).unwrap();
            }
            let plain = pipe.into_stats();
            let profiled = run_profiled(&p, with_crb);
            assert_eq!(plain.cycles, profiled.cycles, "with_crb={with_crb}");
            assert_eq!(plain.dyn_instrs, profiled.dyn_instrs);
            assert_eq!(plain.reuse_hits, profiled.reuse_hits);
            assert_eq!(plain.branch_mispredicts, profiled.branch_mispredicts);
            assert!(plain.attribution.is_none());
            assert!(profiled.attribution.is_some());
        }
    }

    /// Every cycle is charged to exactly one bucket: the bucket
    /// totals, and the per-function rows, sum to the cycle count.
    #[test]
    fn attribution_buckets_sum_to_total_cycles() {
        let (p, region) = reusing_region_program();
        let stats = run_profiled(&p, true);
        let attr = stats.attribution.as_ref().expect("profiled");
        assert_eq!(attr.total.total(), stats.cycles, "{attr:?}");
        let func_sum: u64 = attr.functions.iter().map(|f| f.buckets.total()).sum();
        assert_eq!(func_sum, stats.cycles);
        assert_eq!(attr.functions[0].name, "main");
        assert!(
            attr.total.reuse_hit > 0,
            "99 hits must charge cycles: {attr:?}"
        );
        // The region is live from the reuse lookup to the region end,
        // so it accrues cycles on both the miss and hit paths.
        let region_cycles = attr
            .regions
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(region_cycles > 0, "{attr:?}");
        assert!(region_cycles <= stats.cycles);
    }

    /// Memory waits show up in the memory bucket for a load-bound
    /// dependence chain.
    #[test]
    fn memory_stalls_land_in_the_memory_bucket() {
        let mut pb = ProgramBuilder::new();
        let o = pb.object("o", 4096);
        let mut f = pb.function("main", 0, 1);
        let acc = f.movi(0);
        let i = f.movi(0);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let idx = f.mul(i, 4);
        let v = f.load(o, idx);
        f.bin_into(BinKind::Add, acc, acc, v);
        f.inc(i, 1);
        f.br(CmpPred::Lt, i, 256, body, done);
        f.switch_to(done);
        f.ret(&[Operand::Reg(acc)]);
        let id = pb.finish_function(f);
        pb.set_main(id);
        let stats = run_profiled(&pb.finish(), false);
        let attr = stats.attribution.as_ref().unwrap();
        assert_eq!(attr.total.total(), stats.cycles);
        assert!(attr.total.memory > 0, "{attr:?}");
    }
}

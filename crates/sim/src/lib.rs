#![warn(missing_docs)]

//! # ccr-sim — cycle-level simulation of the CCR microarchitecture
//!
//! Models the evaluation machine of Section 5.1 of the paper: a
//! 6-issue in-order processor (four integer ALUs, two memory ports,
//! two floating-point ALUs, one branch unit; 1-cycle integer and
//! 2-cycle load latencies, after the HP PA-7100), split 32 KB
//! direct-mapped instruction and data caches with 32-byte lines and a
//! 12-cycle miss penalty, a 4K-entry BTB of 2-bit saturating counters
//! with an 8-cycle misprediction penalty — plus the **Computation
//! Reuse Buffer** and the reuse pipeline of Section 3.3 (access CRB →
//! read state → validate instances → commit live-outs), with reuse
//! failure costing a misprediction-like flush.
//!
//! Simulation is *execution-driven*: the [`ccr_profile::Emulator`]
//! produces the dynamic instruction stream (consulting the
//! [`crb::ReuseBuffer`] functionally), and the [`pipeline::Pipeline`]
//! charges cycles as a [`ccr_profile::TraceSink`].

pub mod btb;
pub mod cache;
pub mod crb;
pub mod fingerprint;
pub mod machine;
pub mod pipeline;
pub mod session;
pub mod simulator;
pub mod snapshot;
pub mod stats;
pub mod telemetry;

pub use btb::Btb;
pub use cache::{Cache, CacheConfig};
pub use crb::{CrbConfig, CrbEvent, CrbEventKind, NonuniformConfig, Replacement, ReuseBuffer};
pub use fingerprint::{
    FingerprintStream, Fold, WindowDigest, DEFAULT_FINGERPRINT_WINDOW, FNV_OFFSET, FNV_PRIME,
};
pub use machine::MachineConfig;
pub use pipeline::Pipeline;
pub use session::SimSession;
pub use simulator::{simulate, simulate_baseline, SimOutcome};
pub use snapshot::{
    load_snapshot, parse_snapshot, save_snapshot, write_snapshot, SimSnapshot, SNAP_VERSION,
};
pub use stats::{
    AttrBucket, Attribution, CrbStats, CycleBuckets, FuncCycles, RegionDynStats, SimStats,
};
pub use telemetry::{
    simulate_traced, simulate_traced_cfg, TelemetryBridge, TraceConfig, DEFAULT_IPC_WINDOW,
    DEFAULT_SAMPLE_PERIOD,
};

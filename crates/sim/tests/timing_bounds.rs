//! Timing-model sanity properties on random programs: the pipeline
//! can never report fewer cycles than its structural resources allow,
//! and relaxing a resource never makes a run slower in ways the model
//! forbids.

use ccr_ir::{BinKind, CmpPred, OpClass, Operand, Program, ProgramBuilder};
use ccr_profile::{EmuConfig, Emulator, ExecEvent, NullCrb, TraceSink};
use ccr_sim::{simulate_baseline, MachineConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    ops: Vec<(u8, u8)>,
    trips: i64,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((0u8..12, any::<u8>()), 1..20),
        1i64..50,
    )
        .prop_map(|(ops, trips)| Spec { ops, trips })
}

fn build(s: &Spec) -> Program {
    let mut pb = ProgramBuilder::new();
    let t = pb.table("t", (0..16).collect());
    let mut f = pb.function("main", 0, 1);
    let acc = f.movi(0);
    let i = f.movi(0);
    let body = f.block();
    let done = f.block();
    f.jump(body);
    f.switch_to(body);
    let m = f.and(i, 15);
    let mut last = f.load(t, m);
    for &(k, sel) in &s.ops {
        last = match k % 6 {
            0 => f.add(last, i64::from(sel)),
            1 => f.mul(last, 3),
            2 => f.xor(last, acc),
            3 => f.bin(BinKind::FAdd, last, 7),
            4 => {
                let idx = f.and(last, 15);
                f.load(t, idx)
            }
            _ => f.sar(last, 1),
        };
    }
    f.bin_into(BinKind::Add, acc, acc, last);
    f.inc(i, 1);
    f.br(CmpPred::Lt, i, s.trips, body, done);
    f.switch_to(done);
    f.ret(&[Operand::Reg(acc)]);
    let id = pb.finish_function(f);
    pb.set_main(id);
    pb.finish()
}

/// Counts dynamic instructions by functional-unit class.
#[derive(Default)]
struct ClassCounter {
    int: u64,
    mem: u64,
    fp: u64,
    branch: u64,
    total: u64,
}

impl TraceSink for ClassCounter {
    fn on_exec(&mut self, e: &ExecEvent<'_>) {
        self.total += 1;
        match e.instr.class() {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Invalidate => self.int += 1,
            OpClass::Load | OpClass::Store => self.mem += 1,
            OpClass::FpAlu => self.fp += 1,
            OpClass::Branch | OpClass::Reuse => self.branch += 1,
        }
    }
}

fn emu() -> EmuConfig {
    EmuConfig {
        max_instrs: 1_000_000,
        max_depth: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural lower bounds: issue width and per-class unit counts.
    #[test]
    fn cycles_respect_structural_bounds(s in spec()) {
        let p = build(&s);
        let machine = MachineConfig::paper();
        let out = simulate_baseline(&p, &machine, emu()).unwrap();
        let mut counts = ClassCounter::default();
        Emulator::with_config(&p, emu())
            .run(&mut NullCrb, &mut counts)
            .unwrap();
        let width_bound = counts.total.div_ceil(u64::from(machine.issue_width));
        let int_bound = counts.int.div_ceil(u64::from(machine.int_alus));
        let mem_bound = counts.mem.div_ceil(u64::from(machine.mem_ports));
        let fp_bound = counts.fp.div_ceil(u64::from(machine.fp_alus));
        let br_bound = counts.branch.div_ceil(u64::from(machine.branch_units));
        for (name, bound) in [
            ("issue width", width_bound),
            ("int alus", int_bound),
            ("mem ports", mem_bound),
            ("fp alus", fp_bound),
            ("branch unit", br_bound),
        ] {
            prop_assert!(
                out.stats.cycles >= bound,
                "{}: {} cycles < bound {}",
                name,
                out.stats.cycles,
                bound
            );
        }
    }

    /// A wider machine is never slower than the paper machine, and a
    /// machine with a crippled branch unit is never faster.
    #[test]
    fn resource_monotonicity(s in spec()) {
        let p = build(&s);
        let paper = simulate_baseline(&p, &MachineConfig::paper(), emu()).unwrap();
        let wide = MachineConfig {
            issue_width: 12,
            int_alus: 8,
            mem_ports: 4,
            fp_alus: 4,
            branch_units: 2,
            ..MachineConfig::paper()
        };
        let wide_out = simulate_baseline(&p, &wide, emu()).unwrap();
        prop_assert!(
            wide_out.stats.cycles <= paper.stats.cycles,
            "wider machine slower: {} vs {}",
            wide_out.stats.cycles,
            paper.stats.cycles
        );
        // Identical functional results regardless of the machine.
        prop_assert_eq!(wide_out.run.returned, paper.run.returned);
    }

    /// Zero-penalty memory subsystem is a lower bound on the default
    /// machine.
    #[test]
    fn cache_penalties_only_add_cycles(s in spec()) {
        let p = build(&s);
        let paper = simulate_baseline(&p, &MachineConfig::paper(), emu()).unwrap();
        let mut free_mem = MachineConfig::paper();
        free_mem.icache.miss_penalty = 0;
        free_mem.dcache.miss_penalty = 0;
        free_mem.mispredict_penalty = 0;
        let free = simulate_baseline(&p, &free_mem, emu()).unwrap();
        prop_assert!(
            free.stats.cycles <= paper.stats.cycles,
            "penalty-free machine slower: {} vs {}",
            free.stats.cycles,
            paper.stats.cycles
        );
    }
}

//! Model-based property tests for the Computation Reuse Buffer.
//!
//! A reference model tracks, for every region, the full history of
//! recorded instances. Against it we check the buffer's two safety
//! properties and its LRU liveness property:
//!
//! * **soundness** — a hit's outputs always equal some instance
//!   recorded earlier for exactly the matching inputs;
//! * **capacity liveness** — with enough entries and instances, a
//!   just-recorded instance is found by the next matching lookup;
//! * **LRU retention** — the `instances` most recently used input sets
//!   of a region are always retained (absent tag conflicts).

use std::collections::HashMap;

use ccr_ir::{Reg, RegionId, Value};
use ccr_profile::{CrbModel, RecordedInstance, ReuseLookup};
use ccr_sim::{CrbConfig, Replacement, ReuseBuffer};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    /// Record an instance for region `r` with input value `v` and a
    /// derived output.
    Record { r: u8, v: i8, mem: bool },
    /// Look region `r` up with input value `v`.
    Lookup { r: u8, v: i8 },
    /// Invalidate region `r`.
    Invalidate { r: u8 },
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..6, any::<i8>(), any::<bool>()).prop_map(|(r, v, mem)| Cmd::Record { r, v, mem }),
            (0u8..6, any::<i8>()).prop_map(|(r, v)| Cmd::Lookup { r, v }),
            (0u8..6).prop_map(|r| Cmd::Invalidate { r }),
        ],
        1..120,
    )
}

fn instance(r: u8, v: i8, mem: bool) -> RecordedInstance {
    RecordedInstance {
        inputs: vec![(Reg(0), Value::from_int(v as i64))],
        // Output derived from (region, input): lets soundness be
        // checked without tracking every record separately.
        outputs: vec![(Reg(1), Value::from_int(v as i64 * 1000 + r as i64))],
        accesses_memory: mem,
        body_instrs: 5,
    }
}

fn lookup(buf: &mut ReuseBuffer, r: u8, v: i8) -> Option<ReuseLookup> {
    buf.lookup(RegionId(r as u32), &mut |reg| {
        assert_eq!(reg, Reg(0));
        Value::from_int(v as i64)
    })
}

/// Three-input instance for the batched-scan twin test: the inputs
/// are all derived from `v`, so a matching `v` matches the whole row
/// and the read-register closure can serve every register.
fn wide_instance(r: u8, v: i8, mem: bool) -> RecordedInstance {
    let v = v as i64;
    RecordedInstance {
        inputs: vec![
            (Reg(0), Value::from_int(v)),
            (Reg(2), Value::from_int(v.wrapping_mul(3))),
            (Reg(5), Value::from_int(v ^ 7)),
        ],
        outputs: vec![(Reg(1), Value::from_int(v * 1000 + r as i64))],
        accesses_memory: mem,
        body_instrs: 5,
    }
}

fn wide_lookup(buf: &mut ReuseBuffer, r: u8, v: i8) -> Option<ReuseLookup> {
    let v = v as i64;
    buf.lookup(RegionId(r as u32), &mut |reg| match reg {
        Reg(0) => Value::from_int(v),
        Reg(2) => Value::from_int(v.wrapping_mul(3)),
        Reg(5) => Value::from_int(v ^ 7),
        other => panic!("unexpected register read {other:?}"),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Soundness under arbitrary geometry and command sequences.
    #[test]
    fn hits_are_always_sound(
        script in cmds(),
        entries in 1usize..8,
        instances in 1usize..6,
        policy in 0u8..3,
    ) {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries,
            instances,
            input_bank: 8,
            output_bank: 8,
            replacement: match policy {
                0 => Replacement::Lru,
                1 => Replacement::Fifo,
                _ => Replacement::Random,
            },
            nonuniform: None,
        });
        // Reference: was (region, input) ever recorded (and not
        // memory-invalidated since)?
        let mut recorded: HashMap<(u8, i8), bool> = HashMap::new();
        for cmd in &script {
            match *cmd {
                Cmd::Record { r, v, mem } => {
                    buf.record(RegionId(r as u32), instance(r, v, mem));
                    recorded.insert((r, v), mem);
                }
                Cmd::Lookup { r, v } => {
                    if let Some(hit) = lookup(&mut buf, r, v) {
                        // Soundness: the outputs must be the derived
                        // value for exactly (r, v), and (r, v) must
                        // have been recorded at some point.
                        prop_assert!(recorded.contains_key(&(r, v)),
                            "hit on never-recorded ({r}, {v})");
                        prop_assert_eq!(
                            hit.outputs,
                            vec![(Reg(1), Value::from_int(v as i64 * 1000 + r as i64))]
                        );
                        prop_assert_eq!(hit.skipped_instrs, 5);
                    }
                }
                Cmd::Invalidate { r } => {
                    buf.invalidate(RegionId(r as u32));
                    // Memory instances of r are now dead in the model
                    // too (the buffer may also have evicted stateless
                    // ones; soundness only needs "was recorded").
                    let _ = r;
                }
            }
        }
    }

    /// With one entry per region and enough instances, a recorded
    /// instance is immediately findable.
    #[test]
    fn record_then_lookup_hits_when_capacity_suffices(
        values in prop::collection::vec(any::<i8>(), 1..6),
        r in 0u8..6,
    ) {
        let mut distinct = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 8,
            instances: distinct.len().max(1),
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        for &v in &values {
            buf.record(RegionId(r as u32), instance(r, v, false));
        }
        for &v in &distinct {
            prop_assert!(
                lookup(&mut buf, r, v).is_some(),
                "value {v} lost despite sufficient capacity"
            );
        }
    }

    /// The fingerprint pre-filter is a host-speed optimization only:
    /// a buffer with the filter disabled, driven through an identical
    /// command script, must produce identical lookup outcomes, miss
    /// causes, and statistics.
    #[test]
    fn fingerprint_filter_never_changes_outcomes(
        script in cmds(),
        entries in 1usize..8,
        instances in 1usize..6,
        policy in 0u8..3,
    ) {
        let config = CrbConfig {
            entries,
            instances,
            input_bank: 8,
            output_bank: 8,
            replacement: match policy {
                0 => Replacement::Lru,
                1 => Replacement::Fifo,
                _ => Replacement::Random,
            },
            nonuniform: None,
        };
        let mut filtered = ReuseBuffer::new(config);
        let mut unfiltered = ReuseBuffer::new(config);
        unfiltered.set_fingerprint_filter(false);
        for cmd in &script {
            match *cmd {
                Cmd::Record { r, v, mem } => {
                    filtered.record(RegionId(r as u32), instance(r, v, mem));
                    unfiltered.record(RegionId(r as u32), instance(r, v, mem));
                }
                Cmd::Lookup { r, v } => {
                    let fast = lookup(&mut filtered, r, v);
                    let slow = lookup(&mut unfiltered, r, v);
                    prop_assert_eq!(&fast, &slow,
                        "fingerprint filter flipped a lookup outcome for ({}, {})", r, v);
                    prop_assert_eq!(filtered.last_miss_cause(), unfiltered.last_miss_cause(),
                        "fingerprint filter changed a miss cause for ({}, {})", r, v);
                }
                Cmd::Invalidate { r } => {
                    filtered.invalidate(RegionId(r as u32));
                    unfiltered.invalidate(RegionId(r as u32));
                }
            }
        }
        prop_assert_eq!(filtered.stats(), unfiltered.stats());
    }

    /// The batched SoA scan (chunked fingerprint-lane compare +
    /// contiguous-slice verify + batched ghost classification) is
    /// likewise a host-speed optimization only: against a buffer
    /// forced onto the scalar reference path — crossed with the
    /// fingerprint-filter switch — an identical command script must
    /// produce identical lookup outcomes, miss causes, and
    /// statistics. Instances here carry three inputs so the
    /// flattened value rows are wider than one element.
    #[test]
    fn batched_scan_never_changes_outcomes(
        script in cmds(),
        entries in 1usize..8,
        instances in 1usize..6,
        policy in 0u8..3,
        filter in any::<bool>(),
    ) {
        let config = CrbConfig {
            entries,
            instances,
            input_bank: 8,
            output_bank: 8,
            replacement: match policy {
                0 => Replacement::Lru,
                1 => Replacement::Fifo,
                _ => Replacement::Random,
            },
            nonuniform: None,
        };
        let mut batched = ReuseBuffer::new(config);
        let mut scalar = ReuseBuffer::new(config);
        scalar.set_batched_scan(false);
        scalar.set_fingerprint_filter(filter);
        for cmd in &script {
            match *cmd {
                Cmd::Record { r, v, mem } => {
                    batched.record(RegionId(r as u32), wide_instance(r, v, mem));
                    scalar.record(RegionId(r as u32), wide_instance(r, v, mem));
                }
                Cmd::Lookup { r, v } => {
                    let fast = wide_lookup(&mut batched, r, v);
                    let slow = wide_lookup(&mut scalar, r, v);
                    prop_assert_eq!(&fast, &slow,
                        "batched scan flipped a lookup outcome for ({}, {})", r, v);
                    prop_assert_eq!(batched.last_miss_cause(), scalar.last_miss_cause(),
                        "batched scan changed a miss cause for ({}, {})", r, v);
                }
                Cmd::Invalidate { r } => {
                    batched.invalidate(RegionId(r as u32));
                    scalar.invalidate(RegionId(r as u32));
                }
            }
        }
        prop_assert_eq!(batched.stats(), scalar.stats());
    }

    /// LRU retention: after interleaved records and lookups on one
    /// region, the `instances` most recently *touched* distinct inputs
    /// all hit.
    #[test]
    fn lru_retains_most_recent(
        touches in prop::collection::vec(any::<i8>(), 1..40),
        instances in 1usize..5,
    ) {
        let mut buf = ReuseBuffer::new(CrbConfig {
            entries: 4,
            instances,
            input_bank: 8,
            output_bank: 8,
            replacement: Replacement::Lru,
            nonuniform: None,
        });
        let r = 2u8;
        // Touch = lookup, record on miss (the hardware's actual use).
        let mut recency: Vec<i8> = Vec::new();
        for &v in &touches {
            if lookup(&mut buf, r, v).is_none() {
                buf.record(RegionId(r as u32), instance(r, v, false));
            }
            recency.retain(|x| *x != v);
            recency.push(v);
        }
        let recent: Vec<i8> = recency.iter().rev().take(instances).copied().collect();
        for v in recent {
            prop_assert!(
                lookup(&mut buf, r, v).is_some(),
                "recently used {v} evicted (window {instances})"
            );
        }
    }
}

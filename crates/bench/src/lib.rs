#![warn(missing_docs)]

//! # ccr-bench — experiment regenerators and benchmarks
//!
//! One binary per figure of the paper's evaluation (Section 5):
//!
//! | binary | paper result |
//! |---|---|
//! | `fig4_potential` | Figure 4 — dynamic reuse potential, block vs region |
//! | `fig8a_instances` | Figure 8(a) — speedup vs computation instances (128 entries × 4/8/16 CIs) |
//! | `fig8b_entries` | Figure 8(b) — speedup vs entries (32/64/128 × 8 CIs) |
//! | `fig9_groups` | Figure 9 — static & dynamic computation-group distributions |
//! | `fig10_distribution` | Figure 10 — cumulative reuse of the top 10/20/30/40 % computations |
//! | `fig11_inputs` | Figure 11 — training vs reference input speedup |
//! | `ablations` | design-space studies from DESIGN.md §5 |
//!
//! Criterion benches under `benches/` time the simulator and compiler
//! components themselves.

use ccr_core::compile::{compile_ccr, CompileConfig, CompiledWorkload};
use ccr_core::measure::{measure, Measurement};
use ccr_profile::EmuConfig;
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::{build, InputSet, NAMES};

/// Default driver scale for experiment binaries (kept moderate so the
/// full suite regenerates in seconds per configuration).
pub const SCALE: u32 = 1;

/// Emulator limits for experiment runs.
pub fn emu_config() -> EmuConfig {
    EmuConfig {
        max_instrs: 200_000_000,
        max_depth: 512,
    }
}

/// One benchmark's compiled artifacts plus measurement.
pub struct SuiteRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Compile products (annotated program, regions, profile).
    pub compiled: CompiledWorkload,
    /// Baseline vs CCR measurement.
    pub measurement: Measurement,
}

/// Compiles one benchmark: profile on Train, annotate the `target`
/// build.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or emulation exceeds
/// limits (experiment binaries treat both as fatal).
pub fn compile_benchmark(
    name: &str,
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
) -> CompiledWorkload {
    let train = build(name, InputSet::Train, scale).expect("known benchmark");
    let target = build(name, target, scale).expect("known benchmark");
    let config = CompileConfig {
        region: *region,
        emu: emu_config(),
        ..CompileConfig::paper()
    };
    compile_ccr(&train, &target, &config).expect("profiling within limits")
}

/// Runs one benchmark end-to-end under the given CRB.
///
/// # Panics
///
/// Panics on unknown names or emulator limit violations.
pub fn run_benchmark(
    name: &'static str,
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
) -> SuiteRun {
    // The compiler targets the actual machine: the selection trial
    // assumes the hardware's instance count.
    let region = RegionConfig {
        trial_instances: crb.instances,
        ..*region
    };
    let compiled = compile_benchmark(name, target, scale, &region);
    let measurement =
        measure(&compiled, machine, crb, emu_config()).expect("simulation within limits");
    SuiteRun {
        name: Box::leak(name.to_string().into_boxed_str()),
        compiled,
        measurement,
    }
}

/// Runs the whole suite under one configuration.
pub fn run_suite(
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
) -> Vec<SuiteRun> {
    NAMES
        .iter()
        .map(|name| run_benchmark(name, target, scale, region, machine, crb))
        .collect()
}

/// Arithmetic mean of a sequence (the paper reports average speedups).
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn run_benchmark_produces_consistent_speedup() {
        let run = run_benchmark(
            "130.li",
            InputSet::Train,
            1,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        );
        let s = run.measurement.speedup();
        assert!(s > 0.9 && s < 3.0, "speedup {s}");
        assert!(!run.compiled.regions.is_empty());
    }
}

#![warn(missing_docs)]

//! # ccr-bench — experiment regenerators and benchmarks
//!
//! One binary per figure of the paper's evaluation (Section 5):
//!
//! | binary | paper result |
//! |---|---|
//! | `fig4_potential` | Figure 4 — dynamic reuse potential, block vs region |
//! | `fig8a_instances` | Figure 8(a) — speedup vs computation instances (128 entries × 4/8/16 CIs) |
//! | `fig8b_entries` | Figure 8(b) — speedup vs entries (32/64/128 × 8 CIs) |
//! | `fig9_groups` | Figure 9 — static & dynamic computation-group distributions |
//! | `fig10_distribution` | Figure 10 — cumulative reuse of the top 10/20/30/40 % computations |
//! | `fig11_inputs` | Figure 11 — training vs reference input speedup |
//! | `ablations` | design-space studies from DESIGN.md §5 |
//!
//! Criterion benches under `benches/` time the simulator and compiler
//! components themselves.

pub mod engine;
pub mod exp;

use ccr_core::compile::{compile_ccr, CompileConfig, CompiledWorkload};
use ccr_core::harness::Harness;
use ccr_core::jobs::resolve_jobs;
use ccr_core::measure::Measurement;
use ccr_profile::EmuConfig;
use ccr_regions::RegionConfig;
use ccr_sim::{CrbConfig, MachineConfig};
use ccr_workloads::{build, InputSet, NAMES};

pub use engine::{CachedSim, Engine, SimResultCache, DEFAULT_RESULT_CACHE_CAPACITY};
pub use exp::CompileCache;

/// Default driver scale for experiment binaries (kept moderate so the
/// full suite regenerates in seconds per configuration).
pub const SCALE: u32 = 1;

/// Worker count for an experiment binary: the last `--jobs N` (or
/// `--jobs=N`) on the command line, else the `CCR_JOBS` environment
/// variable, else serial. `0` means one worker per hardware thread.
pub fn cli_jobs() -> usize {
    let mut requested = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            requested = args.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            requested = v.parse().ok();
        }
    }
    resolve_jobs(requested)
}

/// Emulator limits for experiment runs.
pub fn emu_config() -> EmuConfig {
    EmuConfig {
        max_instrs: 200_000_000,
        max_depth: 512,
    }
}

/// One benchmark's compiled artifacts plus measurement.
pub struct SuiteRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Compile products (annotated program, regions, profile).
    pub compiled: CompiledWorkload,
    /// Baseline vs CCR measurement.
    pub measurement: Measurement,
    /// Host milliseconds spent on this workload (compile + baseline
    /// sim + CCR sim), each phase timed on the thread that ran it —
    /// so per-workload cost stays comparable across job counts.
    pub wall_ms: u64,
}

/// Compiles one benchmark: profile on Train, annotate the `target`
/// build.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or emulation exceeds
/// limits (experiment binaries treat both as fatal).
pub fn compile_benchmark(
    name: &str,
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
) -> CompiledWorkload {
    let config = CompileConfig {
        region: *region,
        emu: emu_config(),
        ..CompileConfig::paper()
    };
    compile_with(name, target, scale, &config).expect("known benchmark, profiling within limits")
}

pub(crate) fn compile_with(
    name: &str,
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
) -> Result<CompiledWorkload, String> {
    let train =
        build(name, InputSet::Train, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let target = build(name, target, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    compile_ccr(&train, &target, config).map_err(|e| format!("{name}: {e}"))
}

/// Runs a selection of benchmarks end-to-end under one configuration,
/// fanning the compiles and the per-workload {base, ccr} simulations
/// out over `jobs` worker threads. Results come back in `names`
/// order, and every simulated statistic is identical to a serial run
/// (each simulation is self-contained and deterministic) — only
/// `wall_ms` reflects the host.
///
/// `config.region.trial_instances` should already match
/// `crb.instances` (callers deriving the region config from a CRB can
/// use [`run_benchmark`]/[`run_suite`], which enforce it).
///
/// # Errors
///
/// Returns the first failing workload's error (unknown name or
/// emulator limit breach), in `names` order.
#[allow(clippy::too_many_arguments)]
pub fn run_selected(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
) -> Result<Vec<SuiteRun>, String> {
    run_selected_cached(names, target, scale, config, machine, crb, emu, jobs, None)
}

/// [`run_selected`] with an optional shared-compile cache.
///
/// Sweeps that vary only the simulated hardware (CRB geometry,
/// machine width) used to recompile an identical program once per
/// configuration; passing the same [`CompileCache`] across calls
/// compiles each distinct (workload, target, scale, region-config)
/// combination once and reuses it — the compiler is deterministic, so
/// every measured number is unchanged.
///
/// # Errors
///
/// Returns the first failing workload's error (unknown name or
/// emulator limit breach), in `names` order.
#[allow(clippy::too_many_arguments)]
pub fn run_selected_cached(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
    cache: Option<&CompileCache>,
) -> Result<Vec<SuiteRun>, String> {
    run_selected_harnessed(
        names,
        target,
        scale,
        config,
        machine,
        crb,
        emu,
        jobs,
        cache,
        &Harness::disabled(),
    )
}

/// [`run_selected_cached`] with host-side observability: compiles and
/// simulations run under stable task labels, the job pool reports
/// per-worker accounting to `harness`, and start/finish events land
/// in `harness.jsonl`. With `Harness::disabled()` this is exactly
/// [`run_selected_cached`]; either way every simulated statistic is
/// identical (the harness only reads clocks and writes to side
/// channels).
///
/// # Errors
///
/// Returns the first failing workload's error (unknown name or
/// emulator limit breach), in `names` order.
#[allow(clippy::too_many_arguments)]
pub fn run_selected_harnessed(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
    cache: Option<&CompileCache>,
    harness: &Harness,
) -> Result<Vec<SuiteRun>, String> {
    // No result cache: one-shot suite runs (and the host-reps
    // timing mode, which must re-simulate every rep to measure the
    // host) go through the pipeline cold. `Engine::run_selected` is
    // the cached path.
    engine::run_selected_inner(
        names, target, scale, config, machine, crb, emu, jobs, cache, None, harness,
    )
}

/// [`run_selected_harnessed`] repeated `host_reps` times, reporting
/// each workload's **median** `wall_ms` across the repetitions — the
/// noise-damped host-throughput mode behind `ccr bench --host-reps`.
///
/// Simulated statistics are deterministic, so every rep produces the
/// same counters (asserted); the returned runs are the first rep's,
/// with only `wall_ms` replaced by the median. Repetitions share
/// `cache`, so reps after the first reuse every compile: with three
/// or more reps the median reflects steady-state simulation
/// throughput rather than one cold compile pass.
///
/// # Errors
///
/// Returns the first failing workload's error (unknown name or
/// emulator limit breach), in `names` order.
#[allow(clippy::too_many_arguments)]
pub fn run_selected_reps(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    config: &CompileConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    emu: EmuConfig,
    jobs: usize,
    cache: Option<&CompileCache>,
    harness: &Harness,
    host_reps: usize,
) -> Result<Vec<SuiteRun>, String> {
    let run_once = |cache: Option<&CompileCache>| {
        run_selected_harnessed(
            names, target, scale, config, machine, crb, emu, jobs, cache, harness,
        )
    };
    if host_reps <= 1 {
        return run_once(cache);
    }
    // Repetitions need a shared compile cache to amortize compiles;
    // fall back to a local one when the caller didn't bring their own.
    let local_cache;
    let cache = match cache {
        Some(c) => c,
        None => {
            local_cache = CompileCache::new();
            &local_cache
        }
    };
    let mut runs = run_once(Some(cache))?;
    let mut walls: Vec<Vec<u64>> = runs.iter().map(|r| vec![r.wall_ms]).collect();
    for _ in 1..host_reps {
        let rep = run_once(Some(cache))?;
        for (i, r) in rep.iter().enumerate() {
            assert_eq!(
                runs[i].measurement.base.stats, r.measurement.base.stats,
                "{}: host repetition changed baseline statistics",
                r.name
            );
            assert_eq!(
                runs[i].measurement.ccr.stats, r.measurement.ccr.stats,
                "{}: host repetition changed CCR statistics",
                r.name
            );
            walls[i].push(r.wall_ms);
        }
    }
    for (run, wall) in runs.iter_mut().zip(&mut walls) {
        run.wall_ms = median_ms(wall);
    }
    Ok(runs)
}

/// Median of a sample of millisecond timings (midpoint of the two
/// central values for even sample sizes).
fn median_ms(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    let n = samples.len();
    if n == 0 {
        0
    } else if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}

/// Runs one benchmark end-to-end under the given CRB.
///
/// # Panics
///
/// Panics on unknown names or emulator limit violations.
pub fn run_benchmark(
    name: &'static str,
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
) -> SuiteRun {
    run_suite_with(&[name], target, scale, region, machine, crb, 1)
        .pop()
        .expect("one run for one name")
}

/// Runs the whole suite under one configuration on `jobs` workers.
pub fn run_suite(
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    jobs: usize,
) -> Vec<SuiteRun> {
    run_suite_with(&NAMES, target, scale, region, machine, crb, jobs)
}

fn run_suite_with(
    names: &[&'static str],
    target: InputSet,
    scale: u32,
    region: &RegionConfig,
    machine: &MachineConfig,
    crb: CrbConfig,
    jobs: usize,
) -> Vec<SuiteRun> {
    // The compiler targets the actual machine: the selection trial
    // assumes the hardware's instance count.
    let region = RegionConfig {
        trial_instances: crb.instances,
        ..*region
    };
    let config = CompileConfig {
        region,
        emu: emu_config(),
        ..CompileConfig::paper()
    };
    run_selected(
        names,
        target,
        scale,
        &config,
        machine,
        crb,
        emu_config(),
        jobs,
    )
    .expect("known benchmarks, emulation within limits")
}

/// Arithmetic mean of a sequence (the paper reports average speedups).
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median_ms(&mut []), 0);
        assert_eq!(median_ms(&mut [7]), 7);
        assert_eq!(median_ms(&mut [9, 1, 5]), 5);
        assert_eq!(median_ms(&mut [4, 2, 8, 6]), 5);
    }

    #[test]
    fn compile_cache_hits_on_identical_config_only() {
        let cache = CompileCache::new();
        let config = CompileConfig {
            emu: emu_config(),
            ..CompileConfig::paper()
        };
        let a = cache
            .get_or_compile("bitcount", InputSet::Train, 1, &config)
            .unwrap();
        let b = cache
            .get_or_compile("bitcount", InputSet::Train, 1, &config)
            .unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "identical configs must share one compile"
        );
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        // A different region configuration is a different program.
        let block = CompileConfig {
            region: RegionConfig::block_level(),
            ..config
        };
        let c = cache
            .get_or_compile("bitcount", InputSet::Train, 1, &block)
            .unwrap();
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!((cache.misses(), cache.hits()), (2, 1));
        assert!(cache
            .get_or_compile("no_such_benchmark", InputSet::Train, 1, &config)
            .is_err());
    }

    #[test]
    fn run_benchmark_produces_consistent_speedup() {
        let run = run_benchmark(
            "130.li",
            InputSet::Train,
            1,
            &RegionConfig::paper(),
            &MachineConfig::paper(),
            CrbConfig::paper(),
        );
        let s = run.measurement.speedup();
        assert!(s > 0.9 && s < 3.0, "speedup {s}");
        assert!(!run.compiled.regions.is_empty());
    }
}
